//! Binary (de)serialization of [`ParsedFile`]s for the persistent
//! artifact cache.
//!
//! The flat-arena representation makes this nearly a memory dump: each
//! pool is written as a length-prefixed run of fixed-shape elements, in
//! pool order, so decoding rebuilds the exact buffers the parser produced
//! — no parsing, no tree rebuilding, no per-node allocation beyond the
//! pools themselves.
//!
//! [`Symbol`]s are process-local `u32`s and must never hit disk raw.
//! Encoding builds a per-file string table (first-use order) and writes
//! local indices; decoding re-interns each string once and maps local
//! indices back to live symbols. A file's encoding is therefore stable
//! across processes and interner states.
//!
//! Decoding is **corruption-tolerant by construction**: every read is
//! bounds-checked, every enum tag validated, every node handle and slice
//! range checked against the pool lengths read from the header — garbage
//! input yields a [`CodecError`], never a panic and never an
//! out-of-bounds handle. (The disk cache additionally guards payloads
//! with a digest; this layer is the defense in depth behind it.)
//!
//! Round-trip guarantee: `decode_file(&encode_file(f)) == f` for every
//! parser-produced file, including recovered [`ParseError`]s — a decoded
//! file is indistinguishable from a freshly parsed one.

use crate::ast::{
    Arena, Arg, ArgRange, AssignOp, BinOp, Callee, CaseRange, CastKind, Catch, CatchRange,
    ClassDecl, ClassKind, ClassMember, ConstRange, ElseifRange, Expr, ExprId, ExprRange,
    FunctionDecl, IncludeKind, InterpPart, InterpRange, ItemRange, Lit, Member, MemberRange,
    Modifiers, OptExprRange, Param, ParamRange, ParseError, ParsedFile, Span, StaticVarRange, Stmt,
    StmtId, StmtRange, SwitchCase, SymRange, UnOp, UseRange, Visibility,
};
use phpsafe_intern::{FnvHashMap, Symbol};
use std::fmt;

/// Magic bytes opening an encoded file.
const MAGIC: &[u8; 4] = b"PAST";

/// Bumped on any change to the encoding below.
const VERSION: u8 = 1;

/// A decoding failure: what was malformed, and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was malformed.
    pub what: &'static str,
    /// Byte offset the problem was detected at.
    pub at: usize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ------------------------------------------------------------------ writer

/// A little-endian byte writer (also used by `phpsafe`'s summary codec).
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

// ------------------------------------------------------------------ reader

/// A bounds-checked little-endian reader over untrusted bytes (also used
/// by `phpsafe`'s summary codec). Every method fails with a [`CodecError`]
/// instead of panicking.
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Reads from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, at: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.at
    }

    /// Whether every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.at == self.bytes.len()
    }

    /// Bytes left to read — the tight bound for "declared count exceeds
    /// input" guards in embedded codecs.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn fail<T>(&self, what: &'static str) -> Result<T> {
        Err(CodecError { what, at: self.at })
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = match self.at.checked_add(n) {
            Some(e) => e,
            None => return self.fail("length overflow"),
        };
        match self.bytes.get(self.at..end) {
            Some(s) => {
                self.at = end;
                Ok(s)
            }
            None => self.fail("unexpected end of input"),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a bool, rejecting anything but 0/1.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => self.fail("invalid bool"),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => self.fail("invalid UTF-8"),
        }
    }
}

// --------------------------------------------------------------- symbols

/// Per-file symbol table: symbols are written as dense local indices in
/// first-use order; the strings travel with the file.
#[derive(Default)]
struct SymWriter {
    index: FnvHashMap<Symbol, u32>,
    order: Vec<Symbol>,
}

impl SymWriter {
    fn local(&mut self, sym: Symbol) -> u32 {
        if let Some(&i) = self.index.get(&sym) {
            return i;
        }
        let i = self.order.len() as u32;
        self.index.insert(sym, i);
        self.order.push(sym);
        i
    }
}

struct Enc {
    w: Writer,
    syms: SymWriter,
}

impl Enc {
    fn sym(&mut self, s: Symbol) {
        let local = self.syms.local(s);
        self.w.u32(local);
    }

    fn span(&mut self, s: Span) {
        self.w.u32(s.line);
    }

    fn expr_id(&mut self, id: ExprId) {
        self.w.u32(id.raw());
    }

    fn stmt_id(&mut self, id: StmtId) {
        self.w.u32(id.raw());
    }

    fn opt_expr_id(&mut self, id: Option<ExprId>) {
        match id {
            None => self.w.u8(0),
            Some(id) => {
                self.w.u8(1);
                self.expr_id(id);
            }
        }
    }

    fn opt_sym(&mut self, s: Option<Symbol>) {
        match s {
            None => self.w.u8(0),
            Some(s) => {
                self.w.u8(1);
                self.sym(s);
            }
        }
    }

    fn range(&mut self, (start, len): (u32, u32)) {
        self.w.u32(start);
        self.w.u32(len);
    }
}

/// Decoder state: the reader, the re-interned symbol table and the pool
/// lengths every handle is validated against.
struct Dec<'a> {
    r: Reader<'a>,
    syms: Vec<Symbol>,
    n_exprs: u32,
    n_stmts: u32,
}

impl<'a> Dec<'a> {
    fn sym(&mut self) -> Result<Symbol> {
        let i = self.r.u32()? as usize;
        match self.syms.get(i) {
            Some(&s) => Ok(s),
            None => self.r.fail("symbol index out of range"),
        }
    }

    fn opt_sym(&mut self) -> Result<Option<Symbol>> {
        match self.r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.sym()?)),
            _ => self.r.fail("invalid option tag"),
        }
    }

    fn span(&mut self) -> Result<Span> {
        Ok(Span::at(self.r.u32()?))
    }

    fn expr_id(&mut self) -> Result<ExprId> {
        let raw = self.r.u32()?;
        if raw >= self.n_exprs {
            return self.r.fail("expression handle out of range");
        }
        Ok(ExprId::from_raw(raw))
    }

    fn stmt_id(&mut self) -> Result<StmtId> {
        let raw = self.r.u32()?;
        if raw >= self.n_stmts {
            return self.r.fail("statement handle out of range");
        }
        Ok(StmtId::from_raw(raw))
    }

    fn opt_expr_id(&mut self) -> Result<Option<ExprId>> {
        match self.r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.expr_id()?)),
            _ => self.r.fail("invalid option tag"),
        }
    }

    /// Reads a `(start, len)` window and validates it against `pool_len`.
    fn range(&mut self, pool_len: usize) -> Result<(u32, u32)> {
        let start = self.r.u32()?;
        let len = self.r.u32()?;
        let end = match start.checked_add(len) {
            Some(e) => e as usize,
            None => return self.r.fail("range overflow"),
        };
        if end > pool_len {
            return self.r.fail("range out of pool bounds");
        }
        Ok((start, len))
    }
}

// ------------------------------------------------------------- small enums

fn enc_binop(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Mod => 4,
        Pow => 5,
        Concat => 6,
        Eq => 7,
        NotEq => 8,
        Identical => 9,
        NotIdentical => 10,
        Lt => 11,
        Gt => 12,
        Le => 13,
        Ge => 14,
        And => 15,
        Or => 16,
        Xor => 17,
        BitAnd => 18,
        BitOr => 19,
        BitXor => 20,
        Shl => 21,
        Shr => 22,
    }
}

fn dec_binop(tag: u8, r: &Reader) -> Result<BinOp> {
    use BinOp::*;
    Ok(match tag {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Div,
        4 => Mod,
        5 => Pow,
        6 => Concat,
        7 => Eq,
        8 => NotEq,
        9 => Identical,
        10 => NotIdentical,
        11 => Lt,
        12 => Gt,
        13 => Le,
        14 => Ge,
        15 => And,
        16 => Or,
        17 => Xor,
        18 => BitAnd,
        19 => BitOr,
        20 => BitXor,
        21 => Shl,
        22 => Shr,
        _ => return r.fail("invalid binary operator"),
    })
}

fn enc_unop(op: UnOp) -> u8 {
    match op {
        UnOp::Not => 0,
        UnOp::Neg => 1,
        UnOp::Plus => 2,
        UnOp::BitNot => 3,
    }
}

fn dec_unop(tag: u8, r: &Reader) -> Result<UnOp> {
    Ok(match tag {
        0 => UnOp::Not,
        1 => UnOp::Neg,
        2 => UnOp::Plus,
        3 => UnOp::BitNot,
        _ => return r.fail("invalid unary operator"),
    })
}

fn enc_assign_op(op: AssignOp) -> u8 {
    use AssignOp::*;
    match op {
        Assign => 0,
        AddAssign => 1,
        SubAssign => 2,
        MulAssign => 3,
        DivAssign => 4,
        ModAssign => 5,
        ConcatAssign => 6,
        BitAndAssign => 7,
        BitOrAssign => 8,
        BitXorAssign => 9,
        ShlAssign => 10,
        ShrAssign => 11,
    }
}

fn dec_assign_op(tag: u8, r: &Reader) -> Result<AssignOp> {
    use AssignOp::*;
    Ok(match tag {
        0 => Assign,
        1 => AddAssign,
        2 => SubAssign,
        3 => MulAssign,
        4 => DivAssign,
        5 => ModAssign,
        6 => ConcatAssign,
        7 => BitAndAssign,
        8 => BitOrAssign,
        9 => BitXorAssign,
        10 => ShlAssign,
        11 => ShrAssign,
        _ => return r.fail("invalid assignment operator"),
    })
}

fn enc_cast(k: CastKind) -> u8 {
    use CastKind::*;
    match k {
        Int => 0,
        Float => 1,
        String => 2,
        Array => 3,
        Object => 4,
        Bool => 5,
        Unset => 6,
    }
}

fn dec_cast(tag: u8, r: &Reader) -> Result<CastKind> {
    use CastKind::*;
    Ok(match tag {
        0 => Int,
        1 => Float,
        2 => String,
        3 => Array,
        4 => Object,
        5 => Bool,
        6 => Unset,
        _ => return r.fail("invalid cast kind"),
    })
}

fn enc_include(k: IncludeKind) -> u8 {
    use IncludeKind::*;
    match k {
        Include => 0,
        IncludeOnce => 1,
        Require => 2,
        RequireOnce => 3,
    }
}

fn dec_include(tag: u8, r: &Reader) -> Result<IncludeKind> {
    use IncludeKind::*;
    Ok(match tag {
        0 => Include,
        1 => IncludeOnce,
        2 => Require,
        3 => RequireOnce,
        _ => return r.fail("invalid include kind"),
    })
}

fn enc_class_kind(k: ClassKind) -> u8 {
    match k {
        ClassKind::Class => 0,
        ClassKind::Interface => 1,
        ClassKind::Trait => 2,
    }
}

fn dec_class_kind(tag: u8, r: &Reader) -> Result<ClassKind> {
    Ok(match tag {
        0 => ClassKind::Class,
        1 => ClassKind::Interface,
        2 => ClassKind::Trait,
        _ => return r.fail("invalid class kind"),
    })
}

/// Modifiers pack into one byte: visibility in the low two bits, then the
/// static/abstract/final flags.
fn enc_modifiers(m: Modifiers) -> u8 {
    let vis = match m.visibility {
        Visibility::Public => 0u8,
        Visibility::Protected => 1,
        Visibility::Private => 2,
    };
    vis | (m.is_static as u8) << 2 | (m.is_abstract as u8) << 3 | (m.is_final as u8) << 4
}

fn dec_modifiers(b: u8, r: &Reader) -> Result<Modifiers> {
    let visibility = match b & 0b11 {
        0 => Visibility::Public,
        1 => Visibility::Protected,
        2 => Visibility::Private,
        _ => return r.fail("invalid visibility"),
    };
    if b >> 5 != 0 {
        return r.fail("invalid modifier bits");
    }
    Ok(Modifiers {
        visibility,
        is_static: b & 0b100 != 0,
        is_abstract: b & 0b1000 != 0,
        is_final: b & 0b1_0000 != 0,
    })
}

// ---------------------------------------------------------------- literals

fn enc_lit(e: &mut Enc, lit: &Lit) {
    match lit {
        Lit::Int(s) => {
            e.w.u8(0);
            e.w.str(s.as_str());
        }
        Lit::Float(s) => {
            e.w.u8(1);
            e.w.str(s.as_str());
        }
        Lit::Str(s) => {
            e.w.u8(2);
            e.w.str(s.as_str());
        }
        Lit::Bool(b) => {
            e.w.u8(3);
            e.w.bool(*b);
        }
        Lit::Null => e.w.u8(4),
    }
}

fn dec_lit(d: &mut Dec) -> Result<Lit> {
    Ok(match d.r.u8()? {
        0 => Lit::Int(d.r.str()?.into()),
        1 => Lit::Float(d.r.str()?.into()),
        2 => Lit::Str(d.r.str()?.into()),
        3 => Lit::Bool(d.r.bool()?),
        4 => Lit::Null,
        _ => return d.r.fail("invalid literal tag"),
    })
}

fn enc_member(e: &mut Enc, m: &Member) {
    match m {
        Member::Name(s) => {
            e.w.u8(0);
            e.sym(*s);
        }
        Member::Dynamic(id) => {
            e.w.u8(1);
            e.expr_id(*id);
        }
    }
}

fn dec_member(d: &mut Dec) -> Result<Member> {
    Ok(match d.r.u8()? {
        0 => Member::Name(d.sym()?),
        1 => Member::Dynamic(d.expr_id()?),
        _ => return d.r.fail("invalid member tag"),
    })
}

fn enc_callee(e: &mut Enc, c: &Callee) {
    match c {
        Callee::Function(s) => {
            e.w.u8(0);
            e.sym(*s);
        }
        Callee::Dynamic(id) => {
            e.w.u8(1);
            e.expr_id(*id);
        }
        Callee::Method { base, name } => {
            e.w.u8(2);
            e.expr_id(*base);
            enc_member(e, name);
        }
        Callee::StaticMethod { class, name } => {
            e.w.u8(3);
            e.sym(*class);
            enc_member(e, name);
        }
    }
}

fn dec_callee(d: &mut Dec) -> Result<Callee> {
    Ok(match d.r.u8()? {
        0 => Callee::Function(d.sym()?),
        1 => Callee::Dynamic(d.expr_id()?),
        2 => Callee::Method {
            base: d.expr_id()?,
            name: dec_member(d)?,
        },
        3 => Callee::StaticMethod {
            class: d.sym()?,
            name: dec_member(d)?,
        },
        _ => return d.r.fail("invalid callee tag"),
    })
}

// ------------------------------------------------------------- expressions

fn enc_expr(e: &mut Enc, expr: &Expr) {
    use Expr::*;
    match expr {
        Var(s, sp) => {
            e.w.u8(0);
            e.sym(*s);
            e.span(*sp);
        }
        VarVar(id, sp) => {
            e.w.u8(1);
            e.expr_id(*id);
            e.span(*sp);
        }
        Lit(lit, sp) => {
            e.w.u8(2);
            enc_lit(e, lit);
            e.span(*sp);
        }
        Interp(r, sp) => {
            e.w.u8(3);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        ConstFetch(s, sp) => {
            e.w.u8(4);
            e.sym(*s);
            e.span(*sp);
        }
        ClassConst(c, n, sp) => {
            e.w.u8(5);
            e.sym(*c);
            e.sym(*n);
            e.span(*sp);
        }
        ArrayLit(r, sp) => {
            e.w.u8(6);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Index(base, idx, sp) => {
            e.w.u8(7);
            e.expr_id(*base);
            e.opt_expr_id(*idx);
            e.span(*sp);
        }
        Prop(base, m, sp) => {
            e.w.u8(8);
            e.expr_id(*base);
            enc_member(e, m);
            e.span(*sp);
        }
        StaticProp(c, p, sp) => {
            e.w.u8(9);
            e.sym(*c);
            e.sym(*p);
            e.span(*sp);
        }
        Assign {
            target,
            op,
            value,
            by_ref,
            span,
        } => {
            e.w.u8(10);
            e.expr_id(*target);
            e.w.u8(enc_assign_op(*op));
            e.expr_id(*value);
            e.w.bool(*by_ref);
            e.span(*span);
        }
        Binary { op, lhs, rhs, span } => {
            e.w.u8(11);
            e.w.u8(enc_binop(*op));
            e.expr_id(*lhs);
            e.expr_id(*rhs);
            e.span(*span);
        }
        Unary { op, expr, span } => {
            e.w.u8(12);
            e.w.u8(enc_unop(*op));
            e.expr_id(*expr);
            e.span(*span);
        }
        IncDec {
            prefix,
            increment,
            expr,
            span,
        } => {
            e.w.u8(13);
            e.w.bool(*prefix);
            e.w.bool(*increment);
            e.expr_id(*expr);
            e.span(*span);
        }
        Call { callee, args, span } => {
            e.w.u8(14);
            enc_callee(e, callee);
            e.range(args.raw_parts());
            e.span(*span);
        }
        New { class, args, span } => {
            e.w.u8(15);
            enc_member(e, class);
            e.range(args.raw_parts());
            e.span(*span);
        }
        Clone(id, sp) => {
            e.w.u8(16);
            e.expr_id(*id);
            e.span(*sp);
        }
        Ternary {
            cond,
            then,
            otherwise,
            span,
        } => {
            e.w.u8(17);
            e.expr_id(*cond);
            e.opt_expr_id(*then);
            e.expr_id(*otherwise);
            e.span(*span);
        }
        Cast(k, id, sp) => {
            e.w.u8(18);
            e.w.u8(enc_cast(*k));
            e.expr_id(*id);
            e.span(*sp);
        }
        Isset(r, sp) => {
            e.w.u8(19);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Empty(id, sp) => {
            e.w.u8(20);
            e.expr_id(*id);
            e.span(*sp);
        }
        ErrorSuppress(id, sp) => {
            e.w.u8(21);
            e.expr_id(*id);
            e.span(*sp);
        }
        Print(id, sp) => {
            e.w.u8(22);
            e.expr_id(*id);
            e.span(*sp);
        }
        Exit(id, sp) => {
            e.w.u8(23);
            e.opt_expr_id(*id);
            e.span(*sp);
        }
        Include(k, id, sp) => {
            e.w.u8(24);
            e.w.u8(enc_include(*k));
            e.expr_id(*id);
            e.span(*sp);
        }
        Instanceof(id, s, sp) => {
            e.w.u8(25);
            e.expr_id(*id);
            e.sym(*s);
            e.span(*sp);
        }
        ListIntrinsic(r, sp) => {
            e.w.u8(26);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Closure {
            params,
            uses,
            body,
            span,
        } => {
            e.w.u8(27);
            e.range(params.raw_parts());
            e.range(uses.raw_parts());
            e.range(body.raw_parts());
            e.span(*span);
        }
        ShellExec(r, sp) => {
            e.w.u8(28);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Ref(id, sp) => {
            e.w.u8(29);
            e.expr_id(*id);
            e.span(*sp);
        }
        Error(sp) => {
            e.w.u8(30);
            e.span(*sp);
        }
    }
}

fn dec_expr(d: &mut Dec, pools: &PoolSizes) -> Result<Expr> {
    use Expr::*;
    Ok(match d.r.u8()? {
        0 => Var(d.sym()?, d.span()?),
        1 => VarVar(d.expr_id()?, d.span()?),
        2 => Lit(dec_lit(d)?, d.span()?),
        3 => {
            let (s, l) = d.range(pools.interp_parts)?;
            Interp(InterpRange::from_raw_parts(s, l), d.span()?)
        }
        4 => ConstFetch(d.sym()?, d.span()?),
        5 => ClassConst(d.sym()?, d.sym()?, d.span()?),
        6 => {
            let (s, l) = d.range(pools.array_items)?;
            ArrayLit(ItemRange::from_raw_parts(s, l), d.span()?)
        }
        7 => Index(d.expr_id()?, d.opt_expr_id()?, d.span()?),
        8 => Prop(d.expr_id()?, dec_member(d)?, d.span()?),
        9 => StaticProp(d.sym()?, d.sym()?, d.span()?),
        10 => {
            let target = d.expr_id()?;
            let op = dec_assign_op(d.r.u8()?, &d.r)?;
            let value = d.expr_id()?;
            let by_ref = d.r.bool()?;
            Assign {
                target,
                op,
                value,
                by_ref,
                span: d.span()?,
            }
        }
        11 => {
            let op = dec_binop(d.r.u8()?, &d.r)?;
            Binary {
                op,
                lhs: d.expr_id()?,
                rhs: d.expr_id()?,
                span: d.span()?,
            }
        }
        12 => {
            let op = dec_unop(d.r.u8()?, &d.r)?;
            Unary {
                op,
                expr: d.expr_id()?,
                span: d.span()?,
            }
        }
        13 => IncDec {
            prefix: d.r.bool()?,
            increment: d.r.bool()?,
            expr: d.expr_id()?,
            span: d.span()?,
        },
        14 => {
            let callee = dec_callee(d)?;
            let (s, l) = d.range(pools.args)?;
            Call {
                callee,
                args: ArgRange::from_raw_parts(s, l),
                span: d.span()?,
            }
        }
        15 => {
            let class = dec_member(d)?;
            let (s, l) = d.range(pools.args)?;
            New {
                class,
                args: ArgRange::from_raw_parts(s, l),
                span: d.span()?,
            }
        }
        16 => Clone(d.expr_id()?, d.span()?),
        17 => Ternary {
            cond: d.expr_id()?,
            then: d.opt_expr_id()?,
            otherwise: d.expr_id()?,
            span: d.span()?,
        },
        18 => {
            let k = dec_cast(d.r.u8()?, &d.r)?;
            Cast(k, d.expr_id()?, d.span()?)
        }
        19 => {
            let (s, l) = d.range(pools.expr_ids)?;
            Isset(ExprRange::from_raw_parts(s, l), d.span()?)
        }
        20 => Empty(d.expr_id()?, d.span()?),
        21 => ErrorSuppress(d.expr_id()?, d.span()?),
        22 => Print(d.expr_id()?, d.span()?),
        23 => Exit(d.opt_expr_id()?, d.span()?),
        24 => {
            let k = dec_include(d.r.u8()?, &d.r)?;
            Include(k, d.expr_id()?, d.span()?)
        }
        25 => Instanceof(d.expr_id()?, d.sym()?, d.span()?),
        26 => {
            let (s, l) = d.range(pools.opt_exprs)?;
            ListIntrinsic(OptExprRange::from_raw_parts(s, l), d.span()?)
        }
        27 => {
            let (ps, pl) = d.range(pools.params)?;
            let (us, ul) = d.range(pools.closure_uses)?;
            let (bs, bl) = d.range(pools.stmt_ids)?;
            Closure {
                params: ParamRange::from_raw_parts(ps, pl),
                uses: UseRange::from_raw_parts(us, ul),
                body: StmtRange::from_raw_parts(bs, bl),
                span: d.span()?,
            }
        }
        28 => {
            let (s, l) = d.range(pools.interp_parts)?;
            ShellExec(InterpRange::from_raw_parts(s, l), d.span()?)
        }
        29 => Ref(d.expr_id()?, d.span()?),
        30 => Error(d.span()?),
        _ => return d.r.fail("invalid expression tag"),
    })
}

// -------------------------------------------------------------- statements

fn enc_function(e: &mut Enc, f: &FunctionDecl) {
    e.sym(f.name);
    e.range(f.params.raw_parts());
    e.w.bool(f.by_ref);
    e.range(f.body.raw_parts());
    e.span(f.span);
}

fn dec_function(d: &mut Dec, pools: &PoolSizes) -> Result<FunctionDecl> {
    let name = d.sym()?;
    let (ps, pl) = d.range(pools.params)?;
    let by_ref = d.r.bool()?;
    let (bs, bl) = d.range(pools.stmt_ids)?;
    Ok(FunctionDecl {
        name,
        params: ParamRange::from_raw_parts(ps, pl),
        by_ref,
        body: StmtRange::from_raw_parts(bs, bl),
        span: d.span()?,
    })
}

fn enc_class(e: &mut Enc, c: &ClassDecl) {
    e.sym(c.name);
    e.w.u8(enc_class_kind(c.kind));
    e.opt_sym(c.parent);
    e.range(c.interfaces.raw_parts());
    e.w.bool(c.is_abstract);
    e.w.bool(c.is_final);
    e.range(c.members.raw_parts());
    e.span(c.span);
}

fn dec_class(d: &mut Dec, pools: &PoolSizes) -> Result<ClassDecl> {
    let name = d.sym()?;
    let kind = dec_class_kind(d.r.u8()?, &d.r)?;
    let parent = d.opt_sym()?;
    let (is_, il) = d.range(pools.syms)?;
    let is_abstract = d.r.bool()?;
    let is_final = d.r.bool()?;
    let (ms, ml) = d.range(pools.members)?;
    Ok(ClassDecl {
        name,
        kind,
        parent,
        interfaces: SymRange::from_raw_parts(is_, il),
        is_abstract,
        is_final,
        members: MemberRange::from_raw_parts(ms, ml),
        span: d.span()?,
    })
}

fn enc_stmt(e: &mut Enc, stmt: &Stmt) {
    use Stmt::*;
    match stmt {
        Expr(id, sp) => {
            e.w.u8(0);
            e.expr_id(*id);
            e.span(*sp);
        }
        Echo(r, sp) => {
            e.w.u8(1);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        InlineHtml(html, sp) => {
            e.w.u8(2);
            e.w.str(html.as_str());
            e.span(*sp);
        }
        If {
            cond,
            then,
            elseifs,
            otherwise,
            span,
        } => {
            e.w.u8(3);
            e.expr_id(*cond);
            e.range(then.raw_parts());
            e.range(elseifs.raw_parts());
            match otherwise {
                None => e.w.u8(0),
                Some(r) => {
                    e.w.u8(1);
                    e.range(r.raw_parts());
                }
            }
            e.span(*span);
        }
        While { cond, body, span } => {
            e.w.u8(4);
            e.expr_id(*cond);
            e.range(body.raw_parts());
            e.span(*span);
        }
        DoWhile { body, cond, span } => {
            e.w.u8(5);
            e.range(body.raw_parts());
            e.expr_id(*cond);
            e.span(*span);
        }
        For {
            init,
            cond,
            step,
            body,
            span,
        } => {
            e.w.u8(6);
            e.range(init.raw_parts());
            e.range(cond.raw_parts());
            e.range(step.raw_parts());
            e.range(body.raw_parts());
            e.span(*span);
        }
        Foreach {
            subject,
            key,
            value,
            by_ref,
            body,
            span,
        } => {
            e.w.u8(7);
            e.expr_id(*subject);
            e.opt_expr_id(*key);
            e.expr_id(*value);
            e.w.bool(*by_ref);
            e.range(body.raw_parts());
            e.span(*span);
        }
        Switch {
            subject,
            cases,
            span,
        } => {
            e.w.u8(8);
            e.expr_id(*subject);
            e.range(cases.raw_parts());
            e.span(*span);
        }
        Break(sp) => {
            e.w.u8(9);
            e.span(*sp);
        }
        Continue(sp) => {
            e.w.u8(10);
            e.span(*sp);
        }
        Return(id, sp) => {
            e.w.u8(11);
            e.opt_expr_id(*id);
            e.span(*sp);
        }
        Global(r, sp) => {
            e.w.u8(12);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        StaticVars(r, sp) => {
            e.w.u8(13);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Unset(r, sp) => {
            e.w.u8(14);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Throw(id, sp) => {
            e.w.u8(15);
            e.expr_id(*id);
            e.span(*sp);
        }
        Try {
            body,
            catches,
            finally,
            span,
        } => {
            e.w.u8(16);
            e.range(body.raw_parts());
            e.range(catches.raw_parts());
            match finally {
                None => e.w.u8(0),
                Some(r) => {
                    e.w.u8(1);
                    e.range(r.raw_parts());
                }
            }
            e.span(*span);
        }
        Block(r, sp) => {
            e.w.u8(17);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Function(f) => {
            e.w.u8(18);
            enc_function(e, f);
        }
        Class(c) => {
            e.w.u8(19);
            enc_class(e, c);
        }
        ConstDecl(r, sp) => {
            e.w.u8(20);
            e.range(r.raw_parts());
            e.span(*sp);
        }
        Nop(sp) => {
            e.w.u8(21);
            e.span(*sp);
        }
        Error(sp) => {
            e.w.u8(22);
            e.span(*sp);
        }
    }
}

fn dec_stmt(d: &mut Dec, pools: &PoolSizes) -> Result<Stmt> {
    use Stmt::*;
    Ok(match d.r.u8()? {
        0 => Expr(d.expr_id()?, d.span()?),
        1 => {
            let (s, l) = d.range(pools.expr_ids)?;
            Echo(ExprRange::from_raw_parts(s, l), d.span()?)
        }
        2 => InlineHtml(d.r.str()?.into(), d.span()?),
        3 => {
            let cond = d.expr_id()?;
            let (ts, tl) = d.range(pools.stmt_ids)?;
            let (es, el) = d.range(pools.elseifs)?;
            let otherwise = match d.r.u8()? {
                0 => None,
                1 => {
                    let (os, ol) = d.range(pools.stmt_ids)?;
                    Some(StmtRange::from_raw_parts(os, ol))
                }
                _ => return d.r.fail("invalid option tag"),
            };
            If {
                cond,
                then: StmtRange::from_raw_parts(ts, tl),
                elseifs: ElseifRange::from_raw_parts(es, el),
                otherwise,
                span: d.span()?,
            }
        }
        4 => {
            let cond = d.expr_id()?;
            let (s, l) = d.range(pools.stmt_ids)?;
            While {
                cond,
                body: StmtRange::from_raw_parts(s, l),
                span: d.span()?,
            }
        }
        5 => {
            let (s, l) = d.range(pools.stmt_ids)?;
            DoWhile {
                body: StmtRange::from_raw_parts(s, l),
                cond: d.expr_id()?,
                span: d.span()?,
            }
        }
        6 => {
            let (is_, il) = d.range(pools.expr_ids)?;
            let (cs, cl) = d.range(pools.expr_ids)?;
            let (ss, sl) = d.range(pools.expr_ids)?;
            let (bs, bl) = d.range(pools.stmt_ids)?;
            For {
                init: ExprRange::from_raw_parts(is_, il),
                cond: ExprRange::from_raw_parts(cs, cl),
                step: ExprRange::from_raw_parts(ss, sl),
                body: StmtRange::from_raw_parts(bs, bl),
                span: d.span()?,
            }
        }
        7 => {
            let subject = d.expr_id()?;
            let key = d.opt_expr_id()?;
            let value = d.expr_id()?;
            let by_ref = d.r.bool()?;
            let (bs, bl) = d.range(pools.stmt_ids)?;
            Foreach {
                subject,
                key,
                value,
                by_ref,
                body: StmtRange::from_raw_parts(bs, bl),
                span: d.span()?,
            }
        }
        8 => {
            let subject = d.expr_id()?;
            let (cs, cl) = d.range(pools.cases)?;
            Switch {
                subject,
                cases: CaseRange::from_raw_parts(cs, cl),
                span: d.span()?,
            }
        }
        9 => Break(d.span()?),
        10 => Continue(d.span()?),
        11 => Return(d.opt_expr_id()?, d.span()?),
        12 => {
            let (s, l) = d.range(pools.syms)?;
            Global(SymRange::from_raw_parts(s, l), d.span()?)
        }
        13 => {
            let (s, l) = d.range(pools.static_vars)?;
            StaticVars(StaticVarRange::from_raw_parts(s, l), d.span()?)
        }
        14 => {
            let (s, l) = d.range(pools.expr_ids)?;
            Unset(ExprRange::from_raw_parts(s, l), d.span()?)
        }
        15 => Throw(d.expr_id()?, d.span()?),
        16 => {
            let (bs, bl) = d.range(pools.stmt_ids)?;
            let (cs, cl) = d.range(pools.catches)?;
            let finally = match d.r.u8()? {
                0 => None,
                1 => {
                    let (fs, fl) = d.range(pools.stmt_ids)?;
                    Some(StmtRange::from_raw_parts(fs, fl))
                }
                _ => return d.r.fail("invalid option tag"),
            };
            Try {
                body: StmtRange::from_raw_parts(bs, bl),
                catches: CatchRange::from_raw_parts(cs, cl),
                finally,
                span: d.span()?,
            }
        }
        17 => {
            let (s, l) = d.range(pools.stmt_ids)?;
            Block(StmtRange::from_raw_parts(s, l), d.span()?)
        }
        18 => Function(dec_function(d, pools)?),
        19 => Class(dec_class(d, pools)?),
        20 => {
            let (s, l) = d.range(pools.consts)?;
            ConstDecl(ConstRange::from_raw_parts(s, l), d.span()?)
        }
        21 => Nop(d.span()?),
        22 => Error(d.span()?),
        _ => return d.r.fail("invalid statement tag"),
    })
}

// ------------------------------------------------------------- pool sizes

/// Pool lengths read from the header; every handle and range in the body
/// is validated against these before any `Vec` index can be built.
struct PoolSizes {
    exprs: usize,
    stmts: usize,
    expr_ids: usize,
    stmt_ids: usize,
    args: usize,
    params: usize,
    interp_parts: usize,
    array_items: usize,
    opt_exprs: usize,
    elseifs: usize,
    cases: usize,
    catches: usize,
    syms: usize,
    static_vars: usize,
    closure_uses: usize,
    consts: usize,
    members: usize,
}

// ------------------------------------------------------------ entry points

/// Encodes a parsed file to the versioned binary cache format.
pub fn encode_file(file: &ParsedFile) -> Vec<u8> {
    let a = &file.arena;
    let mut e = Enc {
        w: Writer::new(),
        syms: SymWriter::default(),
    };

    // Pool lengths up front, so the decoder can validate handles.
    for len in [
        a.exprs.len(),
        a.stmts.len(),
        a.expr_ids.len(),
        a.stmt_ids.len(),
        a.args.len(),
        a.params.len(),
        a.interp_parts.len(),
        a.array_items.len(),
        a.opt_exprs.len(),
        a.elseifs.len(),
        a.cases.len(),
        a.catches.len(),
        a.syms.len(),
        a.static_vars.len(),
        a.closure_uses.len(),
        a.consts.len(),
        a.members.len(),
    ] {
        e.w.u32(len as u32);
    }
    e.w.u32(a.slices);

    for expr in &a.exprs {
        enc_expr(&mut e, expr);
    }
    for stmt in &a.stmts {
        enc_stmt(&mut e, stmt);
    }
    for id in &a.expr_ids {
        e.expr_id(*id);
    }
    for id in &a.stmt_ids {
        e.stmt_id(*id);
    }
    for arg in &a.args {
        e.expr_id(arg.value);
        e.w.bool(arg.by_ref);
    }
    for p in &a.params {
        e.sym(p.name);
        e.w.bool(p.by_ref);
        e.opt_expr_id(p.default);
        e.opt_sym(p.type_hint);
        e.w.bool(p.variadic);
    }
    for part in &a.interp_parts {
        match part {
            InterpPart::Lit(s) => {
                e.w.u8(0);
                e.w.str(s.as_str());
            }
            InterpPart::Expr(id) => {
                e.w.u8(1);
                e.expr_id(*id);
            }
        }
    }
    for (key, value) in &a.array_items {
        e.opt_expr_id(*key);
        e.expr_id(*value);
    }
    for opt in &a.opt_exprs {
        e.opt_expr_id(*opt);
    }
    for (cond, body) in &a.elseifs {
        e.expr_id(*cond);
        e.range(body.raw_parts());
    }
    for case in &a.cases {
        e.opt_expr_id(case.value);
        e.range(case.body.raw_parts());
    }
    for c in &a.catches {
        e.sym(c.class);
        e.sym(c.var);
        e.range(c.body.raw_parts());
    }
    for s in &a.syms {
        e.sym(*s);
    }
    for (name, init) in &a.static_vars {
        e.sym(*name);
        e.opt_expr_id(*init);
    }
    for (name, by_ref) in &a.closure_uses {
        e.sym(*name);
        e.w.bool(*by_ref);
    }
    for (name, value) in &a.consts {
        e.sym(*name);
        e.expr_id(*value);
    }
    for m in &a.members {
        match m {
            ClassMember::Property {
                name,
                default,
                modifiers,
                span,
            } => {
                e.w.u8(0);
                e.sym(*name);
                e.opt_expr_id(*default);
                e.w.u8(enc_modifiers(*modifiers));
                e.span(*span);
            }
            ClassMember::Method(mods, f) => {
                e.w.u8(1);
                e.w.u8(enc_modifiers(*mods));
                enc_function(&mut e, f);
            }
            ClassMember::Const { name, value, span } => {
                e.w.u8(2);
                e.sym(*name);
                e.expr_id(*value);
                e.span(*span);
            }
            ClassMember::UseTrait(r, sp) => {
                e.w.u8(3);
                e.range(r.raw_parts());
                e.span(*sp);
            }
        }
    }

    e.range(file.top.raw_parts());
    e.w.u32(file.errors.len() as u32);
    for err in &file.errors {
        e.w.str(&err.message);
        e.w.u32(err.span.line);
    }

    // Final layout: magic + version, the string table (built while the
    // body was encoded), then the body.
    let Enc { w, syms } = e;
    let body = w.into_bytes();
    let mut out = Writer::new();
    out.raw(MAGIC);
    out.u8(VERSION);
    out.u32(syms.order.len() as u32);
    for sym in &syms.order {
        out.str(sym.as_str());
    }
    out.raw(&body);
    out.into_bytes()
}

/// Decodes a file previously produced by [`encode_file`]. Fails with a
/// [`CodecError`] on any malformed input.
pub fn decode_file(bytes: &[u8]) -> Result<ParsedFile> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(CodecError {
            what: "bad AST magic",
            at: 0,
        });
    }
    if r.u8()? != VERSION {
        return Err(CodecError {
            what: "unsupported AST codec version",
            at: 4,
        });
    }
    let n_syms = r.u32()? as usize;
    // A symbol table longer than the remaining bytes is garbage; this
    // bound stops a hostile header from pre-allocating gigabytes.
    if n_syms > bytes.len() {
        return Err(CodecError {
            what: "symbol table length exceeds input",
            at: r.offset(),
        });
    }
    let mut syms = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        syms.push(Symbol::intern(&r.str()?));
    }

    let mut counts = [0usize; 17];
    for c in &mut counts {
        *c = r.u32()? as usize;
        if *c > bytes.len() {
            return Err(CodecError {
                what: "pool length exceeds input",
                at: r.offset(),
            });
        }
    }
    let pools = PoolSizes {
        exprs: counts[0],
        stmts: counts[1],
        expr_ids: counts[2],
        stmt_ids: counts[3],
        args: counts[4],
        params: counts[5],
        interp_parts: counts[6],
        array_items: counts[7],
        opt_exprs: counts[8],
        elseifs: counts[9],
        cases: counts[10],
        catches: counts[11],
        syms: counts[12],
        static_vars: counts[13],
        closure_uses: counts[14],
        consts: counts[15],
        members: counts[16],
    };
    let slices = r.u32()?;

    let mut d = Dec {
        r,
        syms,
        n_exprs: pools.exprs as u32,
        n_stmts: pools.stmts as u32,
    };

    let mut arena = Arena::new();
    arena.exprs = Vec::with_capacity(pools.exprs);
    for _ in 0..pools.exprs {
        let expr = dec_expr(&mut d, &pools)?;
        arena.exprs.push(expr);
    }
    arena.stmts = Vec::with_capacity(pools.stmts);
    for _ in 0..pools.stmts {
        let stmt = dec_stmt(&mut d, &pools)?;
        arena.stmts.push(stmt);
    }
    arena.expr_ids = Vec::with_capacity(pools.expr_ids);
    for _ in 0..pools.expr_ids {
        let id = d.expr_id()?;
        arena.expr_ids.push(id);
    }
    arena.stmt_ids = Vec::with_capacity(pools.stmt_ids);
    for _ in 0..pools.stmt_ids {
        let id = d.stmt_id()?;
        arena.stmt_ids.push(id);
    }
    arena.args = Vec::with_capacity(pools.args);
    for _ in 0..pools.args {
        let value = d.expr_id()?;
        let by_ref = d.r.bool()?;
        arena.args.push(Arg { value, by_ref });
    }
    arena.params = Vec::with_capacity(pools.params);
    for _ in 0..pools.params {
        let name = d.sym()?;
        let by_ref = d.r.bool()?;
        let default = d.opt_expr_id()?;
        let type_hint = d.opt_sym()?;
        let variadic = d.r.bool()?;
        arena.params.push(Param {
            name,
            by_ref,
            default,
            type_hint,
            variadic,
        });
    }
    arena.interp_parts = Vec::with_capacity(pools.interp_parts);
    for _ in 0..pools.interp_parts {
        let part = match d.r.u8()? {
            0 => InterpPart::Lit(d.r.str()?.into()),
            1 => InterpPart::Expr(d.expr_id()?),
            _ => return d.r.fail("invalid interpolation tag"),
        };
        arena.interp_parts.push(part);
    }
    arena.array_items = Vec::with_capacity(pools.array_items);
    for _ in 0..pools.array_items {
        let key = d.opt_expr_id()?;
        let value = d.expr_id()?;
        arena.array_items.push((key, value));
    }
    arena.opt_exprs = Vec::with_capacity(pools.opt_exprs);
    for _ in 0..pools.opt_exprs {
        let opt = d.opt_expr_id()?;
        arena.opt_exprs.push(opt);
    }
    arena.elseifs = Vec::with_capacity(pools.elseifs);
    for _ in 0..pools.elseifs {
        let cond = d.expr_id()?;
        let (s, l) = d.range(pools.stmt_ids)?;
        arena.elseifs.push((cond, StmtRange::from_raw_parts(s, l)));
    }
    arena.cases = Vec::with_capacity(pools.cases);
    for _ in 0..pools.cases {
        let value = d.opt_expr_id()?;
        let (s, l) = d.range(pools.stmt_ids)?;
        arena.cases.push(SwitchCase {
            value,
            body: StmtRange::from_raw_parts(s, l),
        });
    }
    arena.catches = Vec::with_capacity(pools.catches);
    for _ in 0..pools.catches {
        let class = d.sym()?;
        let var = d.sym()?;
        let (s, l) = d.range(pools.stmt_ids)?;
        arena.catches.push(Catch {
            class,
            var,
            body: StmtRange::from_raw_parts(s, l),
        });
    }
    arena.syms = Vec::with_capacity(pools.syms);
    for _ in 0..pools.syms {
        let s = d.sym()?;
        arena.syms.push(s);
    }
    arena.static_vars = Vec::with_capacity(pools.static_vars);
    for _ in 0..pools.static_vars {
        let name = d.sym()?;
        let init = d.opt_expr_id()?;
        arena.static_vars.push((name, init));
    }
    arena.closure_uses = Vec::with_capacity(pools.closure_uses);
    for _ in 0..pools.closure_uses {
        let name = d.sym()?;
        let by_ref = d.r.bool()?;
        arena.closure_uses.push((name, by_ref));
    }
    arena.consts = Vec::with_capacity(pools.consts);
    for _ in 0..pools.consts {
        let name = d.sym()?;
        let value = d.expr_id()?;
        arena.consts.push((name, value));
    }
    arena.members = Vec::with_capacity(pools.members);
    for _ in 0..pools.members {
        let member = match d.r.u8()? {
            0 => {
                let name = d.sym()?;
                let default = d.opt_expr_id()?;
                let modifiers = dec_modifiers(d.r.u8()?, &d.r)?;
                ClassMember::Property {
                    name,
                    default,
                    modifiers,
                    span: d.span()?,
                }
            }
            1 => {
                let mods = dec_modifiers(d.r.u8()?, &d.r)?;
                ClassMember::Method(mods, dec_function(&mut d, &pools)?)
            }
            2 => {
                let name = d.sym()?;
                let value = d.expr_id()?;
                ClassMember::Const {
                    name,
                    value,
                    span: d.span()?,
                }
            }
            3 => {
                let (s, l) = d.range(pools.syms)?;
                ClassMember::UseTrait(SymRange::from_raw_parts(s, l), d.span()?)
            }
            _ => return d.r.fail("invalid class member tag"),
        };
        arena.members.push(member);
    }
    arena.slices = slices;

    let (ts, tl) = d.range(pools.stmt_ids)?;
    let top = StmtRange::from_raw_parts(ts, tl);
    let n_errors = d.r.u32()? as usize;
    if n_errors > bytes.len() {
        return d.r.fail("error list length exceeds input");
    }
    let mut errors = Vec::with_capacity(n_errors);
    for _ in 0..n_errors {
        let message = d.r.str()?;
        let line = d.r.u32()?;
        errors.push(ParseError {
            message,
            span: Span::at(line),
        });
    }
    if !d.r.is_at_end() {
        return d.r.fail("trailing bytes after file");
    }
    Ok(ParsedFile { arena, top, errors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// Representative sources covering every node kind the corpus uses:
    /// literals, OOP, closures, control flow, interpolation, recovery.
    const SOURCES: &[&str] = &[
        "<?php echo 1;",
        "<?php $x = $_GET['a']; echo $x;",
        r#"<?php
        function f($a, &$b, $c = array(1, 2 => "x"), ...$rest) {
            global $db;
            static $n = 0, $m;
            if ($a > 1) { return $a + 1; } elseif ($a < 0) { return -$a; }
            else { while ($a--) { echo "loop $a\n"; } }
            for ($i = 0; $i < 3; $i++) { continue; }
            foreach ($c as $k => &$v) { $v .= "!"; }
            switch ($a) { case 1: break; default: return null; }
            try { throw new Exception("x"); } catch (Exception $e) { }
            do { $a++; } while ($a < 2);
            return isset($a, $b) ? trim($a) : (int)$b;
        }
        "#,
        r#"<?php
        class Widget extends Base implements A, B {
            const LIMIT = 10;
            public static $registry = array();
            private $name;
            public function __construct($name) { $this->name = $name; }
            public function render() { echo $this->name; }
            final protected function helper() { return self::LIMIT; }
        }
        interface A { public function render(); }
        trait T { public function t() { return 1; } }
        $w = new Widget($_POST['n']);
        $w->render();
        Widget::$registry[] = $w;
        echo Widget::LIMIT, PHP_EOL;
        "#,
        r#"<?php
        $f = function ($x) use (&$acc, $sep) { $acc .= $x . $sep; };
        $f("a");
        $g = $$name;
        list($a, , $b) = explode(",", `ls -l`);
        echo "interp {$a} and $b->prop end";
        print @file_get_contents($a);
        unset($a, $b);
        include_once 'lib.php';
        exit;
        "#,
        "<?php if ($a { echo 1; }", // recovered parse error
        "plain html, no php at all",
        "",
    ];

    #[test]
    fn roundtrip_is_identity() {
        for src in SOURCES {
            let file = parse(src);
            let bytes = encode_file(&file);
            let back = decode_file(&bytes).unwrap_or_else(|e| panic!("decode {src:?}: {e}"));
            assert_eq!(file, back, "source: {src:?}");
        }
    }

    #[test]
    fn roundtrip_preserves_parse_errors() {
        let file = parse("<?php if ($a { echo 1; }");
        assert!(!file.is_clean());
        let back = decode_file(&encode_file(&file)).unwrap();
        assert_eq!(file.errors, back.errors);
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let file = parse(SOURCES[2]);
        let bytes = encode_file(&file);
        // Chopping the encoding anywhere must produce an error (or, for
        // the empty prefix, also an error) — never a panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_file(&bytes[..cut]).is_err(),
                "truncation at {cut}/{} decoded successfully",
                bytes.len()
            );
        }
    }

    #[test]
    fn flipped_bytes_never_panic() {
        let file = parse(SOURCES[3]);
        let bytes = encode_file(&file);
        // Flip each byte in turn; the decode must either fail or produce
        // *some* file — it must never panic or index out of bounds. (A
        // flip inside a string literal legitimately decodes.)
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x5a;
            let _ = decode_file(&mutated);
        }
    }

    #[test]
    fn garbage_inputs_fail() {
        assert!(decode_file(b"").is_err());
        assert!(decode_file(b"PAST").is_err());
        assert!(decode_file(b"not an ast").is_err());
        let mut huge_symtab = Vec::new();
        huge_symtab.extend_from_slice(MAGIC);
        huge_symtab.push(VERSION);
        huge_symtab.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_file(&huge_symtab).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let src = SOURCES[3];
        let a = encode_file(&parse(src));
        let b = encode_file(&parse(src));
        assert_eq!(a, b);
    }

    #[test]
    fn decoded_file_prints_identically() {
        use crate::printer::print_stmt;
        for src in SOURCES {
            let file = parse(src);
            let back = decode_file(&encode_file(&file)).unwrap();
            let a: Vec<String> = file
                .top_stmts()
                .iter()
                .map(|&s| print_stmt(&file, s))
                .collect();
            let b: Vec<String> = back
                .top_stmts()
                .iter()
                .map(|&s| print_stmt(&back, s))
                .collect();
            assert_eq!(a, b, "source: {src:?}");
        }
    }
}
