//! # php-ast
//!
//! A typed abstract syntax tree and error-tolerant recursive-descent parser
//! for the PHP 5 language subset used by CMS plugins — the model the
//! phpSAFE paper builds in its *model construction* stage (§III.B).
//!
//! The parser consumes tokens from [`php_lexer`] and produces a
//! [`ParsedFile`]. It never fails: malformed constructs are recorded as
//! [`ParseError`]s and replaced with `Error` placeholder nodes so the
//! analyzers can keep going (plugin robustness is one of the paper's
//! evaluation dimensions).
//!
//! Nodes live in a per-file [`Arena`]: flat `Vec` pools addressed by
//! `Copy` [`ExprId`]/[`StmtId`] handles, with child lists stored as
//! `(start, len)` ranges into shared slice pools — one allocation per
//! pool instead of one per node, and memory order matching traversal
//! order for the taint walks.
//!
//! ```
//! use php_ast::{parse, Stmt};
//!
//! let file = parse("<?php class C { function m() { echo $_GET['x']; } }");
//! assert!(file.is_clean());
//! assert!(matches!(file.stmt(file.top_stmts()[0]), Stmt::Class(_)));
//! ```

#![warn(missing_docs)]

mod ast;
pub mod codec;
mod parser;
pub mod printer;
pub mod visit;
pub mod zast;

pub use ast::*;
pub use parser::{parse, parse_tokens};
pub use phpsafe_intern::Symbol;
