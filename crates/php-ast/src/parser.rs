//! Recursive-descent / Pratt parser from token streams to [`crate::ast`]
//! arenas.
//!
//! The parser is *error-tolerant*: unexpected input produces
//! [`Expr::Error`] / [`Stmt::Error`] placeholders plus a recorded
//! [`ParseError`], and parsing continues. Analyzing plugins requires
//! surviving whatever third-party developers ship (the paper's robustness
//! metric counts exactly this).
//!
//! Nodes are allocated into the file's [`Arena`] as they are reduced, so
//! pool order matches evaluation order and the returned [`ParsedFile`] is
//! a few flat buffers rather than a pointer tree.

use crate::ast::*;
use php_lexer::{tokenize, Token, TokenKind as K};
use phpsafe_intern::Symbol;

/// Parses a complete PHP source file (HTML mode at start, like PHP itself).
///
/// # Examples
///
/// ```
/// use php_ast::parse;
/// let file = parse("<?php echo $_GET['id'];");
/// assert!(file.is_clean());
/// assert_eq!(file.top_stmts().len(), 1);
/// ```
pub fn parse(src: &str) -> ParsedFile {
    parse_tokens(tokenize(src))
}

/// Parses a pre-lexed token stream (trivia is filtered here, so the stream
/// may come straight from [`php_lexer::tokenize`]).
///
/// Splitting lexing from parsing lets callers time the two stages
/// independently — the engine's stage statistics need that.
///
/// # Examples
///
/// ```
/// use php_ast::parse_tokens;
/// use php_lexer::tokenize;
/// let file = parse_tokens(tokenize("<?php echo $_GET['id'];"));
/// assert!(file.is_clean());
/// ```
pub fn parse_tokens(toks: Vec<Token>) -> ParsedFile {
    let _span = phpsafe_obs::span!("stage.parse", toks.len());
    let toks: Vec<Token> = toks.into_iter().filter(|t| !t.kind.is_trivia()).collect();
    let file = Parser::new(toks).parse_file();
    phpsafe_obs::count("parse.files", 1);
    phpsafe_obs::count("parse.errors", file.errors.len() as u64);
    phpsafe_obs::count("ast.nodes", file.node_count() as u64);
    phpsafe_obs::count("ast.arena_bytes", file.arena_bytes() as u64);
    phpsafe_obs::count("ast.slices", file.slice_count() as u64);
    file
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    arena: Arena,
    errors: Vec<ParseError>,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Self {
        Parser {
            toks,
            pos: 0,
            arena: Arena::new(),
            errors: Vec::new(),
        }
    }

    // ---- stream primitives ----

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_kind(&self) -> Option<K> {
        self.peek().map(|t| t.kind)
    }

    fn peek_kind_at(&self, n: usize) -> Option<K> {
        self.toks.get(self.pos + n).map(|t| t.kind)
    }

    fn at(&self, k: K) -> bool {
        self.peek_kind() == Some(k)
    }

    fn line(&self) -> u32 {
        self.peek()
            .map(|t| t.line)
            .or_else(|| self.toks.last().map(|t| t.line))
            .unwrap_or(1)
    }

    fn span(&self) -> Span {
        Span::at(self.line())
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, k: K) -> bool {
        if self.at(k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn error(&mut self, msg: impl Into<String>) {
        let span = self.span();
        self.errors.push(ParseError {
            message: msg.into(),
            span,
        });
    }

    fn expect(&mut self, k: K, what: &str) -> bool {
        if self.eat(k) {
            true
        } else {
            let found = self
                .peek()
                .map(|t| t.kind.php_name().to_string())
                .unwrap_or_else(|| "end of file".into());
            self.error(format!("expected {what}, found {found}"));
            false
        }
    }

    fn is_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn expr(&mut self, e: Expr) -> ExprId {
        self.arena.alloc_expr(e)
    }

    fn stmt(&mut self, s: Stmt) -> StmtId {
        self.arena.alloc_stmt(s)
    }

    // ---- file / block level ----

    fn parse_file(mut self) -> ParsedFile {
        let mut stmts = Vec::new();
        while !self.is_eof() {
            let before = self.pos;
            if let Some(s) = self.parse_top() {
                stmts.push(s);
            }
            if self.pos == before {
                // Guarantee progress: drop one token as an error.
                self.error(format!(
                    "unexpected token {}",
                    self.peek().map(|t| t.kind.php_name()).unwrap_or("?")
                ));
                let span = self.span();
                self.bump();
                let s = self.stmt(Stmt::Error(span));
                stmts.push(s);
            }
        }
        let top = self.arena.alloc_stmt_list(stmts);
        let mut arena = self.arena;
        arena.shrink_to_fit();
        ParsedFile {
            arena,
            top,
            errors: self.errors,
        }
    }

    /// Handles top-of-loop tokens that are not statements proper (tags,
    /// HTML). Returns a statement when one was parsed.
    fn parse_top(&mut self) -> Option<StmtId> {
        match self.peek_kind()? {
            K::OpenTag => {
                self.bump();
                None
            }
            K::CloseTag => {
                self.bump();
                None
            }
            K::InlineHtml => {
                let t = self.bump().expect("html");
                Some(self.stmt(Stmt::InlineHtml(t.text.into(), Span::at(t.line))))
            }
            K::OpenTagWithEcho => {
                let line = self.line();
                self.bump();
                let mut exprs = vec![self.parse_expr()];
                while self.eat(K::Comma) {
                    exprs.push(self.parse_expr());
                }
                self.eat(K::Semicolon);
                let exprs = self.arena.alloc_expr_list(exprs);
                Some(self.stmt(Stmt::Echo(exprs, Span::at(line))))
            }
            _ => Some(self.parse_stmt()),
        }
    }

    /// Parses statements until one of `enders` (alternative-syntax blocks),
    /// EOF, or a closing brace that isn't ours. Does not consume the ender.
    fn parse_stmts_until(&mut self, enders: &[K]) -> StmtRange {
        let mut out = Vec::new();
        loop {
            match self.peek_kind() {
                None => break,
                Some(k) if enders.contains(&k) => break,
                Some(K::OpenTag) | Some(K::CloseTag) => {
                    self.bump();
                }
                Some(K::InlineHtml) => {
                    let t = self.bump().expect("html");
                    let s = self.stmt(Stmt::InlineHtml(t.text.into(), Span::at(t.line)));
                    out.push(s);
                }
                Some(K::OpenTagWithEcho) => {
                    if let Some(s) = self.parse_top() {
                        out.push(s);
                    }
                }
                Some(_) => {
                    let before = self.pos;
                    out.push(self.parse_stmt());
                    if self.pos == before {
                        self.error("parser stuck; skipping token");
                        let span = self.span();
                        self.bump();
                        let s = self.stmt(Stmt::Error(span));
                        out.push(s);
                    }
                }
            }
        }
        self.arena.alloc_stmt_list(out)
    }

    /// Parses a `{ ... }` block or a single statement (PHP allows both as
    /// bodies); with alternative syntax, parses until one of `alt_enders`
    /// and consumes the ender keyword.
    fn parse_body(&mut self, alt_enders: &[K]) -> StmtRange {
        if self.eat(K::Colon) {
            let body = self.parse_stmts_until(alt_enders);
            if let Some(k) = self.peek_kind() {
                if alt_enders.contains(&k) {
                    // Ender consumed by caller for elseif chains; consume
                    // terminal enders here.
                    // (callers handle Else/Elseif themselves)
                }
            }
            return body;
        }
        if self.eat(K::OpenBrace) {
            let body = self.parse_stmts_until(&[K::CloseBrace]);
            self.expect(K::CloseBrace, "`}`");
            return body;
        }
        let s = self.parse_stmt();
        self.arena.alloc_stmt_list(vec![s])
    }

    // ---- statements ----

    fn parse_stmt(&mut self) -> StmtId {
        let span = self.span();
        let s = match self.peek_kind() {
            Some(K::Semicolon) => {
                self.bump();
                Stmt::Nop(span)
            }
            Some(K::OpenBrace) => {
                self.bump();
                let body = self.parse_stmts_until(&[K::CloseBrace]);
                self.expect(K::CloseBrace, "`}`");
                Stmt::Block(body, span)
            }
            Some(K::Echo) => {
                self.bump();
                let mut exprs = vec![self.parse_expr()];
                while self.eat(K::Comma) {
                    exprs.push(self.parse_expr());
                }
                self.end_stmt();
                let exprs = self.arena.alloc_expr_list(exprs);
                Stmt::Echo(exprs, span)
            }
            Some(K::If) => self.parse_if(),
            Some(K::While) => self.parse_while(),
            Some(K::Do) => self.parse_do_while(),
            Some(K::For) => self.parse_for(),
            Some(K::Foreach) => self.parse_foreach(),
            Some(K::Switch) => self.parse_switch(),
            Some(K::Break) => {
                self.bump();
                if matches!(self.peek_kind(), Some(K::LNumber)) {
                    self.bump();
                }
                self.end_stmt();
                Stmt::Break(span)
            }
            Some(K::Continue) => {
                self.bump();
                if matches!(self.peek_kind(), Some(K::LNumber)) {
                    self.bump();
                }
                self.end_stmt();
                Stmt::Continue(span)
            }
            Some(K::Return) => {
                self.bump();
                let value = if self.at(K::Semicolon) || self.at(K::CloseTag) || self.is_eof() {
                    None
                } else {
                    Some(self.parse_expr())
                };
                self.end_stmt();
                Stmt::Return(value, span)
            }
            Some(K::Global) => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    if let Some(K::Variable) = self.peek_kind() {
                        names.push(self.bump().expect("var").sym);
                    } else {
                        self.error("expected variable after `global`");
                        break;
                    }
                    if !self.eat(K::Comma) {
                        break;
                    }
                }
                self.end_stmt();
                let names = self.arena.alloc_syms(names);
                Stmt::Global(names, span)
            }
            Some(K::Static) if matches!(self.peek_kind_at(1), Some(K::Variable)) => {
                self.bump();
                let mut vars = Vec::new();
                while let Some(K::Variable) = self.peek_kind() {
                    let name = self.bump().expect("var").sym;
                    let default = if self.eat(K::Assign) {
                        Some(self.parse_expr())
                    } else {
                        None
                    };
                    vars.push((name, default));
                    if !self.eat(K::Comma) {
                        break;
                    }
                }
                self.end_stmt();
                let vars = self.arena.alloc_static_vars(vars);
                Stmt::StaticVars(vars, span)
            }
            Some(K::Unset) => {
                self.bump();
                self.expect(K::OpenParen, "`(` after unset");
                let mut exprs = Vec::new();
                if !self.at(K::CloseParen) {
                    exprs.push(self.parse_expr());
                    while self.eat(K::Comma) {
                        exprs.push(self.parse_expr());
                    }
                }
                self.expect(K::CloseParen, "`)`");
                self.end_stmt();
                let exprs = self.arena.alloc_expr_list(exprs);
                Stmt::Unset(exprs, span)
            }
            Some(K::Throw) => {
                self.bump();
                let e = self.parse_expr();
                self.end_stmt();
                Stmt::Throw(e, span)
            }
            Some(K::Try) => self.parse_try(),
            Some(K::Function)
                if matches!(self.peek_kind_at(1), Some(K::Identifier))
                    || (matches!(self.peek_kind_at(1), Some(K::Amp))
                        && matches!(self.peek_kind_at(2), Some(K::Identifier))) =>
            {
                let f = self.parse_function_decl();
                Stmt::Function(f)
            }
            Some(K::Abstract) | Some(K::Final) if self.lookahead_is_class() => {
                self.parse_class_decl()
            }
            Some(K::Class) | Some(K::Interface) | Some(K::Trait) => self.parse_class_decl(),
            Some(K::Const) => {
                self.bump();
                let mut consts = Vec::new();
                loop {
                    let name = if self.at(K::Identifier) {
                        self.bump().expect("ident").sym
                    } else {
                        self.error("expected constant name");
                        break;
                    };
                    self.expect(K::Assign, "`=`");
                    let value = self.parse_expr();
                    consts.push((name, value));
                    if !self.eat(K::Comma) {
                        break;
                    }
                }
                self.end_stmt();
                let consts = self.arena.alloc_consts(consts);
                Stmt::ConstDecl(consts, span)
            }
            Some(K::Namespace) => {
                // `namespace A\B;` or `namespace A\B { ... }` — record as a
                // no-op scope marker; plugin code is effectively global.
                self.bump();
                while matches!(self.peek_kind(), Some(K::Identifier) | Some(K::Backslash)) {
                    self.bump();
                }
                if self.eat(K::OpenBrace) {
                    let body = self.parse_stmts_until(&[K::CloseBrace]);
                    self.expect(K::CloseBrace, "`}`");
                    return self.stmt(Stmt::Block(body, span));
                }
                self.end_stmt();
                Stmt::Nop(span)
            }
            Some(K::Use) => {
                // top-level `use A\B as C;` import — no analysis impact.
                self.bump();
                while !self.at(K::Semicolon) && !self.is_eof() && !self.at(K::CloseTag) {
                    self.bump();
                }
                self.end_stmt();
                Stmt::Nop(span)
            }
            Some(K::Declare) => {
                self.bump();
                self.expect(K::OpenParen, "`(`");
                while !self.at(K::CloseParen) && !self.is_eof() {
                    self.bump();
                }
                self.expect(K::CloseParen, "`)`");
                if self.eat(K::OpenBrace) {
                    let body = self.parse_stmts_until(&[K::CloseBrace]);
                    self.expect(K::CloseBrace, "`}`");
                    return self.stmt(Stmt::Block(body, span));
                }
                self.end_stmt();
                Stmt::Nop(span)
            }
            Some(K::Goto) => {
                self.bump();
                if self.at(K::Identifier) {
                    self.bump();
                }
                self.end_stmt();
                Stmt::Nop(span)
            }
            Some(_) => {
                let e = self.parse_expr();
                self.end_stmt();
                Stmt::Expr(e, span)
            }
            None => Stmt::Nop(span),
        };
        self.stmt(s)
    }

    /// After `abstract`/`final`, is a class declaration coming?
    fn lookahead_is_class(&self) -> bool {
        let mut i = 1;
        while matches!(self.peek_kind_at(i), Some(K::Abstract) | Some(K::Final)) {
            i += 1;
        }
        matches!(self.peek_kind_at(i), Some(K::Class))
    }

    /// Consumes the statement terminator: `;`, or a close tag (which PHP
    /// accepts as an implicit semicolon).
    fn end_stmt(&mut self) {
        if self.eat(K::Semicolon) {
            return;
        }
        if self.at(K::CloseTag) || self.is_eof() {
            return; // close tag handled by the statement loop
        }
        self.error("expected `;`");
        // Recover: skip to the next plausible statement boundary — a
        // semicolon, a block edge, or a statement-starting keyword.
        while let Some(k) = self.peek_kind() {
            match k {
                K::Semicolon => {
                    self.bump();
                    break;
                }
                K::CloseBrace
                | K::CloseTag
                | K::OpenBrace
                | K::Echo
                | K::If
                | K::While
                | K::Do
                | K::For
                | K::Foreach
                | K::Switch
                | K::Return
                | K::Function
                | K::Class
                | K::Interface
                | K::Trait
                | K::Global
                | K::Throw
                | K::Try => break,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_if(&mut self) -> Stmt {
        let span = self.span();
        self.bump(); // if
        self.expect(K::OpenParen, "`(`");
        let cond = self.parse_expr();
        self.expect(K::CloseParen, "`)`");
        if self.eat(K::Colon) {
            // Alternative syntax: if: ... [elseif: ...]* [else: ...] endif;
            let then = self.parse_stmts_until(&[K::Elseif, K::Else, K::EndIf]);
            let mut elseifs = Vec::new();
            let mut otherwise = None;
            loop {
                if self.eat(K::Elseif) {
                    self.expect(K::OpenParen, "`(`");
                    let c = self.parse_expr();
                    self.expect(K::CloseParen, "`)`");
                    self.eat(K::Colon);
                    let b = self.parse_stmts_until(&[K::Elseif, K::Else, K::EndIf]);
                    elseifs.push((c, b));
                } else if self.eat(K::Else) {
                    self.eat(K::Colon);
                    otherwise = Some(self.parse_stmts_until(&[K::EndIf]));
                } else {
                    break;
                }
            }
            self.expect(K::EndIf, "`endif`");
            self.end_stmt();
            let elseifs = self.arena.alloc_elseifs(elseifs);
            return Stmt::If {
                cond,
                then,
                elseifs,
                otherwise,
                span,
            };
        }
        let then = self.parse_body(&[]);
        let mut elseifs = Vec::new();
        let mut otherwise = None;
        loop {
            if self.eat(K::Elseif) {
                self.expect(K::OpenParen, "`(`");
                let c = self.parse_expr();
                self.expect(K::CloseParen, "`)`");
                let b = self.parse_body(&[]);
                elseifs.push((c, b));
            } else if self.at(K::Else) && self.peek_kind_at(1) == Some(K::If) {
                self.bump();
                self.bump();
                self.expect(K::OpenParen, "`(`");
                let c = self.parse_expr();
                self.expect(K::CloseParen, "`)`");
                let b = self.parse_body(&[]);
                elseifs.push((c, b));
            } else if self.eat(K::Else) {
                otherwise = Some(self.parse_body(&[]));
                break;
            } else {
                break;
            }
        }
        let elseifs = self.arena.alloc_elseifs(elseifs);
        Stmt::If {
            cond,
            then,
            elseifs,
            otherwise,
            span,
        }
    }

    fn parse_while(&mut self) -> Stmt {
        let span = self.span();
        self.bump();
        self.expect(K::OpenParen, "`(`");
        let cond = self.parse_expr();
        self.expect(K::CloseParen, "`)`");
        let body = if self.at(K::Colon) {
            self.bump();
            let b = self.parse_stmts_until(&[K::EndWhile]);
            self.expect(K::EndWhile, "`endwhile`");
            self.end_stmt();
            b
        } else {
            self.parse_body(&[])
        };
        Stmt::While { cond, body, span }
    }

    fn parse_do_while(&mut self) -> Stmt {
        let span = self.span();
        self.bump(); // do
        let body = self.parse_body(&[]);
        self.expect(K::While, "`while`");
        self.expect(K::OpenParen, "`(`");
        let cond = self.parse_expr();
        self.expect(K::CloseParen, "`)`");
        self.end_stmt();
        Stmt::DoWhile { body, cond, span }
    }

    fn parse_expr_vec(&mut self, stop: K) -> Vec<ExprId> {
        let mut out = Vec::new();
        if self.at(stop) {
            return out;
        }
        out.push(self.parse_expr());
        while self.eat(K::Comma) {
            out.push(self.parse_expr());
        }
        out
    }

    fn parse_expr_list(&mut self, stop: K) -> ExprRange {
        let out = self.parse_expr_vec(stop);
        self.arena.alloc_expr_list(out)
    }

    fn parse_for(&mut self) -> Stmt {
        let span = self.span();
        self.bump();
        self.expect(K::OpenParen, "`(`");
        let init = self.parse_expr_list(K::Semicolon);
        self.expect(K::Semicolon, "`;`");
        let cond = self.parse_expr_list(K::Semicolon);
        self.expect(K::Semicolon, "`;`");
        let step = self.parse_expr_list(K::CloseParen);
        self.expect(K::CloseParen, "`)`");
        let body = if self.at(K::Colon) {
            self.bump();
            let b = self.parse_stmts_until(&[K::EndFor]);
            self.expect(K::EndFor, "`endfor`");
            self.end_stmt();
            b
        } else {
            self.parse_body(&[])
        };
        Stmt::For {
            init,
            cond,
            step,
            body,
            span,
        }
    }

    fn parse_foreach(&mut self) -> Stmt {
        let span = self.span();
        self.bump();
        self.expect(K::OpenParen, "`(`");
        let subject = self.parse_expr();
        self.expect(K::As, "`as`");
        let mut by_ref = self.eat(K::Amp);
        let first = self.parse_expr();
        let (key, value, by_ref2) = if self.eat(K::DoubleArrow) {
            let vref = self.eat(K::Amp);
            let v = self.parse_expr();
            (Some(first), v, vref)
        } else {
            (None, first, false)
        };
        by_ref = by_ref || by_ref2;
        self.expect(K::CloseParen, "`)`");
        let body = if self.at(K::Colon) {
            self.bump();
            let b = self.parse_stmts_until(&[K::EndForeach]);
            self.expect(K::EndForeach, "`endforeach`");
            self.end_stmt();
            b
        } else {
            self.parse_body(&[])
        };
        Stmt::Foreach {
            subject,
            key,
            value,
            by_ref,
            body,
            span,
        }
    }

    fn parse_switch(&mut self) -> Stmt {
        let span = self.span();
        self.bump();
        self.expect(K::OpenParen, "`(`");
        let subject = self.parse_expr();
        self.expect(K::CloseParen, "`)`");
        let alt = self.eat(K::Colon);
        if !alt {
            self.expect(K::OpenBrace, "`{`");
        }
        let mut cases = Vec::new();
        loop {
            match self.peek_kind() {
                Some(K::Case) => {
                    self.bump();
                    let value = self.parse_expr();
                    if !self.eat(K::Colon) {
                        self.eat(K::Semicolon);
                    }
                    let body =
                        self.parse_stmts_until(&[K::Case, K::Default, K::CloseBrace, K::EndSwitch]);
                    cases.push(SwitchCase {
                        value: Some(value),
                        body,
                    });
                }
                Some(K::Default) => {
                    self.bump();
                    if !self.eat(K::Colon) {
                        self.eat(K::Semicolon);
                    }
                    let body =
                        self.parse_stmts_until(&[K::Case, K::Default, K::CloseBrace, K::EndSwitch]);
                    cases.push(SwitchCase { value: None, body });
                }
                _ => break,
            }
        }
        if alt {
            self.expect(K::EndSwitch, "`endswitch`");
            self.end_stmt();
        } else {
            self.expect(K::CloseBrace, "`}`");
        }
        let cases = self.arena.alloc_cases(cases);
        Stmt::Switch {
            subject,
            cases,
            span,
        }
    }

    fn parse_try(&mut self) -> Stmt {
        let span = self.span();
        self.bump();
        self.expect(K::OpenBrace, "`{`");
        let body = self.parse_stmts_until(&[K::CloseBrace]);
        self.expect(K::CloseBrace, "`}`");
        let mut catches = Vec::new();
        while self.eat(K::Catch) {
            self.expect(K::OpenParen, "`(`");
            let class = match self.parse_name() {
                Some(n) => Symbol::intern(&n),
                None => {
                    self.error("expected exception class");
                    "Exception".into()
                }
            };
            let var = if self.at(K::Variable) {
                self.bump().expect("var").sym
            } else {
                self.error("expected catch variable");
                "$e".into()
            };
            self.expect(K::CloseParen, "`)`");
            self.expect(K::OpenBrace, "`{`");
            let cbody = self.parse_stmts_until(&[K::CloseBrace]);
            self.expect(K::CloseBrace, "`}`");
            catches.push(Catch {
                class,
                var,
                body: cbody,
            });
        }
        let finally = if self.eat(K::Finally) {
            self.expect(K::OpenBrace, "`{`");
            let f = self.parse_stmts_until(&[K::CloseBrace]);
            self.expect(K::CloseBrace, "`}`");
            Some(f)
        } else {
            None
        };
        let catches = self.arena.alloc_catches(catches);
        Stmt::Try {
            body,
            catches,
            finally,
            span,
        }
    }

    /// Parses a possibly-namespaced name (`Foo`, `\Foo\Bar`, `self`,
    /// `static`, `array` in type position).
    fn parse_name(&mut self) -> Option<String> {
        let mut name = String::new();
        if self.eat(K::Backslash) {
            name.push('\\');
        }
        match self.peek_kind() {
            Some(K::Identifier) => name.push_str(&self.bump().expect("id").text),
            Some(K::Static) => {
                self.bump();
                name.push_str("static");
            }
            Some(K::Array) => {
                self.bump();
                name.push_str("array");
            }
            Some(K::Callable) => {
                self.bump();
                name.push_str("callable");
            }
            _ => return if name.is_empty() { None } else { Some(name) },
        }
        while self.at(K::Backslash) && matches!(self.peek_kind_at(1), Some(K::Identifier)) {
            self.bump();
            name.push('\\');
            name.push_str(&self.bump().expect("id").text);
        }
        Some(name)
    }

    // ---- declarations ----

    fn parse_function_decl(&mut self) -> FunctionDecl {
        let span = self.span();
        self.bump(); // function
        let by_ref = self.eat(K::Amp);
        let name = if self.at(K::Identifier) {
            self.bump().expect("id").sym
        } else {
            self.error("expected function name");
            format!("__anon_{}", span.line).into()
        };
        let params = self.parse_params();
        let body = if self.eat(K::OpenBrace) {
            let b = self.parse_stmts_until(&[K::CloseBrace]);
            self.expect(K::CloseBrace, "`}`");
            b
        } else {
            self.end_stmt(); // abstract/interface method
            StmtRange::EMPTY
        };
        FunctionDecl {
            name,
            params,
            by_ref,
            body,
            span,
        }
    }

    fn parse_params(&mut self) -> ParamRange {
        let mut params = Vec::new();
        if !self.expect(K::OpenParen, "`(`") {
            return ParamRange::EMPTY;
        }
        if self.eat(K::CloseParen) {
            return ParamRange::EMPTY;
        }
        loop {
            let type_hint = if matches!(
                self.peek_kind(),
                Some(K::Identifier) | Some(K::Array) | Some(K::Callable) | Some(K::Backslash)
            ) {
                self.parse_name().map(|n| Symbol::intern(&n))
            } else {
                None
            };
            let by_ref = self.eat(K::Amp);
            let variadic = self.eat(K::Ellipsis);
            let name = if self.at(K::Variable) {
                self.bump().expect("var").sym
            } else {
                self.error("expected parameter variable");
                break;
            };
            let default = if self.eat(K::Assign) {
                Some(self.parse_expr())
            } else {
                None
            };
            params.push(Param {
                name,
                by_ref,
                default,
                type_hint,
                variadic,
            });
            if !self.eat(K::Comma) {
                break;
            }
        }
        self.expect(K::CloseParen, "`)`");
        self.arena.alloc_params(params)
    }

    fn parse_class_decl(&mut self) -> Stmt {
        let span = self.span();
        let mut is_abstract = false;
        let mut is_final = false;
        loop {
            match self.peek_kind() {
                Some(K::Abstract) => {
                    is_abstract = true;
                    self.bump();
                }
                Some(K::Final) => {
                    is_final = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let kind = match self.peek_kind() {
            Some(K::Interface) => ClassKind::Interface,
            Some(K::Trait) => ClassKind::Trait,
            _ => ClassKind::Class,
        };
        self.bump(); // class/interface/trait
        let name = if self.at(K::Identifier) {
            self.bump().expect("id").sym
        } else {
            self.error("expected class name");
            format!("__anon_class_{}", span.line).into()
        };
        let mut parent = None;
        let mut interfaces = Vec::new();
        if self.eat(K::Extends) {
            parent = self.parse_name().map(Symbol::from);
            if parent.is_none() {
                self.error("expected parent class name after `extends`");
            }
            // interfaces may extend a list; keep only the first as parent.
            while self.eat(K::Comma) {
                if let Some(n) = self.parse_name() {
                    interfaces.push(Symbol::intern(&n));
                }
            }
        }
        if self.eat(K::Implements) {
            while let Some(n) = self.parse_name() {
                interfaces.push(Symbol::intern(&n));
                if !self.eat(K::Comma) {
                    break;
                }
            }
        }
        self.expect(K::OpenBrace, "`{`");
        let members = self.parse_class_members();
        self.expect(K::CloseBrace, "`}`");
        let interfaces = self.arena.alloc_syms(interfaces);
        Stmt::Class(ClassDecl {
            name,
            kind,
            parent,
            interfaces,
            is_abstract,
            is_final,
            members,
            span,
        })
    }

    fn parse_class_members(&mut self) -> MemberRange {
        let mut members = Vec::new();
        while !self.at(K::CloseBrace) && !self.is_eof() {
            let before = self.pos;
            let span = self.span();
            if self.eat(K::Use) {
                let mut traits = Vec::new();
                while let Some(n) = self.parse_name() {
                    traits.push(Symbol::intern(&n));
                    if !self.eat(K::Comma) {
                        break;
                    }
                }
                if self.eat(K::OpenBrace) {
                    // conflict-resolution block — skip
                    let mut depth = 1;
                    while depth > 0 && !self.is_eof() {
                        match self.peek_kind() {
                            Some(K::OpenBrace) => depth += 1,
                            Some(K::CloseBrace) => depth -= 1,
                            _ => {}
                        }
                        self.bump();
                    }
                } else {
                    self.end_stmt();
                }
                let traits = self.arena.alloc_syms(traits);
                members.push(ClassMember::UseTrait(traits, span));
                continue;
            }
            if self.eat(K::Const) {
                loop {
                    let name = if self.at(K::Identifier) {
                        self.bump().expect("id").sym
                    } else {
                        self.error("expected constant name");
                        break;
                    };
                    self.expect(K::Assign, "`=`");
                    let value = self.parse_expr();
                    members.push(ClassMember::Const { name, value, span });
                    if !self.eat(K::Comma) {
                        break;
                    }
                }
                self.end_stmt();
                continue;
            }
            // modifiers
            let mut mods = Modifiers::default();
            let mut saw_modifier = false;
            loop {
                match self.peek_kind() {
                    Some(K::Public) => {
                        mods.visibility = Visibility::Public;
                        saw_modifier = true;
                        self.bump();
                    }
                    Some(K::Protected) => {
                        mods.visibility = Visibility::Protected;
                        saw_modifier = true;
                        self.bump();
                    }
                    Some(K::Private) => {
                        mods.visibility = Visibility::Private;
                        saw_modifier = true;
                        self.bump();
                    }
                    Some(K::Static) => {
                        mods.is_static = true;
                        saw_modifier = true;
                        self.bump();
                    }
                    Some(K::Abstract) => {
                        mods.is_abstract = true;
                        saw_modifier = true;
                        self.bump();
                    }
                    Some(K::Final) => {
                        mods.is_final = true;
                        saw_modifier = true;
                        self.bump();
                    }
                    Some(K::Var) => {
                        saw_modifier = true;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek_kind() {
                Some(K::Function) => {
                    let f = self.parse_function_decl();
                    members.push(ClassMember::Method(mods, f));
                }
                Some(K::Variable) => {
                    loop {
                        let name = self.bump().expect("var").sym;
                        let default = if self.eat(K::Assign) {
                            Some(self.parse_expr())
                        } else {
                            None
                        };
                        members.push(ClassMember::Property {
                            name,
                            default,
                            modifiers: mods,
                            span,
                        });
                        if !self.eat(K::Comma) {
                            break;
                        }
                        if !self.at(K::Variable) {
                            break;
                        }
                    }
                    self.end_stmt();
                }
                _ => {
                    if !saw_modifier {
                        self.error("unexpected token in class body");
                    } else {
                        self.error("expected property or method after modifiers");
                    }
                    if self.pos == before {
                        self.bump();
                    }
                }
            }
        }
        self.arena.alloc_members(members)
    }

    // ---- expressions (Pratt) ----

    fn parse_expr(&mut self) -> ExprId {
        self.parse_expr_bp(0)
    }

    fn parse_expr_bp(&mut self, min_bp: u8) -> ExprId {
        let mut lhs = self.parse_prefix();
        while let Some(k) = self.peek_kind() {
            // assignment (right associative, low precedence)
            if let Some(op) = assign_op(k) {
                const ASSIGN_LBP: u8 = 10;
                if ASSIGN_LBP < min_bp {
                    break;
                }
                let span = self.span();
                self.bump();
                let by_ref = op == AssignOp::Assign && self.eat(K::Amp);
                let value = self.parse_expr_bp(ASSIGN_LBP - 1);
                lhs = self.expr(Expr::Assign {
                    target: lhs,
                    op,
                    value,
                    by_ref,
                    span,
                });
                continue;
            }
            // ternary
            if k == K::Question {
                const TERNARY_LBP: u8 = 12;
                if TERNARY_LBP < min_bp {
                    break;
                }
                let span = self.span();
                self.bump();
                let then = if self.at(K::Colon) {
                    None
                } else {
                    Some(self.parse_expr_bp(0))
                };
                self.expect(K::Colon, "`:` in ternary");
                let otherwise = self.parse_expr_bp(TERNARY_LBP - 1);
                lhs = self.expr(Expr::Ternary {
                    cond: lhs,
                    then,
                    otherwise,
                    span,
                });
                continue;
            }
            // instanceof
            if k == K::Instanceof {
                const INSTANCEOF_LBP: u8 = 38;
                if INSTANCEOF_LBP < min_bp {
                    break;
                }
                let span = self.span();
                self.bump();
                let class = match self.parse_name() {
                    Some(n) => Symbol::intern(&n),
                    // dynamic instanceof target
                    None if self.at(K::Variable) => self.bump().expect("var").sym,
                    None => {
                        self.error("expected class after instanceof");
                        "?".into()
                    }
                };
                lhs = self.expr(Expr::Instanceof(lhs, class, span));
                continue;
            }
            // binary operators
            if let Some((op, lbp, rbp)) = binary_op(k) {
                if lbp < min_bp {
                    break;
                }
                let span = self.span();
                self.bump();
                let rhs = self.parse_expr_bp(rbp);
                lhs = self.expr(Expr::Binary { op, lhs, rhs, span });
                continue;
            }
            break;
        }
        lhs
    }

    fn parse_prefix(&mut self) -> ExprId {
        let span = self.span();
        let Some(k) = self.peek_kind() else {
            self.error("unexpected end of input in expression");
            return self.expr(Expr::Error(span));
        };
        let e = match k {
            K::Variable => {
                let t = self.bump().expect("var");
                Expr::Var(t.sym, Span::at(t.line))
            }
            K::Dollar => {
                self.bump();
                if self.eat(K::OpenBrace) {
                    let inner = self.parse_expr();
                    self.expect(K::CloseBrace, "`}`");
                    Expr::VarVar(inner, span)
                } else {
                    let inner = self.parse_prefix();
                    Expr::VarVar(inner, span)
                }
            }
            K::LNumber => {
                let t = self.bump().expect("num");
                Expr::Lit(Lit::Int(t.text.into()), Span::at(t.line))
            }
            K::DNumber => {
                let t = self.bump().expect("num");
                Expr::Lit(Lit::Float(t.text.into()), Span::at(t.line))
            }
            K::ConstantEncapsedString => {
                let t = self.bump().expect("str");
                Expr::Lit(Lit::Str(strip_quotes(&t.text).into()), Span::at(t.line))
            }
            K::DoubleQuote => {
                self.bump();
                let parts = self.parse_interp_parts(K::DoubleQuote);
                Expr::Interp(parts, span)
            }
            K::StartHeredoc => {
                self.bump();
                let parts = self.parse_interp_parts(K::EndHeredoc);
                Expr::Interp(parts, span)
            }
            K::Backtick => {
                self.bump();
                let parts = self.parse_interp_parts(K::Backtick);
                Expr::ShellExec(parts, span)
            }
            K::Identifier => {
                let e = self.parse_identifier_expr();
                return self.parse_postfix(e);
            }
            K::Static if self.peek_kind_at(1) == Some(K::DoubleColon) => {
                let e = self.parse_identifier_expr();
                return self.parse_postfix(e);
            }
            K::Array => {
                self.bump();
                self.expect(K::OpenParen, "`(` after array");
                let items = self.parse_array_items(K::CloseParen);
                self.expect(K::CloseParen, "`)`");
                Expr::ArrayLit(items, span)
            }
            K::OpenBracket => {
                self.bump();
                let items = self.parse_array_items(K::CloseBracket);
                self.expect(K::CloseBracket, "`]`");
                Expr::ArrayLit(items, span)
            }
            K::List => {
                self.bump();
                self.expect(K::OpenParen, "`(`");
                let mut items = Vec::new();
                loop {
                    if self.at(K::CloseParen) {
                        break;
                    }
                    if self.at(K::Comma) {
                        items.push(None);
                    } else {
                        items.push(Some(self.parse_expr()));
                    }
                    if !self.eat(K::Comma) {
                        break;
                    }
                }
                self.expect(K::CloseParen, "`)`");
                let items = self.arena.alloc_opt_exprs(items);
                Expr::ListIntrinsic(items, span)
            }
            K::Isset => {
                self.bump();
                self.expect(K::OpenParen, "`(`");
                let exprs = self.parse_expr_list(K::CloseParen);
                self.expect(K::CloseParen, "`)`");
                Expr::Isset(exprs, span)
            }
            K::Empty => {
                self.bump();
                self.expect(K::OpenParen, "`(`");
                let e = self.parse_expr();
                self.expect(K::CloseParen, "`)`");
                Expr::Empty(e, span)
            }
            K::Exit => {
                self.bump();
                let arg = if self.eat(K::OpenParen) {
                    let a = if self.at(K::CloseParen) {
                        None
                    } else {
                        Some(self.parse_expr())
                    };
                    self.expect(K::CloseParen, "`)`");
                    a
                } else {
                    None
                };
                Expr::Exit(arg, span)
            }
            K::Include | K::IncludeOnce | K::Require | K::RequireOnce => {
                let kind = match k {
                    K::Include => IncludeKind::Include,
                    K::IncludeOnce => IncludeKind::IncludeOnce,
                    K::Require => IncludeKind::Require,
                    _ => IncludeKind::RequireOnce,
                };
                self.bump();
                let e = self.parse_expr_bp(9);
                Expr::Include(kind, e, span)
            }
            K::Print => {
                self.bump();
                let e = self.parse_expr_bp(9);
                Expr::Print(e, span)
            }
            K::New => {
                self.bump();
                let class = if self.at(K::Variable) {
                    let t = self.bump().expect("var");
                    let v = self.expr(Expr::Var(t.sym, Span::at(t.line)));
                    Member::Dynamic(v)
                } else {
                    match self.parse_name() {
                        Some(n) => Member::Name(n.into()),
                        None => {
                            self.error("expected class name after new");
                            Member::Name("?".into())
                        }
                    }
                };
                let args = if self.eat(K::OpenParen) {
                    let a = self.parse_args();
                    self.expect(K::CloseParen, "`)`");
                    a
                } else {
                    ArgRange::EMPTY
                };
                Expr::New { class, args, span }
            }
            K::Clone => {
                self.bump();
                let e = self.parse_expr_bp(37);
                Expr::Clone(e, span)
            }
            K::Function => {
                self.bump();
                let _by_ref = self.eat(K::Amp);
                let params = self.parse_params();
                let mut uses = Vec::new();
                if self.eat(K::Use) {
                    self.expect(K::OpenParen, "`(`");
                    loop {
                        let by_ref = self.eat(K::Amp);
                        if self.at(K::Variable) {
                            uses.push((self.bump().expect("var").sym, by_ref));
                        } else {
                            break;
                        }
                        if !self.eat(K::Comma) {
                            break;
                        }
                    }
                    self.expect(K::CloseParen, "`)`");
                }
                self.expect(K::OpenBrace, "`{`");
                let body = self.parse_stmts_until(&[K::CloseBrace]);
                self.expect(K::CloseBrace, "`}`");
                let uses = self.arena.alloc_uses(uses);
                Expr::Closure {
                    params,
                    uses,
                    body,
                    span,
                }
            }
            K::OpenParen => {
                self.bump();
                let e = self.parse_expr();
                self.expect(K::CloseParen, "`)`");
                return self.parse_postfix(e);
            }
            K::Bang => {
                self.bump();
                let e = self.parse_expr_bp(33);
                Expr::Unary {
                    op: UnOp::Not,
                    expr: e,
                    span,
                }
            }
            K::Minus => {
                self.bump();
                let e = self.parse_expr_bp(37);
                Expr::Unary {
                    op: UnOp::Neg,
                    expr: e,
                    span,
                }
            }
            K::Plus => {
                self.bump();
                let e = self.parse_expr_bp(37);
                Expr::Unary {
                    op: UnOp::Plus,
                    expr: e,
                    span,
                }
            }
            K::Tilde => {
                self.bump();
                let e = self.parse_expr_bp(37);
                Expr::Unary {
                    op: UnOp::BitNot,
                    expr: e,
                    span,
                }
            }
            K::At => {
                self.bump();
                let e = self.parse_expr_bp(37);
                Expr::ErrorSuppress(e, span)
            }
            K::Amp => {
                self.bump();
                let e = self.parse_expr_bp(37);
                Expr::Ref(e, span)
            }
            K::Inc | K::Dec => {
                let increment = k == K::Inc;
                self.bump();
                let e = self.parse_expr_bp(41);
                Expr::IncDec {
                    prefix: true,
                    increment,
                    expr: e,
                    span,
                }
            }
            _ if k.is_cast() => {
                let t = self.bump().expect("cast");
                let kind = match t.kind {
                    K::IntCast => CastKind::Int,
                    K::DoubleCast => CastKind::Float,
                    K::StringCast => CastKind::String,
                    K::ArrayCast => CastKind::Array,
                    K::ObjectCast => CastKind::Object,
                    K::BoolCast => CastKind::Bool,
                    _ => CastKind::Unset,
                };
                let e = self.parse_expr_bp(37);
                Expr::Cast(kind, e, span)
            }
            K::LineC | K::FileC | K::ClassC | K::FuncC | K::MethodC | K::NsC => {
                let t = self.bump().expect("magic");
                Expr::ConstFetch(t.symbol(), span)
            }
            K::Backslash => {
                // leading-backslash global name
                match self.parse_name() {
                    Some(_n) => {
                        let e = self.parse_identifier_continuation(span);
                        return self.parse_postfix(e);
                    }
                    None => {
                        self.bump();
                        Expr::Error(span)
                    }
                }
            }
            _ => {
                self.error(format!("unexpected token {} in expression", k.php_name()));
                // Leave statement/group terminators for the caller so
                // recovery can resynchronize on them.
                if !matches!(
                    k,
                    K::Semicolon
                        | K::CloseParen
                        | K::CloseBrace
                        | K::CloseBracket
                        | K::Comma
                        | K::CloseTag
                ) {
                    self.bump();
                }
                return self.expr(Expr::Error(span));
            }
        };
        let e = self.expr(e);
        self.parse_postfix(e)
    }

    /// Parses identifier-led expressions: calls, static access, constants.
    fn parse_identifier_expr(&mut self) -> ExprId {
        let span = self.span();
        // Fast path: a plain identifier reuses the symbol the lexer already
        // interned; only namespaced / keyword-led names re-intern.
        let name = match self.peek_kind() {
            Some(K::Identifier) if !matches!(self.peek_kind_at(1), Some(K::Backslash)) => {
                self.bump().expect("id").sym
            }
            _ => match self.parse_name() {
                Some(n) => Symbol::intern(&n),
                None => "?".into(),
            },
        };
        // Boolean / null literals
        if name.as_str().eq_ignore_ascii_case("true") {
            return self.expr(Expr::Lit(Lit::Bool(true), span));
        }
        if name.as_str().eq_ignore_ascii_case("false") {
            return self.expr(Expr::Lit(Lit::Bool(false), span));
        }
        if name.as_str().eq_ignore_ascii_case("null") {
            return self.expr(Expr::Lit(Lit::Null, span));
        }
        self.parse_identifier_continuation_named(name, span)
    }

    fn parse_identifier_continuation(&mut self, span: Span) -> ExprId {
        // used after consuming a namespaced name we discarded; treat as
        // ConstFetch of unknown.
        self.parse_identifier_continuation_named("?".into(), span)
    }

    fn parse_identifier_continuation_named(&mut self, name: Symbol, span: Span) -> ExprId {
        let e = if self.at(K::DoubleColon) {
            self.bump();
            match self.peek_kind() {
                Some(K::Variable) => {
                    let t = self.bump().expect("var");
                    Expr::StaticProp(name, t.sym, Span::at(t.line))
                }
                Some(K::Identifier) | Some(K::Class) => {
                    let m = self.bump().expect("id");
                    if self.at(K::OpenParen) {
                        self.bump();
                        let args = self.parse_args();
                        self.expect(K::CloseParen, "`)`");
                        Expr::Call {
                            callee: Callee::StaticMethod {
                                class: name,
                                name: Member::Name(m.symbol()),
                            },
                            args,
                            span,
                        }
                    } else {
                        Expr::ClassConst(name, m.symbol(), span)
                    }
                }
                Some(K::Dollar) | Some(K::OpenBrace) => {
                    // Cls::$$x / Cls::{expr} — dynamic; parse and wrap.
                    let inner = self.parse_prefix();
                    Expr::Call {
                        callee: Callee::StaticMethod {
                            class: name,
                            name: Member::Dynamic(inner),
                        },
                        args: ArgRange::EMPTY,
                        span,
                    }
                }
                _ => {
                    self.error("expected member after `::`");
                    Expr::Error(span)
                }
            }
        } else if self.at(K::OpenParen) {
            self.bump();
            let args = self.parse_args();
            self.expect(K::CloseParen, "`)`");
            Expr::Call {
                callee: Callee::Function(name),
                args,
                span,
            }
        } else {
            Expr::ConstFetch(name, span)
        };
        self.expr(e)
    }

    fn parse_args(&mut self) -> ArgRange {
        let mut args = Vec::new();
        if self.at(K::CloseParen) {
            return ArgRange::EMPTY;
        }
        loop {
            let by_ref = self.eat(K::Amp);
            let value = self.parse_expr();
            args.push(Arg { value, by_ref });
            if !self.eat(K::Comma) {
                break;
            }
        }
        self.arena.alloc_args(args)
    }

    fn parse_array_items(&mut self, stop: K) -> ItemRange {
        let mut items = Vec::new();
        while !self.at(stop) && !self.is_eof() {
            let first = self.parse_expr();
            if self.eat(K::DoubleArrow) {
                let by_ref = self.eat(K::Amp);
                let mut v = self.parse_expr();
                if by_ref {
                    let s = self.arena.expr(v).span();
                    v = self.expr(Expr::Ref(v, s));
                }
                items.push((Some(first), v));
            } else {
                items.push((None, first));
            }
            if !self.eat(K::Comma) {
                break;
            }
        }
        self.arena.alloc_items(items)
    }

    fn parse_postfix(&mut self, mut e: ExprId) -> ExprId {
        loop {
            match self.peek_kind() {
                Some(K::OpenBracket) => {
                    let span = self.span();
                    self.bump();
                    if self.eat(K::CloseBracket) {
                        e = self.expr(Expr::Index(e, None, span));
                    } else {
                        let idx = self.parse_expr();
                        self.expect(K::CloseBracket, "`]`");
                        e = self.expr(Expr::Index(e, Some(idx), span));
                    }
                }
                Some(K::ObjectOperator) => {
                    let span = self.span();
                    self.bump();
                    let member = match self.peek_kind() {
                        Some(K::Identifier) => Member::Name(self.bump().expect("id").sym),
                        // Keywords are valid member names in PHP (`$q->list`).
                        Some(kk)
                            if php_lexer::keyword_kind(
                                self.peek().map(|t| t.text.as_str()).unwrap_or(""),
                            ) == Some(kk) =>
                        {
                            Member::Name(self.bump().expect("kw").symbol())
                        }
                        Some(K::Variable) => {
                            let t = self.bump().expect("var");
                            let v = self.expr(Expr::Var(t.sym, Span::at(t.line)));
                            Member::Dynamic(v)
                        }
                        Some(K::OpenBrace) => {
                            self.bump();
                            let inner = self.parse_expr();
                            self.expect(K::CloseBrace, "`}`");
                            Member::Dynamic(inner)
                        }
                        _ => {
                            self.error("expected member name after `->`");
                            Member::Name("?".into())
                        }
                    };
                    if self.at(K::OpenParen) {
                        self.bump();
                        let args = self.parse_args();
                        self.expect(K::CloseParen, "`)`");
                        e = self.expr(Expr::Call {
                            callee: Callee::Method {
                                base: e,
                                name: member,
                            },
                            args,
                            span,
                        });
                    } else {
                        e = self.expr(Expr::Prop(e, member, span));
                    }
                }
                Some(K::OpenParen) => {
                    // Dynamic call on an arbitrary expression: `$f()`,
                    // `$obj->cb()` handled above; here `$arr['k']()` etc.
                    match self.arena.expr(e) {
                        Expr::Var(..)
                        | Expr::Index(..)
                        | Expr::Prop(..)
                        | Expr::StaticProp(..)
                        | Expr::Closure { .. } => {
                            let span = self.span();
                            self.bump();
                            let args = self.parse_args();
                            self.expect(K::CloseParen, "`)`");
                            e = self.expr(Expr::Call {
                                callee: Callee::Dynamic(e),
                                args,
                                span,
                            });
                        }
                        _ => break,
                    }
                }
                Some(K::Inc) | Some(K::Dec) => {
                    // Postfix inc/dec only applies to lvalue-ish expressions.
                    match self.arena.expr(e) {
                        Expr::Var(..) | Expr::Index(..) | Expr::Prop(..) | Expr::StaticProp(..) => {
                            let span = self.span();
                            let increment = self.peek_kind() == Some(K::Inc);
                            self.bump();
                            e = self.expr(Expr::IncDec {
                                prefix: false,
                                increment,
                                expr: e,
                                span,
                            });
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        e
    }

    /// Parses interpolation parts until the given end token kind.
    fn parse_interp_parts(&mut self, end: K) -> InterpRange {
        let mut parts = Vec::new();
        loop {
            match self.peek_kind() {
                None => break,
                Some(k) if k == end => {
                    self.bump();
                    break;
                }
                Some(K::EncapsedAndWhitespace) => {
                    let t = self.bump().expect("encapsed");
                    parts.push(InterpPart::Lit(t.text.into()));
                }
                Some(K::Variable) => {
                    let t = self.bump().expect("var");
                    let mut e = self.expr(Expr::Var(t.sym, Span::at(t.line)));
                    // simple-syntax suffix emitted by the lexer
                    if self.at(K::ObjectOperator) {
                        let span = self.span();
                        self.bump();
                        if self.at(K::Identifier) {
                            let m = self.bump().expect("id");
                            e = self.expr(Expr::Prop(e, Member::Name(m.sym), span));
                        }
                    } else if self.at(K::OpenBracket) {
                        let span = self.span();
                        self.bump();
                        let idx = match self.peek_kind() {
                            Some(K::Variable) => {
                                let it = self.bump().expect("var");
                                Some(self.expr(Expr::Var(it.sym, Span::at(it.line))))
                            }
                            Some(K::LNumber) => {
                                let it = self.bump().expect("num");
                                Some(self.expr(Expr::Lit(Lit::Int(it.text.into()), span)))
                            }
                            Some(K::Identifier) => {
                                let it = self.bump().expect("id");
                                // The lexer may have captured quotes in a
                                // sloppy `$a['k']` simple-syntax index.
                                let lit = Expr::Lit(Lit::Str(strip_quotes(&it.text).into()), span);
                                Some(self.expr(lit))
                            }
                            _ => None,
                        };
                        self.eat(K::CloseBracket);
                        e = self.expr(Expr::Index(e, idx, span));
                    }
                    parts.push(InterpPart::Expr(e));
                }
                Some(K::CurlyOpen) => {
                    self.bump();
                    let e = self.parse_expr();
                    self.eat(K::CloseBrace);
                    parts.push(InterpPart::Expr(e));
                }
                Some(K::DollarOpenCurlyBraces) => {
                    self.bump();
                    let span = self.span();
                    let e = if self.at(K::Identifier) {
                        let t = self.bump().expect("id");
                        self.expr(Expr::Var(format!("${}", t.text).into(), Span::at(t.line)))
                    } else {
                        self.parse_expr()
                    };
                    self.eat(K::CloseBrace);
                    let vv = self.expr(Expr::VarVar(e, span));
                    parts.push(InterpPart::Expr(vv));
                }
                Some(_) => {
                    // Unexpected token inside interpolation — take it as text.
                    let t = self.bump().expect("tok");
                    parts.push(InterpPart::Lit(t.text.into()));
                }
            }
        }
        self.arena.alloc_interp(parts)
    }
}

/// Maps a token to an assignment operator.
fn assign_op(k: K) -> Option<AssignOp> {
    Some(match k {
        K::Assign => AssignOp::Assign,
        K::PlusEqual => AssignOp::AddAssign,
        K::MinusEqual => AssignOp::SubAssign,
        K::MulEqual => AssignOp::MulAssign,
        K::DivEqual => AssignOp::DivAssign,
        K::ModEqual => AssignOp::ModAssign,
        K::ConcatEqual => AssignOp::ConcatAssign,
        K::AndEqual => AssignOp::BitAndAssign,
        K::OrEqual => AssignOp::BitOrAssign,
        K::XorEqual => AssignOp::BitXorAssign,
        K::SlEqual => AssignOp::ShlAssign,
        K::SrEqual => AssignOp::ShrAssign,
        _ => return None,
    })
}

/// Maps a token to a binary operator with (left, right) binding powers,
/// following PHP's precedence table.
fn binary_op(k: K) -> Option<(BinOp, u8, u8)> {
    Some(match k {
        K::LogicalOr => (BinOp::Or, 1, 2),
        K::LogicalXor => (BinOp::Xor, 3, 4),
        K::LogicalAnd => (BinOp::And, 5, 6),
        K::BooleanOr => (BinOp::Or, 13, 14),
        K::BooleanAnd => (BinOp::And, 15, 16),
        K::Pipe => (BinOp::BitOr, 17, 18),
        K::Caret => (BinOp::BitXor, 19, 20),
        K::Amp => (BinOp::BitAnd, 21, 22),
        K::Equal => (BinOp::Eq, 23, 24),
        K::NotEqual => (BinOp::NotEq, 23, 24),
        K::Identical => (BinOp::Identical, 23, 24),
        K::NotIdentical => (BinOp::NotIdentical, 23, 24),
        K::Lt => (BinOp::Lt, 25, 26),
        K::Gt => (BinOp::Gt, 25, 26),
        K::SmallerOrEqual => (BinOp::Le, 25, 26),
        K::GreaterOrEqual => (BinOp::Ge, 25, 26),
        K::Sl => (BinOp::Shl, 27, 28),
        K::Sr => (BinOp::Shr, 27, 28),
        K::Plus => (BinOp::Add, 29, 30),
        K::Minus => (BinOp::Sub, 29, 30),
        K::Dot => (BinOp::Concat, 29, 30),
        K::Star => (BinOp::Mul, 31, 32),
        K::Slash => (BinOp::Div, 31, 32),
        K::Percent => (BinOp::Mod, 31, 32),
        K::Pow => (BinOp::Pow, 40, 39),
        _ => return None,
    })
}

/// Strips the outer quotes from a `T_CONSTANT_ENCAPSED_STRING` text and
/// resolves escape sequences to the string's runtime value.
fn strip_quotes(s: &str) -> String {
    let bytes = s.as_bytes();
    let (quote, inner) = if bytes.len() >= 2
        && (bytes[0] == b'\'' || bytes[0] == b'"')
        && bytes[bytes.len() - 1] == bytes[0]
    {
        (bytes[0], &s[1..s.len() - 1])
    } else if !bytes.is_empty() && (bytes[0] == b'\'' || bytes[0] == b'"') {
        // Unclosed string (error tolerance): drop the opening quote.
        (bytes[0], &s[1..])
    } else {
        return s.to_string();
    };
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            None => out.push('\\'),
            Some(e) => {
                if quote == b'\'' {
                    // Single-quoted: only \' and \\ are escapes.
                    match e {
                        '\'' | '\\' => out.push(e),
                        other => {
                            out.push('\\');
                            out.push(other);
                        }
                    }
                } else {
                    match e {
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'v' => out.push('\u{0B}'),
                        'f' => out.push('\u{0C}'),
                        '0' => out.push('\0'),
                        '"' | '\\' | '$' => out.push(e),
                        other => {
                            out.push('\\');
                            out.push(other);
                        }
                    }
                }
            }
        }
    }
    out
}
