//! Pretty-printer from AST back to PHP source.
//!
//! Used by the corpus round-trip tests (`parse(print(ast))` must be
//! structurally equivalent) and for rendering data-flow traces in reports.
//!
//! Nodes live in an [`Arena`], so every entry point takes the arena the
//! ids resolve against.

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole parsed file as PHP source (including `<?php` header).
pub fn print_file(file: &ParsedFile) -> String {
    let mut p = Printer::new(&file.arena);
    p.out.push_str("<?php\n");
    for &s in file.top_stmts() {
        p.stmt(s);
    }
    p.out
}

/// Renders a single expression as PHP source.
pub fn print_expr(a: &Arena, expr: ExprId) -> String {
    let mut p = Printer::new(a);
    p.expr(expr);
    p.out
}

/// Renders a single statement as PHP source.
pub fn print_stmt(a: &Arena, stmt: StmtId) -> String {
    let mut p = Printer::new(a);
    p.stmt(stmt);
    p.out
}

struct Printer<'a> {
    a: &'a Arena,
    out: String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn new(a: &'a Arena) -> Self {
        Printer {
            a,
            out: String::new(),
            indent: 0,
        }
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn line(&mut self, s: &str) {
        self.pad();
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn stmts(&mut self, body: StmtRange) {
        for &s in self.a.stmt_list(body) {
            self.stmt(s);
        }
    }

    fn block(&mut self, body: StmtRange) {
        self.out.push_str(" {\n");
        self.indent += 1;
        self.stmts(body);
        self.indent -= 1;
        self.pad();
        self.out.push_str("}\n");
    }

    fn stmt(&mut self, stmt: StmtId) {
        match self.a.stmt(stmt) {
            Stmt::Expr(e, _) => {
                self.pad();
                self.expr(*e);
                self.out.push_str(";\n");
            }
            Stmt::Echo(es, _) => {
                self.pad();
                self.out.push_str("echo ");
                for (i, &e) in self.a.expr_list(*es).iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            Stmt::InlineHtml(html, _) => {
                self.pad();
                self.out.push_str("?>");
                self.out.push_str(html.as_str());
                self.out.push_str("<?php\n");
            }
            Stmt::If {
                cond,
                then,
                elseifs,
                otherwise,
                ..
            } => {
                let (cond, then, elseifs, otherwise) = (*cond, *then, *elseifs, *otherwise);
                self.pad();
                self.out.push_str("if (");
                self.expr(cond);
                self.out.push(')');
                self.block_inline(then);
                for &(c, b) in self.a.elseifs(elseifs) {
                    self.pad();
                    self.out.push_str("elseif (");
                    self.expr(c);
                    self.out.push(')');
                    self.block_inline(b);
                }
                if let Some(b) = otherwise {
                    self.pad();
                    self.out.push_str("else");
                    self.block_inline(b);
                }
            }
            Stmt::While { cond, body, .. } => {
                let (cond, body) = (*cond, *body);
                self.pad();
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push(')');
                self.block_inline(body);
            }
            Stmt::DoWhile { body, cond, .. } => {
                let (body, cond) = (*body, *cond);
                self.pad();
                self.out.push_str("do");
                self.out.push_str(" {\n");
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.pad();
                self.out.push_str("} while (");
                self.expr(cond);
                self.out.push_str(");\n");
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let (init, cond, step, body) = (*init, *cond, *step, *body);
                self.pad();
                self.out.push_str("for (");
                self.expr_list(init);
                self.out.push_str("; ");
                self.expr_list(cond);
                self.out.push_str("; ");
                self.expr_list(step);
                self.out.push(')');
                self.block_inline(body);
            }
            Stmt::Foreach {
                subject,
                key,
                value,
                by_ref,
                body,
                ..
            } => {
                let (subject, key, value, by_ref, body) = (*subject, *key, *value, *by_ref, *body);
                self.pad();
                self.out.push_str("foreach (");
                self.expr(subject);
                self.out.push_str(" as ");
                if let Some(k) = key {
                    self.expr(k);
                    self.out.push_str(" => ");
                }
                if by_ref {
                    self.out.push('&');
                }
                self.expr(value);
                self.out.push(')');
                self.block_inline(body);
            }
            Stmt::Switch { subject, cases, .. } => {
                let (subject, cases) = (*subject, *cases);
                self.pad();
                self.out.push_str("switch (");
                self.expr(subject);
                self.out.push_str(") {\n");
                self.indent += 1;
                for &c in self.a.cases(cases) {
                    self.pad();
                    match c.value {
                        Some(v) => {
                            self.out.push_str("case ");
                            self.expr(v);
                            self.out.push_str(":\n");
                        }
                        None => self.out.push_str("default:\n"),
                    }
                    self.indent += 1;
                    self.stmts(c.body);
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("}");
            }
            Stmt::Break(_) => self.line("break;"),
            Stmt::Continue(_) => self.line("continue;"),
            Stmt::Return(e, _) => {
                let e = *e;
                self.pad();
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            Stmt::Global(names, _) => {
                let names = *names;
                self.pad();
                self.out.push_str("global ");
                for (i, n) in self.a.syms(names).iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.out.push_str(n.as_str());
                }
                self.out.push_str(";\n");
            }
            Stmt::StaticVars(vars, _) => {
                let vars = *vars;
                self.pad();
                self.out.push_str("static ");
                for (i, &(n, d)) in self.a.static_vars(vars).iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.out.push_str(n.as_str());
                    if let Some(d) = d {
                        self.out.push_str(" = ");
                        self.expr(d);
                    }
                }
                self.out.push_str(";\n");
            }
            Stmt::Unset(es, _) => {
                let es = *es;
                self.pad();
                self.out.push_str("unset(");
                self.expr_list(es);
                self.out.push_str(");\n");
            }
            Stmt::Throw(e, _) => {
                let e = *e;
                self.pad();
                self.out.push_str("throw ");
                self.expr(e);
                self.out.push_str(";\n");
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                let (body, catches, finally) = (*body, *catches, *finally);
                self.pad();
                self.out.push_str("try");
                self.out.push_str(" {\n");
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.pad();
                self.out.push('}');
                for &c in self.a.catches(catches) {
                    write!(self.out, " catch ({} {})", c.class, c.var).expect("write");
                    self.out.push_str(" {\n");
                    self.indent += 1;
                    self.stmts(c.body);
                    self.indent -= 1;
                    self.pad();
                    self.out.push('}');
                }
                if let Some(f) = finally {
                    self.out.push_str(" finally {\n");
                    self.indent += 1;
                    self.stmts(f);
                    self.indent -= 1;
                    self.pad();
                    self.out.push('}');
                }
                self.out.push('\n');
            }
            Stmt::Block(body, _) => {
                let body = *body;
                self.pad();
                self.out.push('{');
                self.out.push('\n');
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line("}");
            }
            Stmt::Function(f) => {
                let f = *f;
                self.function(&f, None);
            }
            Stmt::Class(c) => {
                let c = *c;
                self.class(&c);
            }
            Stmt::ConstDecl(cs, _) => {
                let cs = *cs;
                self.pad();
                self.out.push_str("const ");
                for (i, &(n, e)) in self.a.consts(cs).iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.out.push_str(n.as_str());
                    self.out.push_str(" = ");
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            Stmt::Nop(_) => {}
            Stmt::Error(_) => self.line("/* parse error */;"),
        }
    }

    fn block_inline(&mut self, body: StmtRange) {
        self.block(body);
    }

    fn function(&mut self, f: &FunctionDecl, mods: Option<&Modifiers>) {
        self.pad();
        if let Some(m) = mods {
            match m.visibility {
                Visibility::Public => self.out.push_str("public "),
                Visibility::Protected => self.out.push_str("protected "),
                Visibility::Private => self.out.push_str("private "),
            }
            if m.is_static {
                self.out.push_str("static ");
            }
            if m.is_abstract {
                self.out.push_str("abstract ");
            }
            if m.is_final {
                self.out.push_str("final ");
            }
        }
        self.out.push_str("function ");
        if f.by_ref {
            self.out.push('&');
        }
        self.out.push_str(f.name.as_str());
        self.out.push('(');
        self.params(f.params);
        self.out.push(')');
        if f.body.is_empty() && mods.map(|m| m.is_abstract).unwrap_or(false) {
            self.out.push_str(";\n");
        } else {
            self.block(f.body);
        }
    }

    fn params(&mut self, params: ParamRange) {
        for (i, &p) in self.a.params(params).iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            if let Some(h) = p.type_hint {
                self.out.push_str(h.as_str());
                self.out.push(' ');
            }
            if p.by_ref {
                self.out.push('&');
            }
            if p.variadic {
                self.out.push_str("...");
            }
            self.out.push_str(p.name.as_str());
            if let Some(d) = p.default {
                self.out.push_str(" = ");
                self.expr(d);
            }
        }
    }

    fn class(&mut self, c: &ClassDecl) {
        self.pad();
        if c.is_abstract {
            self.out.push_str("abstract ");
        }
        if c.is_final {
            self.out.push_str("final ");
        }
        match c.kind {
            ClassKind::Class => self.out.push_str("class "),
            ClassKind::Interface => self.out.push_str("interface "),
            ClassKind::Trait => self.out.push_str("trait "),
        }
        self.out.push_str(c.name.as_str());
        if let Some(p) = c.parent {
            self.out.push_str(" extends ");
            self.out.push_str(p.as_str());
        }
        if !c.interfaces.is_empty() {
            self.out.push_str(" implements ");
            self.sym_list(c.interfaces);
        }
        self.out.push_str(" {\n");
        self.indent += 1;
        for &m in self.a.members(c.members) {
            match m {
                ClassMember::Property {
                    name,
                    default,
                    modifiers,
                    ..
                } => {
                    self.pad();
                    match modifiers.visibility {
                        Visibility::Public => self.out.push_str("public "),
                        Visibility::Protected => self.out.push_str("protected "),
                        Visibility::Private => self.out.push_str("private "),
                    }
                    if modifiers.is_static {
                        self.out.push_str("static ");
                    }
                    self.out.push_str(name.as_str());
                    if let Some(d) = default {
                        self.out.push_str(" = ");
                        self.expr(d);
                    }
                    self.out.push_str(";\n");
                }
                ClassMember::Method(mods, f) => self.function(&f, Some(&mods)),
                ClassMember::Const { name, value, .. } => {
                    self.pad();
                    self.out.push_str("const ");
                    self.out.push_str(name.as_str());
                    self.out.push_str(" = ");
                    self.expr(value);
                    self.out.push_str(";\n");
                }
                ClassMember::UseTrait(names, _) => {
                    self.pad();
                    self.out.push_str("use ");
                    self.sym_list(names);
                    self.out.push_str(";\n");
                }
            }
        }
        self.indent -= 1;
        self.line("}");
    }

    fn sym_list(&mut self, names: SymRange) {
        for (i, n) in self.a.syms(names).iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str(n.as_str());
        }
    }

    fn expr_list(&mut self, es: ExprRange) {
        for (i, &e) in self.a.expr_list(es).iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr(e);
        }
    }

    fn member(&mut self, m: Member) {
        match m {
            Member::Name(n) => self.out.push_str(n.as_str()),
            Member::Dynamic(e) => {
                self.out.push('{');
                self.expr(e);
                self.out.push('}');
            }
        }
    }

    fn args(&mut self, args: ArgRange, print_ref: bool) {
        self.out.push('(');
        for (i, &a) in self.a.args(args).iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            if print_ref && a.by_ref {
                self.out.push('&');
            }
            self.expr(a.value);
        }
        self.out.push(')');
    }

    fn expr(&mut self, id: ExprId) {
        match self.a.expr(id) {
            Expr::Var(n, _) => self.out.push_str(n.as_str()),
            Expr::VarVar(inner, _) => {
                let inner = *inner;
                self.out.push_str("${");
                self.expr(inner);
                self.out.push('}');
            }
            Expr::Lit(l, _) => match l {
                Lit::Int(t) | Lit::Float(t) => self.out.push_str(t.as_str()),
                Lit::Str(s) => {
                    self.out.push('\'');
                    // escape single quotes and backslashes
                    for c in s.as_str().chars() {
                        if c == '\'' || c == '\\' {
                            self.out.push('\\');
                        }
                        self.out.push(c);
                    }
                    self.out.push('\'');
                }
                Lit::Bool(true) => self.out.push_str("true"),
                Lit::Bool(false) => self.out.push_str("false"),
                Lit::Null => self.out.push_str("null"),
            },
            Expr::Interp(parts, _) => {
                let parts = *parts;
                self.out.push('"');
                self.interp_parts(parts);
                self.out.push('"');
            }
            Expr::ShellExec(parts, _) => {
                let parts = *parts;
                self.out.push('`');
                self.interp_parts(parts);
                self.out.push('`');
            }
            Expr::ConstFetch(n, _) => self.out.push_str(n.as_str()),
            Expr::ClassConst(c, n, _) => {
                write!(self.out, "{c}::{n}").expect("write");
            }
            Expr::ArrayLit(items, _) => {
                let items = *items;
                self.out.push_str("array(");
                for (i, &(k, v)) in self.a.items(items).iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    if let Some(k) = k {
                        self.expr(k);
                        self.out.push_str(" => ");
                    }
                    self.expr(v);
                }
                self.out.push(')');
            }
            Expr::Index(b, i, _) => {
                let (b, i) = (*b, *i);
                self.expr(b);
                self.out.push('[');
                if let Some(i) = i {
                    self.expr(i);
                }
                self.out.push(']');
            }
            Expr::Prop(b, m, _) => {
                let (b, m) = (*b, *m);
                self.expr(b);
                self.out.push_str("->");
                self.member(m);
            }
            Expr::StaticProp(c, p, _) => {
                write!(self.out, "{c}::{p}").expect("write");
            }
            Expr::Assign {
                target,
                op,
                value,
                by_ref,
                ..
            } => {
                let (target, op, value, by_ref) = (*target, *op, *value, *by_ref);
                self.expr(target);
                self.out.push(' ');
                self.out.push_str(op.symbol());
                if by_ref {
                    self.out.push('&');
                }
                self.out.push(' ');
                self.expr(value);
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let (op, lhs, rhs) = (*op, *lhs, *rhs);
                self.out.push('(');
                self.expr(lhs);
                self.out.push(' ');
                self.out.push_str(op.symbol());
                self.out.push(' ');
                self.expr(rhs);
                self.out.push(')');
            }
            Expr::Unary { op, expr, .. } => {
                let (op, expr) = (*op, *expr);
                match op {
                    UnOp::Not => self.out.push('!'),
                    UnOp::Neg => self.out.push('-'),
                    UnOp::Plus => self.out.push('+'),
                    UnOp::BitNot => self.out.push('~'),
                }
                self.expr(expr);
            }
            Expr::IncDec {
                prefix,
                increment,
                expr,
                ..
            } => {
                let (prefix, increment, expr) = (*prefix, *increment, *expr);
                let sym = if increment { "++" } else { "--" };
                if prefix {
                    self.out.push_str(sym);
                    self.expr(expr);
                } else {
                    self.expr(expr);
                    self.out.push_str(sym);
                }
            }
            Expr::Call { callee, args, .. } => {
                let (callee, args) = (*callee, *args);
                match callee {
                    Callee::Function(n) => self.out.push_str(n.as_str()),
                    Callee::Dynamic(e) => self.expr(e),
                    Callee::Method { base, name } => {
                        self.expr(base);
                        self.out.push_str("->");
                        self.member(name);
                    }
                    Callee::StaticMethod { class, name } => {
                        self.out.push_str(class.as_str());
                        self.out.push_str("::");
                        self.member(name);
                    }
                }
                self.args(args, true);
            }
            Expr::New { class, args, .. } => {
                let (class, args) = (*class, *args);
                self.out.push_str("new ");
                match class {
                    Member::Name(n) => self.out.push_str(n.as_str()),
                    Member::Dynamic(e) => self.expr(e),
                }
                self.args(args, false);
            }
            Expr::Clone(e, _) => {
                let e = *e;
                self.out.push_str("clone ");
                self.expr(e);
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
                ..
            } => {
                let (cond, then, otherwise) = (*cond, *then, *otherwise);
                self.out.push('(');
                self.expr(cond);
                self.out.push_str(" ? ");
                if let Some(t) = then {
                    self.expr(t);
                }
                self.out.push_str(" : ");
                self.expr(otherwise);
                self.out.push(')');
            }
            Expr::Cast(k, e, _) => {
                let (k, e) = (*k, *e);
                self.out.push_str(k.symbol());
                self.expr(e);
            }
            Expr::Isset(es, _) => {
                let es = *es;
                self.out.push_str("isset(");
                self.expr_list(es);
                self.out.push(')');
            }
            Expr::Empty(e, _) => {
                let e = *e;
                self.out.push_str("empty(");
                self.expr(e);
                self.out.push(')');
            }
            Expr::ErrorSuppress(e, _) => {
                let e = *e;
                self.out.push('@');
                self.expr(e);
            }
            Expr::Print(e, _) => {
                let e = *e;
                self.out.push_str("print ");
                self.expr(e);
            }
            Expr::Exit(e, _) => {
                let e = *e;
                self.out.push_str("exit(");
                if let Some(e) = e {
                    self.expr(e);
                }
                self.out.push(')');
            }
            Expr::Include(k, e, _) => {
                let (k, e) = (*k, *e);
                self.out.push_str(k.keyword());
                self.out.push(' ');
                self.expr(e);
            }
            Expr::Instanceof(e, c, _) => {
                let (e, c) = (*e, *c);
                self.expr(e);
                self.out.push_str(" instanceof ");
                self.out.push_str(c.as_str());
            }
            Expr::ListIntrinsic(items, _) => {
                let items = *items;
                self.out.push_str("list(");
                for (i, &it) in self.a.opt_exprs(items).iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    if let Some(e) = it {
                        self.expr(e);
                    }
                }
                self.out.push(')');
            }
            Expr::Closure {
                params, uses, body, ..
            } => {
                let (params, uses, body) = (*params, *uses, *body);
                self.out.push_str("function (");
                self.params(params);
                self.out.push(')');
                if !uses.is_empty() {
                    self.out.push_str(" use (");
                    for (i, &(n, by_ref)) in self.a.uses(uses).iter().enumerate() {
                        if i > 0 {
                            self.out.push_str(", ");
                        }
                        if by_ref {
                            self.out.push('&');
                        }
                        self.out.push_str(n.as_str());
                    }
                    self.out.push(')');
                }
                self.out.push_str(" {\n");
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.pad();
                self.out.push('}');
            }
            Expr::Ref(e, _) => {
                let e = *e;
                self.out.push('&');
                self.expr(e);
            }
            Expr::Error(_) => self.out.push_str("/* error */null"),
        }
    }

    fn interp_parts(&mut self, parts: InterpRange) {
        let a = self.a;
        for p in a.interp(parts) {
            match p {
                InterpPart::Lit(s) => self.out.push_str(s.as_str()),
                InterpPart::Expr(e) => {
                    self.out.push('{');
                    self.expr(*e);
                    self.out.push('}');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip_structural(src: &str) {
        let f1 = parse(src);
        assert!(f1.is_clean(), "first parse must be clean: {:?}", f1.errors);
        let printed = print_file(&f1);
        let f2 = parse(&printed);
        assert!(
            f2.is_clean(),
            "printed source must reparse cleanly:\n{printed}\nerrors: {:?}",
            f2.errors
        );
    }

    #[test]
    fn roundtrip_simple_statements() {
        roundtrip_structural("<?php $a = 1; echo $a; $b = $a . 'x';");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip_structural(
            "<?php if ($a) { echo 1; } elseif ($b) { echo 2; } else { echo 3; }
             while ($x) { $x--; }
             for ($i = 0; $i < 10; $i++) { echo $i; }
             foreach ($rows as $k => $v) { echo $v; }
             switch ($n) { case 1: echo 'a'; break; default: echo 'b'; }",
        );
    }

    #[test]
    fn roundtrip_oop() {
        roundtrip_structural(
            "<?php
            class Widget extends Base implements I1, I2 {
                const VERSION = '1.0';
                public static $registry = array();
                private $name;
                public function __construct($name) { $this->name = $name; }
                public function render() { echo $this->name; }
            }
            $w = new Widget($_GET['n']);
            $w->render();
            Widget::$registry[] = $w;",
        );
    }

    #[test]
    fn roundtrip_interpolation() {
        roundtrip_structural(r#"<?php $q = "SELECT * FROM {$wpdb->prefix}posts WHERE id = $id";"#);
    }

    #[test]
    fn roundtrip_closures_and_arrays() {
        roundtrip_structural(
            "<?php $f = function ($a) use (&$b) { return $a + $b; };
             $m = array('k' => 1, 2, 'x' => array(3));
             $s = [1, 2, 'three'];",
        );
    }

    #[test]
    fn print_expr_renders_calls() {
        let f = parse("<?php foo($_GET['x'], 2);");
        let Stmt::Expr(e, _) = f.stmt(f.top_stmts()[0]) else {
            panic!("expected expr stmt")
        };
        assert_eq!(print_expr(&f.arena, *e), "foo($_GET['x'], 2)");
    }
}
