//! A depth-first visitor over the AST, used by symbol collection and the
//! baseline analyzers.

use crate::ast::*;

/// Depth-first AST visitor. Override the `visit_*` hooks you care about;
/// call the corresponding `walk_*` function to recurse into children.
pub trait Visitor {
    /// Called for every expression (before children).
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }

    /// Called for every statement (before children).
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }

    /// Called for every named function declaration (including methods).
    fn visit_function(&mut self, func: &FunctionDecl) {
        walk_function(self, func);
    }

    /// Called for every class declaration.
    fn visit_class(&mut self, class: &ClassDecl) {
        walk_class(self, class);
    }
}

/// Visits every statement of a parsed file.
pub fn walk_file<V: Visitor + ?Sized>(v: &mut V, file: &ParsedFile) {
    for s in &file.stmts {
        v.visit_stmt(s);
    }
}

/// Recurses into the children of `stmt`.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    match stmt {
        Stmt::Expr(e) => v.visit_expr(e),
        Stmt::Echo(es, _) => {
            for e in es {
                v.visit_expr(e);
            }
        }
        Stmt::InlineHtml(..)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Nop(_)
        | Stmt::Error(_)
        | Stmt::Global(..) => {}
        Stmt::If {
            cond,
            then,
            elseifs,
            otherwise,
            ..
        } => {
            v.visit_expr(cond);
            for s in then {
                v.visit_stmt(s);
            }
            for (c, b) in elseifs {
                v.visit_expr(c);
                for s in b {
                    v.visit_stmt(s);
                }
            }
            if let Some(b) = otherwise {
                for s in b {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::While { cond, body, .. } => {
            v.visit_expr(cond);
            for s in body {
                v.visit_stmt(s);
            }
        }
        Stmt::DoWhile { body, cond, .. } => {
            for s in body {
                v.visit_stmt(s);
            }
            v.visit_expr(cond);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            for e in init.iter().chain(cond).chain(step) {
                v.visit_expr(e);
            }
            for s in body {
                v.visit_stmt(s);
            }
        }
        Stmt::Foreach {
            subject,
            key,
            value,
            body,
            ..
        } => {
            v.visit_expr(subject);
            if let Some(k) = key {
                v.visit_expr(k);
            }
            v.visit_expr(value);
            for s in body {
                v.visit_stmt(s);
            }
        }
        Stmt::Switch { subject, cases, .. } => {
            v.visit_expr(subject);
            for c in cases {
                if let Some(val) = &c.value {
                    v.visit_expr(val);
                }
                for s in &c.body {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::Return(e, _) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        Stmt::StaticVars(vars, _) => {
            for (_, d) in vars {
                if let Some(d) = d {
                    v.visit_expr(d);
                }
            }
        }
        Stmt::Unset(es, _) => {
            for e in es {
                v.visit_expr(e);
            }
        }
        Stmt::Throw(e, _) => v.visit_expr(e),
        Stmt::Try {
            body,
            catches,
            finally,
            ..
        } => {
            for s in body {
                v.visit_stmt(s);
            }
            for c in catches {
                for s in &c.body {
                    v.visit_stmt(s);
                }
            }
            if let Some(f) = finally {
                for s in f {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::Block(body, _) => {
            for s in body {
                v.visit_stmt(s);
            }
        }
        Stmt::Function(f) => v.visit_function(f),
        Stmt::Class(c) => v.visit_class(c),
        Stmt::ConstDecl(cs, _) => {
            for (_, e) in cs {
                v.visit_expr(e);
            }
        }
    }
}

/// Recurses into the children of `expr`.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match expr {
        Expr::Var(..)
        | Expr::Lit(..)
        | Expr::ConstFetch(..)
        | Expr::ClassConst(..)
        | Expr::StaticProp(..)
        | Expr::Error(_) => {}
        Expr::VarVar(e, _)
        | Expr::Clone(e, _)
        | Expr::Cast(_, e, _)
        | Expr::Empty(e, _)
        | Expr::ErrorSuppress(e, _)
        | Expr::Print(e, _)
        | Expr::Include(_, e, _)
        | Expr::Instanceof(e, _, _)
        | Expr::Ref(e, _) => v.visit_expr(e),
        Expr::Interp(parts, _) | Expr::ShellExec(parts, _) => {
            for p in parts {
                if let InterpPart::Expr(e) = p {
                    v.visit_expr(e);
                }
            }
        }
        Expr::ArrayLit(items, _) => {
            for (k, val) in items {
                if let Some(k) = k {
                    v.visit_expr(k);
                }
                v.visit_expr(val);
            }
        }
        Expr::Index(base, idx, _) => {
            v.visit_expr(base);
            if let Some(i) = idx {
                v.visit_expr(i);
            }
        }
        Expr::Prop(base, member, _) => {
            v.visit_expr(base);
            if let Member::Dynamic(e) = member {
                v.visit_expr(e);
            }
        }
        Expr::Assign { target, value, .. } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
        Expr::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        Expr::Unary { expr, .. } | Expr::IncDec { expr, .. } => v.visit_expr(expr),
        Expr::Call { callee, args, .. } => {
            match callee {
                Callee::Function(_) => {}
                Callee::Dynamic(e) => v.visit_expr(e),
                Callee::Method { base, name } => {
                    v.visit_expr(base);
                    if let Member::Dynamic(e) = name {
                        v.visit_expr(e);
                    }
                }
                Callee::StaticMethod { name, .. } => {
                    if let Member::Dynamic(e) = name {
                        v.visit_expr(e);
                    }
                }
            }
            for a in args {
                v.visit_expr(&a.value);
            }
        }
        Expr::New { class, args, .. } => {
            if let Member::Dynamic(e) = class {
                v.visit_expr(e);
            }
            for a in args {
                v.visit_expr(&a.value);
            }
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
            ..
        } => {
            v.visit_expr(cond);
            if let Some(t) = then {
                v.visit_expr(t);
            }
            v.visit_expr(otherwise);
        }
        Expr::Isset(es, _) => {
            for e in es {
                v.visit_expr(e);
            }
        }
        Expr::Exit(e, _) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        Expr::ListIntrinsic(items, _) => {
            for e in items.iter().flatten() {
                v.visit_expr(e);
            }
        }
        Expr::Closure { params, body, .. } => {
            for p in params {
                if let Some(d) = &p.default {
                    v.visit_expr(d);
                }
            }
            for s in body {
                v.visit_stmt(s);
            }
        }
    }
}

/// Recurses into the children of a function declaration.
pub fn walk_function<V: Visitor + ?Sized>(v: &mut V, func: &FunctionDecl) {
    for p in &func.params {
        if let Some(d) = &p.default {
            v.visit_expr(d);
        }
    }
    for s in &func.body {
        v.visit_stmt(s);
    }
}

/// Recurses into the children of a class declaration.
pub fn walk_class<V: Visitor + ?Sized>(v: &mut V, class: &ClassDecl) {
    for m in &class.members {
        match m {
            ClassMember::Property { default, .. } => {
                if let Some(d) = default {
                    v.visit_expr(d);
                }
            }
            ClassMember::Method(_, f) => v.visit_function(f),
            ClassMember::Const { value, .. } => v.visit_expr(value),
            ClassMember::UseTrait(..) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    struct Counter {
        vars: usize,
        calls: usize,
        functions: usize,
        classes: usize,
    }

    impl Visitor for Counter {
        fn visit_expr(&mut self, expr: &Expr) {
            match expr {
                Expr::Var(..) => self.vars += 1,
                Expr::Call { .. } => self.calls += 1,
                _ => {}
            }
            walk_expr(self, expr);
        }
        fn visit_function(&mut self, f: &FunctionDecl) {
            self.functions += 1;
            walk_function(self, f);
        }
        fn visit_class(&mut self, c: &ClassDecl) {
            self.classes += 1;
            walk_class(self, c);
        }
    }

    #[test]
    fn visitor_reaches_nested_nodes() {
        let file = parse(
            "<?php
            class A { function m($x) { return foo($x); } }
            function top() { if ($a) { echo bar($b); } }
            ",
        );
        let mut c = Counter {
            vars: 0,
            calls: 0,
            functions: 0,
            classes: 0,
        };
        walk_file(&mut c, &file);
        assert_eq!(c.classes, 1);
        assert_eq!(c.functions, 2); // method + top
        assert_eq!(c.calls, 2);
        assert!(c.vars >= 3); // $x, $a, $b (plus $x in call)
    }

    #[test]
    fn visitor_reaches_closure_bodies() {
        let file = parse("<?php $f = function($a) { echo $a; };");
        let mut c = Counter {
            vars: 0,
            calls: 0,
            functions: 0,
            classes: 0,
        };
        walk_file(&mut c, &file);
        assert!(c.vars >= 2);
    }
}
