//! A depth-first visitor over the AST, used by symbol collection and the
//! baseline analyzers.
//!
//! Nodes are arena handles, so every hook takes the [`Arena`] the ids
//! resolve against alongside the node.

use crate::ast::*;

/// Depth-first AST visitor. Override the `visit_*` hooks you care about;
/// call the corresponding `walk_*` function to recurse into children.
pub trait Visitor {
    /// Called for every expression (before children).
    fn visit_expr(&mut self, a: &Arena, expr: ExprId) {
        walk_expr(self, a, expr);
    }

    /// Called for every statement (before children).
    fn visit_stmt(&mut self, a: &Arena, stmt: StmtId) {
        walk_stmt(self, a, stmt);
    }

    /// Called for every named function declaration (including methods).
    fn visit_function(&mut self, a: &Arena, func: &FunctionDecl) {
        walk_function(self, a, func);
    }

    /// Called for every class declaration.
    fn visit_class(&mut self, a: &Arena, class: &ClassDecl) {
        walk_class(self, a, class);
    }
}

/// Visits every statement of a parsed file.
pub fn walk_file<V: Visitor + ?Sized>(v: &mut V, file: &ParsedFile) {
    for &s in file.top_stmts() {
        v.visit_stmt(&file.arena, s);
    }
}

fn visit_stmts<V: Visitor + ?Sized>(v: &mut V, a: &Arena, body: StmtRange) {
    for &s in a.stmt_list(body) {
        v.visit_stmt(a, s);
    }
}

fn visit_exprs<V: Visitor + ?Sized>(v: &mut V, a: &Arena, es: ExprRange) {
    for &e in a.expr_list(es) {
        v.visit_expr(a, e);
    }
}

/// Recurses into the children of `stmt`.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, a: &Arena, stmt: StmtId) {
    match a.stmt(stmt) {
        Stmt::Expr(e, _) => v.visit_expr(a, *e),
        Stmt::Echo(es, _) => visit_exprs(v, a, *es),
        Stmt::InlineHtml(..)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Nop(_)
        | Stmt::Error(_)
        | Stmt::Global(..) => {}
        Stmt::If {
            cond,
            then,
            elseifs,
            otherwise,
            ..
        } => {
            v.visit_expr(a, *cond);
            visit_stmts(v, a, *then);
            for &(c, b) in a.elseifs(*elseifs) {
                v.visit_expr(a, c);
                visit_stmts(v, a, b);
            }
            if let Some(b) = otherwise {
                visit_stmts(v, a, *b);
            }
        }
        Stmt::While { cond, body, .. } => {
            v.visit_expr(a, *cond);
            visit_stmts(v, a, *body);
        }
        Stmt::DoWhile { body, cond, .. } => {
            visit_stmts(v, a, *body);
            v.visit_expr(a, *cond);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            visit_exprs(v, a, *init);
            visit_exprs(v, a, *cond);
            visit_exprs(v, a, *step);
            visit_stmts(v, a, *body);
        }
        Stmt::Foreach {
            subject,
            key,
            value,
            body,
            ..
        } => {
            v.visit_expr(a, *subject);
            if let Some(k) = key {
                v.visit_expr(a, *k);
            }
            v.visit_expr(a, *value);
            visit_stmts(v, a, *body);
        }
        Stmt::Switch { subject, cases, .. } => {
            v.visit_expr(a, *subject);
            for &c in a.cases(*cases) {
                if let Some(val) = c.value {
                    v.visit_expr(a, val);
                }
                visit_stmts(v, a, c.body);
            }
        }
        Stmt::Return(e, _) => {
            if let Some(e) = e {
                v.visit_expr(a, *e);
            }
        }
        Stmt::StaticVars(vars, _) => {
            for &(_, d) in a.static_vars(*vars) {
                if let Some(d) = d {
                    v.visit_expr(a, d);
                }
            }
        }
        Stmt::Unset(es, _) => visit_exprs(v, a, *es),
        Stmt::Throw(e, _) => v.visit_expr(a, *e),
        Stmt::Try {
            body,
            catches,
            finally,
            ..
        } => {
            visit_stmts(v, a, *body);
            for &c in a.catches(*catches) {
                visit_stmts(v, a, c.body);
            }
            if let Some(f) = finally {
                visit_stmts(v, a, *f);
            }
        }
        Stmt::Block(body, _) => visit_stmts(v, a, *body),
        Stmt::Function(f) => v.visit_function(a, f),
        Stmt::Class(c) => v.visit_class(a, c),
        Stmt::ConstDecl(cs, _) => {
            for &(_, e) in a.consts(*cs) {
                v.visit_expr(a, e);
            }
        }
    }
}

/// Recurses into the children of `expr`.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, a: &Arena, expr: ExprId) {
    match a.expr(expr) {
        Expr::Var(..)
        | Expr::Lit(..)
        | Expr::ConstFetch(..)
        | Expr::ClassConst(..)
        | Expr::StaticProp(..)
        | Expr::Error(_) => {}
        Expr::VarVar(e, _)
        | Expr::Clone(e, _)
        | Expr::Cast(_, e, _)
        | Expr::Empty(e, _)
        | Expr::ErrorSuppress(e, _)
        | Expr::Print(e, _)
        | Expr::Include(_, e, _)
        | Expr::Instanceof(e, _, _)
        | Expr::Ref(e, _) => v.visit_expr(a, *e),
        Expr::Interp(parts, _) | Expr::ShellExec(parts, _) => {
            for p in a.interp(*parts) {
                if let InterpPart::Expr(e) = p {
                    v.visit_expr(a, *e);
                }
            }
        }
        Expr::ArrayLit(items, _) => {
            for &(k, val) in a.items(*items) {
                if let Some(k) = k {
                    v.visit_expr(a, k);
                }
                v.visit_expr(a, val);
            }
        }
        Expr::Index(base, idx, _) => {
            v.visit_expr(a, *base);
            if let Some(i) = idx {
                v.visit_expr(a, *i);
            }
        }
        Expr::Prop(base, member, _) => {
            v.visit_expr(a, *base);
            if let Member::Dynamic(e) = member {
                v.visit_expr(a, *e);
            }
        }
        Expr::Assign { target, value, .. } => {
            v.visit_expr(a, *target);
            v.visit_expr(a, *value);
        }
        Expr::Binary { lhs, rhs, .. } => {
            v.visit_expr(a, *lhs);
            v.visit_expr(a, *rhs);
        }
        Expr::Unary { expr, .. } | Expr::IncDec { expr, .. } => v.visit_expr(a, *expr),
        Expr::Call { callee, args, .. } => {
            match callee {
                Callee::Function(_) => {}
                Callee::Dynamic(e) => v.visit_expr(a, *e),
                Callee::Method { base, name } => {
                    v.visit_expr(a, *base);
                    if let Member::Dynamic(e) = name {
                        v.visit_expr(a, *e);
                    }
                }
                Callee::StaticMethod { name, .. } => {
                    if let Member::Dynamic(e) = name {
                        v.visit_expr(a, *e);
                    }
                }
            }
            for &arg in a.args(*args) {
                v.visit_expr(a, arg.value);
            }
        }
        Expr::New { class, args, .. } => {
            if let Member::Dynamic(e) = class {
                v.visit_expr(a, *e);
            }
            for &arg in a.args(*args) {
                v.visit_expr(a, arg.value);
            }
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
            ..
        } => {
            v.visit_expr(a, *cond);
            if let Some(t) = then {
                v.visit_expr(a, *t);
            }
            v.visit_expr(a, *otherwise);
        }
        Expr::Isset(es, _) => visit_exprs(v, a, *es),
        Expr::Exit(e, _) => {
            if let Some(e) = e {
                v.visit_expr(a, *e);
            }
        }
        Expr::ListIntrinsic(items, _) => {
            for e in a.opt_exprs(*items).iter().flatten() {
                v.visit_expr(a, *e);
            }
        }
        Expr::Closure { params, body, .. } => {
            for p in a.params(*params) {
                if let Some(d) = p.default {
                    v.visit_expr(a, d);
                }
            }
            visit_stmts(v, a, *body);
        }
    }
}

/// Recurses into the children of a function declaration.
pub fn walk_function<V: Visitor + ?Sized>(v: &mut V, a: &Arena, func: &FunctionDecl) {
    for p in a.params(func.params) {
        if let Some(d) = p.default {
            v.visit_expr(a, d);
        }
    }
    visit_stmts(v, a, func.body);
}

/// Recurses into the children of a class declaration.
pub fn walk_class<V: Visitor + ?Sized>(v: &mut V, a: &Arena, class: &ClassDecl) {
    for m in a.members(class.members) {
        match m {
            ClassMember::Property { default, .. } => {
                if let Some(d) = default {
                    v.visit_expr(a, *d);
                }
            }
            ClassMember::Method(_, f) => v.visit_function(a, f),
            ClassMember::Const { value, .. } => v.visit_expr(a, *value),
            ClassMember::UseTrait(..) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    struct Counter {
        vars: usize,
        calls: usize,
        functions: usize,
        classes: usize,
    }

    impl Visitor for Counter {
        fn visit_expr(&mut self, a: &Arena, expr: ExprId) {
            match a.expr(expr) {
                Expr::Var(..) => self.vars += 1,
                Expr::Call { .. } => self.calls += 1,
                _ => {}
            }
            walk_expr(self, a, expr);
        }
        fn visit_function(&mut self, a: &Arena, f: &FunctionDecl) {
            self.functions += 1;
            walk_function(self, a, f);
        }
        fn visit_class(&mut self, a: &Arena, c: &ClassDecl) {
            self.classes += 1;
            walk_class(self, a, c);
        }
    }

    #[test]
    fn visitor_reaches_nested_nodes() {
        let file = parse(
            "<?php
            class A { function m($x) { return foo($x); } }
            function top() { if ($a) { echo bar($b); } }
            ",
        );
        let mut c = Counter {
            vars: 0,
            calls: 0,
            functions: 0,
            classes: 0,
        };
        walk_file(&mut c, &file);
        assert_eq!(c.classes, 1);
        assert_eq!(c.functions, 2); // method + top
        assert_eq!(c.calls, 2);
        assert!(c.vars >= 3); // $x, $a, $b (plus $x in call)
    }

    #[test]
    fn visitor_reaches_closure_bodies() {
        let file = parse("<?php $f = function($a) { echo $a; };");
        let mut c = Counter {
            vars: 0,
            calls: 0,
            functions: 0,
            classes: 0,
        };
        walk_file(&mut c, &file);
        assert!(c.vars >= 2);
    }
}
