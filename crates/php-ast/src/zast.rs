//! ZAST v2: the alignment-padded, relocation-free on-disk AST layout used
//! by the warm cache path.
//!
//! The PAST v1 codec ([`crate::codec`]) streams nodes through a byte
//! `Reader`, re-materializing every record field by field. ZAST instead
//! stores the flat [`Arena`] pools as fixed-width little-endian `u32`
//! records behind a validated header and a relocation-free string table
//! (an `(offset, len)` index into one UTF-8 blob), so a warm load can sit
//! directly on the cached `Arc<[u8]>` payload:
//!
//! * [`ParsedFileRef::new`] runs **one** bounds-checking pass over the
//!   payload — header counts against total length, every string against
//!   the blob, every node handle / range / tag against the pool counts —
//!   and interns each table string exactly once. Garbage input yields a
//!   [`CodecError`], never a panic or an out-of-range pool handle.
//! * After validation, the accessors ([`ParsedFileRef::expr`],
//!   [`ParsedFileRef::stmt`]) read records straight out of the borrowed
//!   buffer, and [`ParsedFileRef::thaw`] bulk-relocates the pools into a
//!   [`ParsedFile`] without re-validating or re-decoding strings.
//!
//! Layout (all multi-byte values little-endian `u32` words):
//!
//! ```text
//! magic "ZAST" | version=2 | 24 header words          (104 B, 8-aligned)
//! string index: count x (offset, len) into the blob   (8 B per entry)
//! string blob: UTF-8 bytes                            (pad to 8)
//! 17 pool sections, fixed-width records, each 8-aligned
//! error records: (message string, line)               (8 B per entry)
//! ```
//!
//! The header words are the 17 pool counts in [`Arena`] field order, then
//! string count, blob byte length, `top` range start/len, error count,
//! slice-range count, and one reserved word. The total payload length is
//! fully determined by the header, and validation checks it exactly —
//! a truncated or padded file fails before any record is read.
//!
//! Node records pack their enum tag and small operands into word 0
//! (`tag | aux1<<8 | aux2<<16 | aux3<<24`) with payload handles in the
//! following words and the source line in the last word. `u32::MAX` is
//! the `None` sentinel for optional handles.

use crate::ast::*;
use crate::codec::CodecError;
use phpsafe_intern::{FnvHashMap, Symbol};
use std::sync::Arc;

/// Magic prefix of a ZAST payload.
pub const MAGIC: &[u8; 4] = b"ZAST";
/// Layout version (PAST v1 is the streaming codec in [`crate::codec`]).
pub const VERSION: u32 = 2;

const HEADER_WORDS: usize = 24;
const HEADER_BYTES: usize = 8 + HEADER_WORDS * 4; // 104, a multiple of 8
const NONE: u32 = u32::MAX;
const N_POOLS: usize = 17;

/// Words per record for each pool, in [`Arena`] field order: exprs, stmts,
/// expr_ids, stmt_ids, args, params, interp_parts, array_items, opt_exprs,
/// elseifs, cases, catches, syms, static_vars, closure_uses, consts,
/// members.
const POOL_WORDS: [usize; N_POOLS] = [8, 10, 1, 1, 2, 4, 2, 2, 1, 3, 3, 4, 1, 2, 2, 2, 8];

const P_EXPRS: usize = 0;
const P_STMTS: usize = 1;
const P_EXPR_IDS: usize = 2;
const P_STMT_IDS: usize = 3;
const P_ARGS: usize = 4;
const P_PARAMS: usize = 5;
const P_INTERP: usize = 6;
const P_ITEMS: usize = 7;
const P_OPT_EXPRS: usize = 8;
const P_ELSEIFS: usize = 9;
const P_CASES: usize = 10;
const P_CATCHES: usize = 11;
const P_SYMS: usize = 12;
const P_STATIC_VARS: usize = 13;
const P_USES: usize = 14;
const P_CONSTS: usize = 15;
const P_MEMBERS: usize = 16;

type Result<T> = std::result::Result<T, CodecError>;

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// Whether `bytes` carries the ZAST magic (cheap dispatch between this
/// layout and PAST v1 entries in a mixed-version cache directory).
pub fn looks_like(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == MAGIC
}

fn meta(tag: u8, a1: u8, a2: u8, a3: u8) -> u32 {
    tag as u32 | (a1 as u32) << 8 | (a2 as u32) << 16 | (a3 as u32) << 24
}

fn opt(e: Option<ExprId>) -> u32 {
    e.map(ExprId::raw).unwrap_or(NONE)
}

// ----------------------------------------------------------------- encoder

/// Deduplicating string table builder: symbols (and error messages) are
/// assigned dense indices in first-use order, so encoding is deterministic
/// for a given [`ParsedFile`] regardless of global interner state.
#[derive(Default)]
struct StrTab {
    syms: Vec<Symbol>,
    index: FnvHashMap<Symbol, u32>,
}

impl StrTab {
    fn get(&mut self, s: Symbol) -> u32 {
        if let Some(&i) = self.index.get(&s) {
            return i;
        }
        let i = self.syms.len() as u32;
        self.syms.push(s);
        self.index.insert(s, i);
        i
    }
}

/// Per-pool word buffers accumulated before assembly.
#[derive(Default)]
struct Enc {
    t: StrTab,
    pools: [Vec<u32>; N_POOLS],
    errors: Vec<u32>,
}

impl Enc {
    fn member_parts(&mut self, m: &Member) -> (u8, u32) {
        match m {
            Member::Name(n) => (0, self.t.get(*n)),
            Member::Dynamic(e) => (1, e.raw()),
        }
    }

    fn expr(&mut self, e: &Expr) {
        let mut w = [0u32; 8];
        w[7] = e.span().line;
        match *e {
            Expr::Var(n, _) => {
                w[0] = meta(0, 0, 0, 0);
                w[1] = self.t.get(n);
            }
            Expr::VarVar(e, _) => {
                w[0] = meta(1, 0, 0, 0);
                w[1] = e.raw();
            }
            Expr::Lit(lit, _) => {
                let (kind, payload) = match lit {
                    Lit::Int(s) => (0, self.t.get(s)),
                    Lit::Float(s) => (1, self.t.get(s)),
                    Lit::Str(s) => (2, self.t.get(s)),
                    Lit::Bool(b) => (3, b as u32),
                    Lit::Null => (4, 0),
                };
                w[0] = meta(2, kind, 0, 0);
                w[1] = payload;
            }
            Expr::Interp(r, _) => {
                w[0] = meta(3, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Expr::ConstFetch(n, _) => {
                w[0] = meta(4, 0, 0, 0);
                w[1] = self.t.get(n);
            }
            Expr::ClassConst(c, k, _) => {
                w[0] = meta(5, 0, 0, 0);
                w[1] = self.t.get(c);
                w[2] = self.t.get(k);
            }
            Expr::ArrayLit(r, _) => {
                w[0] = meta(6, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Expr::Index(b, i, _) => {
                w[0] = meta(7, 0, 0, 0);
                w[1] = b.raw();
                w[2] = opt(i);
            }
            Expr::Prop(b, m, _) => {
                let (kind, payload) = self.member_parts(&m);
                w[0] = meta(8, kind, 0, 0);
                w[1] = b.raw();
                w[2] = payload;
            }
            Expr::StaticProp(c, p, _) => {
                w[0] = meta(9, 0, 0, 0);
                w[1] = self.t.get(c);
                w[2] = self.t.get(p);
            }
            Expr::Assign {
                target,
                op,
                value,
                by_ref,
                ..
            } => {
                w[0] = meta(10, op as u8, by_ref as u8, 0);
                w[1] = target.raw();
                w[2] = value.raw();
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                w[0] = meta(11, op as u8, 0, 0);
                w[1] = lhs.raw();
                w[2] = rhs.raw();
            }
            Expr::Unary { op, expr, .. } => {
                w[0] = meta(12, op as u8, 0, 0);
                w[1] = expr.raw();
            }
            Expr::IncDec {
                prefix,
                increment,
                expr,
                ..
            } => {
                w[0] = meta(13, prefix as u8, increment as u8, 0);
                w[1] = expr.raw();
            }
            Expr::Call { callee, args, .. } => {
                let (kind, mkind, w1, w2) = match callee {
                    Callee::Function(n) => (0, 0, self.t.get(n), 0),
                    Callee::Dynamic(e) => (1, 0, e.raw(), 0),
                    Callee::Method { base, name } => {
                        let (mk, mp) = self.member_parts(&name);
                        (2, mk, base.raw(), mp)
                    }
                    Callee::StaticMethod { class, name } => {
                        let (mk, mp) = self.member_parts(&name);
                        (3, mk, self.t.get(class), mp)
                    }
                };
                w[0] = meta(14, kind, mkind, 0);
                w[1] = w1;
                w[2] = w2;
                (w[3], w[4]) = args.raw_parts();
            }
            Expr::New { class, args, .. } => {
                let (mk, mp) = self.member_parts(&class);
                w[0] = meta(15, mk, 0, 0);
                w[1] = mp;
                (w[2], w[3]) = args.raw_parts();
            }
            Expr::Clone(e, _) => {
                w[0] = meta(16, 0, 0, 0);
                w[1] = e.raw();
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
                ..
            } => {
                w[0] = meta(17, 0, 0, 0);
                w[1] = cond.raw();
                w[2] = opt(then);
                w[3] = otherwise.raw();
            }
            Expr::Cast(kind, e, _) => {
                w[0] = meta(18, kind as u8, 0, 0);
                w[1] = e.raw();
            }
            Expr::Isset(r, _) => {
                w[0] = meta(19, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Expr::Empty(e, _) => {
                w[0] = meta(20, 0, 0, 0);
                w[1] = e.raw();
            }
            Expr::ErrorSuppress(e, _) => {
                w[0] = meta(21, 0, 0, 0);
                w[1] = e.raw();
            }
            Expr::Print(e, _) => {
                w[0] = meta(22, 0, 0, 0);
                w[1] = e.raw();
            }
            Expr::Exit(o, _) => {
                w[0] = meta(23, 0, 0, 0);
                w[1] = opt(o);
            }
            Expr::Include(kind, e, _) => {
                w[0] = meta(24, kind as u8, 0, 0);
                w[1] = e.raw();
            }
            Expr::Instanceof(e, n, _) => {
                w[0] = meta(25, 0, 0, 0);
                w[1] = e.raw();
                w[2] = self.t.get(n);
            }
            Expr::ListIntrinsic(r, _) => {
                w[0] = meta(26, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Expr::Closure {
                params, uses, body, ..
            } => {
                w[0] = meta(27, 0, 0, 0);
                (w[1], w[2]) = params.raw_parts();
                (w[3], w[4]) = uses.raw_parts();
                (w[5], w[6]) = body.raw_parts();
            }
            Expr::ShellExec(r, _) => {
                w[0] = meta(28, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Expr::Ref(e, _) => {
                w[0] = meta(29, 0, 0, 0);
                w[1] = e.raw();
            }
            Expr::Error(_) => {
                w[0] = meta(30, 0, 0, 0);
            }
        }
        self.pools[P_EXPRS].extend_from_slice(&w);
    }

    fn stmt(&mut self, s: &Stmt) {
        let mut w = [0u32; 10];
        w[9] = s.span().line;
        match *s {
            Stmt::Expr(e, _) => {
                w[0] = meta(0, 0, 0, 0);
                w[1] = e.raw();
            }
            Stmt::Echo(r, _) => {
                w[0] = meta(1, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Stmt::InlineHtml(h, _) => {
                w[0] = meta(2, 0, 0, 0);
                w[1] = self.t.get(h);
            }
            Stmt::If {
                cond,
                then,
                elseifs,
                otherwise,
                ..
            } => {
                w[0] = meta(3, otherwise.is_some() as u8, 0, 0);
                w[1] = cond.raw();
                (w[2], w[3]) = then.raw_parts();
                (w[4], w[5]) = elseifs.raw_parts();
                (w[6], w[7]) = otherwise.unwrap_or(StmtRange::EMPTY).raw_parts();
            }
            Stmt::While { cond, body, .. } => {
                w[0] = meta(4, 0, 0, 0);
                w[1] = cond.raw();
                (w[2], w[3]) = body.raw_parts();
            }
            Stmt::DoWhile { body, cond, .. } => {
                w[0] = meta(5, 0, 0, 0);
                (w[1], w[2]) = body.raw_parts();
                w[3] = cond.raw();
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                w[0] = meta(6, 0, 0, 0);
                (w[1], w[2]) = init.raw_parts();
                (w[3], w[4]) = cond.raw_parts();
                (w[5], w[6]) = step.raw_parts();
                (w[7], w[8]) = body.raw_parts();
            }
            Stmt::Foreach {
                subject,
                key,
                value,
                by_ref,
                body,
                ..
            } => {
                w[0] = meta(7, by_ref as u8, 0, 0);
                w[1] = subject.raw();
                w[2] = opt(key);
                w[3] = value.raw();
                (w[4], w[5]) = body.raw_parts();
            }
            Stmt::Switch { subject, cases, .. } => {
                w[0] = meta(8, 0, 0, 0);
                w[1] = subject.raw();
                (w[2], w[3]) = cases.raw_parts();
            }
            Stmt::Break(_) => w[0] = meta(9, 0, 0, 0),
            Stmt::Continue(_) => w[0] = meta(10, 0, 0, 0),
            Stmt::Return(o, _) => {
                w[0] = meta(11, 0, 0, 0);
                w[1] = opt(o);
            }
            Stmt::Global(r, _) => {
                w[0] = meta(12, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Stmt::StaticVars(r, _) => {
                w[0] = meta(13, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Stmt::Unset(r, _) => {
                w[0] = meta(14, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Stmt::Throw(e, _) => {
                w[0] = meta(15, 0, 0, 0);
                w[1] = e.raw();
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                w[0] = meta(16, finally.is_some() as u8, 0, 0);
                (w[1], w[2]) = body.raw_parts();
                (w[3], w[4]) = catches.raw_parts();
                (w[5], w[6]) = finally.unwrap_or(StmtRange::EMPTY).raw_parts();
            }
            Stmt::Block(r, _) => {
                w[0] = meta(17, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Stmt::Function(f) => {
                w[0] = meta(18, f.by_ref as u8, 0, 0);
                w[1] = self.t.get(f.name);
                (w[2], w[3]) = f.params.raw_parts();
                (w[4], w[5]) = f.body.raw_parts();
            }
            Stmt::Class(c) => {
                let flags =
                    c.is_abstract as u8 | (c.is_final as u8) << 1 | (c.parent.is_some() as u8) << 2;
                w[0] = meta(19, c.kind as u8, flags, 0);
                w[1] = self.t.get(c.name);
                w[2] = c.parent.map(|p| self.t.get(p)).unwrap_or(0);
                (w[3], w[4]) = c.interfaces.raw_parts();
                (w[5], w[6]) = c.members.raw_parts();
            }
            Stmt::ConstDecl(r, _) => {
                w[0] = meta(20, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
            }
            Stmt::Nop(_) => w[0] = meta(21, 0, 0, 0),
            Stmt::Error(_) => w[0] = meta(22, 0, 0, 0),
        }
        self.pools[P_STMTS].extend_from_slice(&w);
    }

    fn modifiers_byte(m: &Modifiers) -> u8 {
        let vis = match m.visibility {
            Visibility::Public => 0,
            Visibility::Protected => 1,
            Visibility::Private => 2,
        };
        vis | (m.is_static as u8) << 2 | (m.is_abstract as u8) << 3 | (m.is_final as u8) << 4
    }

    fn member(&mut self, m: &ClassMember) {
        let mut w = [0u32; 8];
        match *m {
            ClassMember::Property {
                name,
                default,
                modifiers,
                span,
            } => {
                w[0] = meta(0, Self::modifiers_byte(&modifiers), 0, 0);
                w[1] = self.t.get(name);
                w[2] = opt(default);
                w[7] = span.line;
            }
            ClassMember::Method(mods, f) => {
                w[0] = meta(1, Self::modifiers_byte(&mods), f.by_ref as u8, 0);
                w[1] = self.t.get(f.name);
                (w[2], w[3]) = f.params.raw_parts();
                (w[4], w[5]) = f.body.raw_parts();
                w[7] = f.span.line;
            }
            ClassMember::Const { name, value, span } => {
                w[0] = meta(2, 0, 0, 0);
                w[1] = self.t.get(name);
                w[2] = value.raw();
                w[7] = span.line;
            }
            ClassMember::UseTrait(r, span) => {
                w[0] = meta(3, 0, 0, 0);
                (w[1], w[2]) = r.raw_parts();
                w[7] = span.line;
            }
        }
        self.pools[P_MEMBERS].extend_from_slice(&w);
    }
}

/// Encodes `file` into the ZAST v2 layout. Deterministic: the string table
/// is built in first-use order, independent of global interner state.
pub fn encode_file(file: &ParsedFile) -> Vec<u8> {
    let a = &file.arena;
    let mut enc = Enc::default();

    for e in &a.exprs {
        enc.expr(e);
    }
    for s in &a.stmts {
        enc.stmt(s);
    }
    for id in &a.expr_ids {
        enc.pools[P_EXPR_IDS].push(id.raw());
    }
    for id in &a.stmt_ids {
        enc.pools[P_STMT_IDS].push(id.raw());
    }
    for arg in &a.args {
        enc.pools[P_ARGS].push(arg.value.raw());
        enc.pools[P_ARGS].push(arg.by_ref as u32);
    }
    for p in &a.params {
        let flags =
            p.by_ref as u32 | (p.variadic as u32) << 1 | (p.type_hint.is_some() as u32) << 2;
        let name = enc.t.get(p.name);
        let hint = p.type_hint.map(|h| enc.t.get(h)).unwrap_or(0);
        let pool = &mut enc.pools[P_PARAMS];
        pool.push(name);
        pool.push(flags);
        pool.push(opt(p.default));
        pool.push(hint);
    }
    for part in &a.interp_parts {
        let (kind, payload) = match part {
            InterpPart::Lit(s) => (0, enc.t.get(*s)),
            InterpPart::Expr(e) => (1, e.raw()),
        };
        enc.pools[P_INTERP].push(kind);
        enc.pools[P_INTERP].push(payload);
    }
    for (key, value) in &a.array_items {
        enc.pools[P_ITEMS].push(opt(*key));
        enc.pools[P_ITEMS].push(value.raw());
    }
    for o in &a.opt_exprs {
        enc.pools[P_OPT_EXPRS].push(opt(*o));
    }
    for (cond, body) in &a.elseifs {
        let (s, l) = body.raw_parts();
        enc.pools[P_ELSEIFS].push(cond.raw());
        enc.pools[P_ELSEIFS].push(s);
        enc.pools[P_ELSEIFS].push(l);
    }
    for c in &a.cases {
        let (s, l) = c.body.raw_parts();
        enc.pools[P_CASES].push(opt(c.value));
        enc.pools[P_CASES].push(s);
        enc.pools[P_CASES].push(l);
    }
    for c in &a.catches {
        let (s, l) = c.body.raw_parts();
        let class = enc.t.get(c.class);
        let var = enc.t.get(c.var);
        let pool = &mut enc.pools[P_CATCHES];
        pool.push(class);
        pool.push(var);
        pool.push(s);
        pool.push(l);
    }
    for s in &a.syms {
        let i = enc.t.get(*s);
        enc.pools[P_SYMS].push(i);
    }
    for (name, init) in &a.static_vars {
        let n = enc.t.get(*name);
        enc.pools[P_STATIC_VARS].push(n);
        enc.pools[P_STATIC_VARS].push(opt(*init));
    }
    for (name, by_ref) in &a.closure_uses {
        let n = enc.t.get(*name);
        enc.pools[P_USES].push(n);
        enc.pools[P_USES].push(*by_ref as u32);
    }
    for (name, value) in &a.consts {
        let n = enc.t.get(*name);
        enc.pools[P_CONSTS].push(n);
        enc.pools[P_CONSTS].push(value.raw());
    }
    for m in &a.members {
        enc.member(m);
    }
    for e in &file.errors {
        let msg = enc.t.get(Symbol::from(e.message.as_str()));
        enc.errors.push(msg);
        enc.errors.push(e.span.line);
    }

    // Assemble: header, string index, blob, pools, errors — each section
    // zero-padded to an 8-byte boundary.
    let mut blob = Vec::new();
    let mut index = Vec::with_capacity(enc.t.syms.len() * 2);
    for s in &enc.t.syms {
        let bytes = s.as_str().as_bytes();
        index.push(blob.len() as u32);
        index.push(bytes.len() as u32);
        blob.extend_from_slice(bytes);
    }

    let counts: Vec<u32> = (0..N_POOLS)
        .map(|p| (enc.pools[p].len() / POOL_WORDS[p]) as u32)
        .collect();
    let (top_start, top_len) = file.top.raw_parts();

    let mut out = Vec::with_capacity(
        HEADER_BYTES
            + index.len() * 4
            + align8(blob.len())
            + enc.pools.iter().map(|p| align8(p.len() * 4)).sum::<usize>()
            + enc.errors.len() * 4,
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let mut header = Vec::with_capacity(HEADER_WORDS);
    header.extend_from_slice(&counts);
    header.push(enc.t.syms.len() as u32);
    header.push(blob.len() as u32);
    header.push(top_start);
    header.push(top_len);
    header.push(file.errors.len() as u32);
    header.push(a.slices);
    header.push(0); // reserved
    debug_assert_eq!(header.len(), HEADER_WORDS);
    for wv in &header {
        out.extend_from_slice(&wv.to_le_bytes());
    }

    let pad = |out: &mut Vec<u8>| {
        while !out.len().is_multiple_of(8) {
            out.push(0);
        }
    };
    for wv in &index {
        out.extend_from_slice(&wv.to_le_bytes());
    }
    out.extend_from_slice(&blob);
    pad(&mut out);
    for pool in &enc.pools {
        for wv in pool {
            out.extend_from_slice(&wv.to_le_bytes());
        }
        pad(&mut out);
    }
    for wv in &enc.errors {
        out.extend_from_slice(&wv.to_le_bytes());
    }
    out
}

// ------------------------------------------------------------------- view

fn fail<T>(what: &'static str, at: usize) -> Result<T> {
    Err(CodecError { what, at })
}

fn dec_flag(v: u32, at: usize) -> Result<bool> {
    match v {
        0 => Ok(false),
        1 => Ok(true),
        _ => fail("bad boolean flag", at),
    }
}

macro_rules! dec_enum {
    ($name:ident, $ty:ident, $what:literal, [$($variant:ident),+ $(,)?]) => {
        fn $name(v: u8, at: usize) -> Result<$ty> {
            const ALL: &[$ty] = &[$($ty::$variant),+];
            ALL.get(v as usize)
                .copied()
                .ok_or(CodecError { what: $what, at })
        }
    };
}

dec_enum!(
    dec_binop,
    BinOp,
    "bad binary operator",
    [
        Add,
        Sub,
        Mul,
        Div,
        Mod,
        Pow,
        Concat,
        Eq,
        NotEq,
        Identical,
        NotIdentical,
        Lt,
        Gt,
        Le,
        Ge,
        And,
        Or,
        Xor,
        BitAnd,
        BitOr,
        BitXor,
        Shl,
        Shr,
    ]
);
dec_enum!(
    dec_unop,
    UnOp,
    "bad unary operator",
    [Not, Neg, Plus, BitNot]
);
dec_enum!(
    dec_assign_op,
    AssignOp,
    "bad assignment operator",
    [
        Assign,
        AddAssign,
        SubAssign,
        MulAssign,
        DivAssign,
        ModAssign,
        ConcatAssign,
        BitAndAssign,
        BitOrAssign,
        BitXorAssign,
        ShlAssign,
        ShrAssign,
    ]
);
dec_enum!(
    dec_cast,
    CastKind,
    "bad cast kind",
    [Int, Float, String, Array, Object, Bool, Unset]
);
dec_enum!(
    dec_include,
    IncludeKind,
    "bad include kind",
    [Include, IncludeOnce, Require, RequireOnce]
);
dec_enum!(
    dec_class_kind,
    ClassKind,
    "bad class kind",
    [Class, Interface, Trait]
);
dec_enum!(
    dec_visibility,
    Visibility,
    "bad visibility",
    [Public, Protected, Private]
);

/// An owner-erased immutable byte buffer backing a [`ParsedFileRef`].
///
/// The warm path wants to hand the view either a heap buffer
/// (`Arc<[u8]>`) or a window into a memory-mapped disk-cache entry
/// without copying. `PayloadBytes` pins whatever owns the bytes behind a
/// type-erased `Arc` and dereferences to the byte window, so the view
/// machinery is agnostic to where the payload lives.
#[derive(Clone)]
pub struct PayloadBytes {
    // Kept only to hold the backing storage alive for `ptr`/`len`.
    _owner: Arc<dyn std::any::Any + Send + Sync>,
    ptr: *const u8,
    len: usize,
}

// SAFETY: the window is immutable for its whole lifetime and the owner is
// itself Send + Sync, so shared access from any thread is safe.
unsafe impl Send for PayloadBytes {}
unsafe impl Sync for PayloadBytes {}

impl std::ops::Deref for PayloadBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr`/`len` index into a buffer kept alive by `_owner`,
        // whose heap storage never moves behind the `Arc`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl PayloadBytes {
    /// Wraps a shared heap buffer (the non-mapped warm path).
    pub fn from_arc(bytes: Arc<[u8]>) -> PayloadBytes {
        let ptr = bytes.as_ptr();
        let len = bytes.len();
        PayloadBytes {
            _owner: Arc::new(bytes),
            ptr,
            len,
        }
    }

    /// The window `offset..offset + len` of a buffer owned by `owner`
    /// (e.g. a memory-mapped cache entry). Panics if the window exceeds
    /// the owner's bytes.
    pub fn from_owner<T>(owner: Arc<T>, offset: usize, len: usize) -> PayloadBytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let window = &(*owner).as_ref()[offset..offset + len];
        let ptr = window.as_ptr();
        PayloadBytes {
            _owner: owner,
            ptr,
            len,
        }
    }
}

impl From<Arc<[u8]>> for PayloadBytes {
    fn from(bytes: Arc<[u8]>) -> PayloadBytes {
        PayloadBytes::from_arc(bytes)
    }
}

/// A validated borrowed view over a ZAST payload.
///
/// [`ParsedFileRef::new`] performs the single bounds-checking pass (and
/// interns the string table); after that every accessor and [`thaw`]
/// reads fixed-width records straight out of the shared [`PayloadBytes`]
/// buffer with no further validation, allocation, or string decoding.
///
/// [`thaw`]: ParsedFileRef::thaw
#[derive(Clone)]
pub struct ParsedFileRef {
    payload: PayloadBytes,
    counts: [u32; N_POOLS],
    offsets: [usize; N_POOLS],
    err_off: usize,
    n_errors: u32,
    top: StmtRange,
    slices: u32,
    /// String table remapped to process-local symbols (one intern per
    /// distinct string per load, not per occurrence).
    syms: Vec<Symbol>,
}

impl ParsedFileRef {
    /// Validates a shared heap buffer as a ZAST v2 file; see
    /// [`ParsedFileRef::from_bytes`] for the general (e.g. memory-mapped)
    /// entry point.
    pub fn new(payload: Arc<[u8]>) -> Result<ParsedFileRef> {
        ParsedFileRef::from_bytes(PayloadBytes::from_arc(payload))
    }

    /// Validates `payload` as a ZAST v2 file and builds the borrowed view.
    /// This is the **only** pass that checks anything: header counts
    /// against the exact payload length, strings against the blob
    /// (bounds and UTF-8), and every record's tag, handle, range, and
    /// string index against the pool counts. Malformed input —
    /// truncation, bit flips, hostile counts — yields `Err`, never a
    /// panic or out-of-bounds handle.
    pub fn from_bytes(payload: PayloadBytes) -> Result<ParsedFileRef> {
        if payload.len() < HEADER_BYTES {
            return fail("zast payload shorter than header", payload.len());
        }
        if &payload[..4] != MAGIC {
            return fail("bad zast magic", 0);
        }
        let word = |i: usize| {
            let b = &payload[8 + i * 4..8 + i * 4 + 4];
            u32::from_le_bytes([b[0], b[1], b[2], b[3]])
        };
        if u32::from_le_bytes([payload[4], payload[5], payload[6], payload[7]]) != VERSION {
            return fail("unsupported zast version", 4);
        }
        let mut counts = [0u32; N_POOLS];
        for (p, c) in counts.iter_mut().enumerate() {
            *c = word(p);
        }
        let n_strings = word(N_POOLS);
        let blob_len = word(N_POOLS + 1);
        let top_start = word(N_POOLS + 2);
        let top_len = word(N_POOLS + 3);
        let n_errors = word(N_POOLS + 4);
        let slices = word(N_POOLS + 5);

        // The header fully determines the payload length; check it exactly
        // (u64 arithmetic so hostile counts cannot overflow the math).
        let align8_64 = |n: u64| (n + 7) & !7;
        let mut off = HEADER_BYTES as u64;
        let sidx_off = off as usize;
        off += n_strings as u64 * 8;
        let blob_off = off;
        off = align8_64(off + blob_len as u64);
        let mut offsets = [0usize; N_POOLS];
        for p in 0..N_POOLS {
            if off > payload.len() as u64 {
                return fail("zast section exceeds payload", payload.len());
            }
            offsets[p] = off as usize;
            off = align8_64(off + counts[p] as u64 * POOL_WORDS[p] as u64 * 4);
        }
        if off > payload.len() as u64 {
            return fail("zast section exceeds payload", payload.len());
        }
        let err_off = off as usize;
        off += n_errors as u64 * 8;
        if off != payload.len() as u64 {
            return fail("zast payload length mismatch", payload.len());
        }

        // String table: bounds + UTF-8 check each entry, interning it once.
        let blob_off = blob_off as usize;
        let mut syms = Vec::with_capacity(n_strings as usize);
        for i in 0..n_strings as usize {
            let at = sidx_off + i * 8;
            let b = &payload[at..at + 8];
            let s = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64;
            let l = u32::from_le_bytes([b[4], b[5], b[6], b[7]]) as u64;
            if s + l > blob_len as u64 {
                return fail("string exceeds blob", at);
            }
            let bytes = &payload[blob_off + s as usize..blob_off + (s + l) as usize];
            match std::str::from_utf8(bytes) {
                Ok(text) => syms.push(Symbol::from(text)),
                Err(_) => return fail("string is not UTF-8", at),
            }
        }

        let r = ParsedFileRef {
            payload,
            counts,
            offsets,
            err_off,
            n_errors,
            top: StmtRange::from_raw_parts(top_start, top_len),
            slices,
            syms,
        };
        if top_start as u64 + top_len as u64 > r.counts[P_STMT_IDS] as u64 {
            return fail("top range exceeds statement list pool", HEADER_BYTES);
        }
        r.validate_records()?;
        Ok(r)
    }

    /// Validates every record of every pool by reading it once through the
    /// checked readers.
    fn validate_records(&self) -> Result<()> {
        for i in 0..self.counts[P_EXPRS] {
            self.read_expr(i)?;
        }
        for i in 0..self.counts[P_STMTS] {
            self.read_stmt(i)?;
        }
        for i in 0..self.counts[P_EXPR_IDS] {
            self.read_expr_id(i)?;
        }
        for i in 0..self.counts[P_STMT_IDS] {
            self.read_stmt_id(i)?;
        }
        for i in 0..self.counts[P_ARGS] {
            self.read_arg(i)?;
        }
        for i in 0..self.counts[P_PARAMS] {
            self.read_param(i)?;
        }
        for i in 0..self.counts[P_INTERP] {
            self.read_interp_part(i)?;
        }
        for i in 0..self.counts[P_ITEMS] {
            self.read_array_item(i)?;
        }
        for i in 0..self.counts[P_OPT_EXPRS] {
            self.read_opt_expr(i)?;
        }
        for i in 0..self.counts[P_ELSEIFS] {
            self.read_elseif(i)?;
        }
        for i in 0..self.counts[P_CASES] {
            self.read_case(i)?;
        }
        for i in 0..self.counts[P_CATCHES] {
            self.read_catch(i)?;
        }
        for i in 0..self.counts[P_SYMS] {
            self.read_sym_entry(i)?;
        }
        for i in 0..self.counts[P_STATIC_VARS] {
            self.read_static_var(i)?;
        }
        for i in 0..self.counts[P_USES] {
            self.read_closure_use(i)?;
        }
        for i in 0..self.counts[P_CONSTS] {
            self.read_const_item(i)?;
        }
        for i in 0..self.counts[P_MEMBERS] {
            self.read_class_member(i)?;
        }
        for i in 0..self.n_errors {
            self.read_error(i)?;
        }
        Ok(())
    }

    // -- raw word access (in-bounds by the header length check whenever
    //    `i < counts[pool]`, which every caller below guarantees)

    fn rec_at(&self, pool: usize, i: u32) -> usize {
        self.offsets[pool] + i as usize * POOL_WORDS[pool] * 4
    }

    fn word_at(&self, byte: usize) -> u32 {
        let b = &self.payload[byte..byte + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    fn w(&self, pool: usize, i: u32, word: usize) -> u32 {
        debug_assert!(i < self.counts[pool] && word < POOL_WORDS[pool]);
        self.word_at(self.rec_at(pool, i) + word * 4)
    }

    // -- checked handle / range / string constructors

    fn sym(&self, idx: u32, at: usize) -> Result<Symbol> {
        self.syms.get(idx as usize).copied().ok_or(CodecError {
            what: "string index out of range",
            at,
        })
    }

    fn expr_id(&self, v: u32, at: usize) -> Result<ExprId> {
        if v < self.counts[P_EXPRS] {
            Ok(ExprId::from_raw(v))
        } else {
            fail("expression handle out of range", at)
        }
    }

    fn opt_expr_id(&self, v: u32, at: usize) -> Result<Option<ExprId>> {
        if v == NONE {
            Ok(None)
        } else {
            self.expr_id(v, at).map(Some)
        }
    }

    fn range(&self, start: u32, len: u32, pool: usize, at: usize) -> Result<(u32, u32)> {
        if start as u64 + len as u64 <= self.counts[pool] as u64 {
            Ok((start, len))
        } else {
            fail("slice range out of pool bounds", at)
        }
    }

    fn stmt_range(&self, start: u32, len: u32, at: usize) -> Result<StmtRange> {
        let (s, l) = self.range(start, len, P_STMT_IDS, at)?;
        Ok(StmtRange::from_raw_parts(s, l))
    }

    fn member_sel(&self, kind: u8, payload: u32, at: usize) -> Result<Member> {
        match kind {
            0 => Ok(Member::Name(self.sym(payload, at)?)),
            1 => Ok(Member::Dynamic(self.expr_id(payload, at)?)),
            _ => fail("bad member selector kind", at),
        }
    }

    // -- record readers

    fn read_expr(&self, i: u32) -> Result<Expr> {
        let at = self.rec_at(P_EXPRS, i);
        let w = |k: usize| self.w(P_EXPRS, i, k);
        let m = w(0);
        let (tag, a1, a2) = (m as u8, (m >> 8) as u8, (m >> 16) as u8);
        let span = Span::at(w(7));
        Ok(match tag {
            0 => Expr::Var(self.sym(w(1), at)?, span),
            1 => Expr::VarVar(self.expr_id(w(1), at)?, span),
            2 => {
                let lit = match a1 {
                    0 => Lit::Int(self.sym(w(1), at)?),
                    1 => Lit::Float(self.sym(w(1), at)?),
                    2 => Lit::Str(self.sym(w(1), at)?),
                    3 => Lit::Bool(dec_flag(w(1), at)?),
                    4 => Lit::Null,
                    _ => return fail("bad literal kind", at),
                };
                Expr::Lit(lit, span)
            }
            3 => {
                let (s, l) = self.range(w(1), w(2), P_INTERP, at)?;
                Expr::Interp(InterpRange::from_raw_parts(s, l), span)
            }
            4 => Expr::ConstFetch(self.sym(w(1), at)?, span),
            5 => Expr::ClassConst(self.sym(w(1), at)?, self.sym(w(2), at)?, span),
            6 => {
                let (s, l) = self.range(w(1), w(2), P_ITEMS, at)?;
                Expr::ArrayLit(ItemRange::from_raw_parts(s, l), span)
            }
            7 => Expr::Index(self.expr_id(w(1), at)?, self.opt_expr_id(w(2), at)?, span),
            8 => Expr::Prop(
                self.expr_id(w(1), at)?,
                self.member_sel(a1, w(2), at)?,
                span,
            ),
            9 => Expr::StaticProp(self.sym(w(1), at)?, self.sym(w(2), at)?, span),
            10 => Expr::Assign {
                target: self.expr_id(w(1), at)?,
                op: dec_assign_op(a1, at)?,
                value: self.expr_id(w(2), at)?,
                by_ref: dec_flag(a2 as u32, at)?,
                span,
            },
            11 => Expr::Binary {
                op: dec_binop(a1, at)?,
                lhs: self.expr_id(w(1), at)?,
                rhs: self.expr_id(w(2), at)?,
                span,
            },
            12 => Expr::Unary {
                op: dec_unop(a1, at)?,
                expr: self.expr_id(w(1), at)?,
                span,
            },
            13 => Expr::IncDec {
                prefix: dec_flag(a1 as u32, at)?,
                increment: dec_flag(a2 as u32, at)?,
                expr: self.expr_id(w(1), at)?,
                span,
            },
            14 => {
                let callee = match a1 {
                    0 => Callee::Function(self.sym(w(1), at)?),
                    1 => Callee::Dynamic(self.expr_id(w(1), at)?),
                    2 => Callee::Method {
                        base: self.expr_id(w(1), at)?,
                        name: self.member_sel(a2, w(2), at)?,
                    },
                    3 => Callee::StaticMethod {
                        class: self.sym(w(1), at)?,
                        name: self.member_sel(a2, w(2), at)?,
                    },
                    _ => return fail("bad callee kind", at),
                };
                let (s, l) = self.range(w(3), w(4), P_ARGS, at)?;
                Expr::Call {
                    callee,
                    args: ArgRange::from_raw_parts(s, l),
                    span,
                }
            }
            15 => {
                let class = self.member_sel(a1, w(1), at)?;
                let (s, l) = self.range(w(2), w(3), P_ARGS, at)?;
                Expr::New {
                    class,
                    args: ArgRange::from_raw_parts(s, l),
                    span,
                }
            }
            16 => Expr::Clone(self.expr_id(w(1), at)?, span),
            17 => Expr::Ternary {
                cond: self.expr_id(w(1), at)?,
                then: self.opt_expr_id(w(2), at)?,
                otherwise: self.expr_id(w(3), at)?,
                span,
            },
            18 => Expr::Cast(dec_cast(a1, at)?, self.expr_id(w(1), at)?, span),
            19 => {
                let (s, l) = self.range(w(1), w(2), P_EXPR_IDS, at)?;
                Expr::Isset(ExprRange::from_raw_parts(s, l), span)
            }
            20 => Expr::Empty(self.expr_id(w(1), at)?, span),
            21 => Expr::ErrorSuppress(self.expr_id(w(1), at)?, span),
            22 => Expr::Print(self.expr_id(w(1), at)?, span),
            23 => Expr::Exit(self.opt_expr_id(w(1), at)?, span),
            24 => Expr::Include(dec_include(a1, at)?, self.expr_id(w(1), at)?, span),
            25 => Expr::Instanceof(self.expr_id(w(1), at)?, self.sym(w(2), at)?, span),
            26 => {
                let (s, l) = self.range(w(1), w(2), P_OPT_EXPRS, at)?;
                Expr::ListIntrinsic(OptExprRange::from_raw_parts(s, l), span)
            }
            27 => {
                let (ps, pl) = self.range(w(1), w(2), P_PARAMS, at)?;
                let (us, ul) = self.range(w(3), w(4), P_USES, at)?;
                Expr::Closure {
                    params: ParamRange::from_raw_parts(ps, pl),
                    uses: UseRange::from_raw_parts(us, ul),
                    body: self.stmt_range(w(5), w(6), at)?,
                    span,
                }
            }
            28 => {
                let (s, l) = self.range(w(1), w(2), P_INTERP, at)?;
                Expr::ShellExec(InterpRange::from_raw_parts(s, l), span)
            }
            29 => Expr::Ref(self.expr_id(w(1), at)?, span),
            30 => Expr::Error(span),
            _ => return fail("bad expression tag", at),
        })
    }

    fn read_stmt(&self, i: u32) -> Result<Stmt> {
        let at = self.rec_at(P_STMTS, i);
        let w = |k: usize| self.w(P_STMTS, i, k);
        let m = w(0);
        let (tag, a1, a2) = (m as u8, (m >> 8) as u8, (m >> 16) as u8);
        let span = Span::at(w(9));
        Ok(match tag {
            0 => Stmt::Expr(self.expr_id(w(1), at)?, span),
            1 => {
                let (s, l) = self.range(w(1), w(2), P_EXPR_IDS, at)?;
                Stmt::Echo(ExprRange::from_raw_parts(s, l), span)
            }
            2 => Stmt::InlineHtml(self.sym(w(1), at)?, span),
            3 => Stmt::If {
                cond: self.expr_id(w(1), at)?,
                then: self.stmt_range(w(2), w(3), at)?,
                elseifs: {
                    let (s, l) = self.range(w(4), w(5), P_ELSEIFS, at)?;
                    ElseifRange::from_raw_parts(s, l)
                },
                otherwise: if dec_flag(a1 as u32, at)? {
                    Some(self.stmt_range(w(6), w(7), at)?)
                } else {
                    None
                },
                span,
            },
            4 => Stmt::While {
                cond: self.expr_id(w(1), at)?,
                body: self.stmt_range(w(2), w(3), at)?,
                span,
            },
            5 => Stmt::DoWhile {
                body: self.stmt_range(w(1), w(2), at)?,
                cond: self.expr_id(w(3), at)?,
                span,
            },
            6 => {
                let (is_, il) = self.range(w(1), w(2), P_EXPR_IDS, at)?;
                let (cs, cl) = self.range(w(3), w(4), P_EXPR_IDS, at)?;
                let (ss, sl) = self.range(w(5), w(6), P_EXPR_IDS, at)?;
                Stmt::For {
                    init: ExprRange::from_raw_parts(is_, il),
                    cond: ExprRange::from_raw_parts(cs, cl),
                    step: ExprRange::from_raw_parts(ss, sl),
                    body: self.stmt_range(w(7), w(8), at)?,
                    span,
                }
            }
            7 => Stmt::Foreach {
                subject: self.expr_id(w(1), at)?,
                key: self.opt_expr_id(w(2), at)?,
                value: self.expr_id(w(3), at)?,
                by_ref: dec_flag(a1 as u32, at)?,
                body: self.stmt_range(w(4), w(5), at)?,
                span,
            },
            8 => Stmt::Switch {
                subject: self.expr_id(w(1), at)?,
                cases: {
                    let (s, l) = self.range(w(2), w(3), P_CASES, at)?;
                    CaseRange::from_raw_parts(s, l)
                },
                span,
            },
            9 => Stmt::Break(span),
            10 => Stmt::Continue(span),
            11 => Stmt::Return(self.opt_expr_id(w(1), at)?, span),
            12 => {
                let (s, l) = self.range(w(1), w(2), P_SYMS, at)?;
                Stmt::Global(SymRange::from_raw_parts(s, l), span)
            }
            13 => {
                let (s, l) = self.range(w(1), w(2), P_STATIC_VARS, at)?;
                Stmt::StaticVars(StaticVarRange::from_raw_parts(s, l), span)
            }
            14 => {
                let (s, l) = self.range(w(1), w(2), P_EXPR_IDS, at)?;
                Stmt::Unset(ExprRange::from_raw_parts(s, l), span)
            }
            15 => Stmt::Throw(self.expr_id(w(1), at)?, span),
            16 => Stmt::Try {
                body: self.stmt_range(w(1), w(2), at)?,
                catches: {
                    let (s, l) = self.range(w(3), w(4), P_CATCHES, at)?;
                    CatchRange::from_raw_parts(s, l)
                },
                finally: if dec_flag(a1 as u32, at)? {
                    Some(self.stmt_range(w(5), w(6), at)?)
                } else {
                    None
                },
                span,
            },
            17 => Stmt::Block(self.stmt_range(w(1), w(2), at)?, span),
            18 => {
                let (ps, pl) = self.range(w(2), w(3), P_PARAMS, at)?;
                Stmt::Function(FunctionDecl {
                    name: self.sym(w(1), at)?,
                    params: ParamRange::from_raw_parts(ps, pl),
                    by_ref: dec_flag(a1 as u32, at)?,
                    body: self.stmt_range(w(4), w(5), at)?,
                    span,
                })
            }
            19 => {
                if a2 & !0b111 != 0 {
                    return fail("bad class flags", at);
                }
                let (is_, il) = self.range(w(3), w(4), P_SYMS, at)?;
                let (ms, ml) = self.range(w(5), w(6), P_MEMBERS, at)?;
                Stmt::Class(ClassDecl {
                    name: self.sym(w(1), at)?,
                    kind: dec_class_kind(a1, at)?,
                    parent: if a2 & 0b100 != 0 {
                        Some(self.sym(w(2), at)?)
                    } else {
                        None
                    },
                    interfaces: SymRange::from_raw_parts(is_, il),
                    is_abstract: a2 & 0b001 != 0,
                    is_final: a2 & 0b010 != 0,
                    members: MemberRange::from_raw_parts(ms, ml),
                    span,
                })
            }
            20 => {
                let (s, l) = self.range(w(1), w(2), P_CONSTS, at)?;
                Stmt::ConstDecl(ConstRange::from_raw_parts(s, l), span)
            }
            21 => Stmt::Nop(span),
            22 => Stmt::Error(span),
            _ => return fail("bad statement tag", at),
        })
    }

    fn read_class_member(&self, i: u32) -> Result<ClassMember> {
        let at = self.rec_at(P_MEMBERS, i);
        let w = |k: usize| self.w(P_MEMBERS, i, k);
        let m = w(0);
        let (tag, a1, a2) = (m as u8, (m >> 8) as u8, (m >> 16) as u8);
        let span = Span::at(w(7));
        let modifiers = |at: usize| -> Result<Modifiers> {
            if a1 & !0b11111 != 0 {
                return fail("bad modifier flags", at);
            }
            Ok(Modifiers {
                visibility: dec_visibility(a1 & 0b11, at)?,
                is_static: a1 & 0b100 != 0,
                is_abstract: a1 & 0b1000 != 0,
                is_final: a1 & 0b10000 != 0,
            })
        };
        Ok(match tag {
            0 => ClassMember::Property {
                name: self.sym(w(1), at)?,
                default: self.opt_expr_id(w(2), at)?,
                modifiers: modifiers(at)?,
                span,
            },
            1 => {
                let (ps, pl) = self.range(w(2), w(3), P_PARAMS, at)?;
                ClassMember::Method(
                    modifiers(at)?,
                    FunctionDecl {
                        name: self.sym(w(1), at)?,
                        params: ParamRange::from_raw_parts(ps, pl),
                        by_ref: dec_flag(a2 as u32, at)?,
                        body: self.stmt_range(w(4), w(5), at)?,
                        span,
                    },
                )
            }
            2 => ClassMember::Const {
                name: self.sym(w(1), at)?,
                value: self.expr_id(w(2), at)?,
                span,
            },
            3 => {
                let (s, l) = self.range(w(1), w(2), P_SYMS, at)?;
                ClassMember::UseTrait(SymRange::from_raw_parts(s, l), span)
            }
            _ => return fail("bad class member tag", at),
        })
    }

    fn read_expr_id(&self, i: u32) -> Result<ExprId> {
        let at = self.rec_at(P_EXPR_IDS, i);
        self.expr_id(self.w(P_EXPR_IDS, i, 0), at)
    }

    fn read_stmt_id(&self, i: u32) -> Result<StmtId> {
        let at = self.rec_at(P_STMT_IDS, i);
        let v = self.w(P_STMT_IDS, i, 0);
        if v < self.counts[P_STMTS] {
            Ok(StmtId::from_raw(v))
        } else {
            fail("statement handle out of range", at)
        }
    }

    fn read_arg(&self, i: u32) -> Result<Arg> {
        let at = self.rec_at(P_ARGS, i);
        Ok(Arg {
            value: self.expr_id(self.w(P_ARGS, i, 0), at)?,
            by_ref: dec_flag(self.w(P_ARGS, i, 1), at)?,
        })
    }

    fn read_param(&self, i: u32) -> Result<Param> {
        let at = self.rec_at(P_PARAMS, i);
        let w = |k: usize| self.w(P_PARAMS, i, k);
        let flags = w(1);
        if flags & !0b111 != 0 {
            return fail("bad parameter flags", at);
        }
        Ok(Param {
            name: self.sym(w(0), at)?,
            by_ref: flags & 0b001 != 0,
            default: self.opt_expr_id(w(2), at)?,
            type_hint: if flags & 0b100 != 0 {
                Some(self.sym(w(3), at)?)
            } else {
                None
            },
            variadic: flags & 0b010 != 0,
        })
    }

    fn read_interp_part(&self, i: u32) -> Result<InterpPart> {
        let at = self.rec_at(P_INTERP, i);
        let payload = self.w(P_INTERP, i, 1);
        match self.w(P_INTERP, i, 0) {
            0 => Ok(InterpPart::Lit(self.sym(payload, at)?)),
            1 => Ok(InterpPart::Expr(self.expr_id(payload, at)?)),
            _ => fail("bad interpolation part kind", at),
        }
    }

    fn read_array_item(&self, i: u32) -> Result<ArrayItem> {
        let at = self.rec_at(P_ITEMS, i);
        Ok((
            self.opt_expr_id(self.w(P_ITEMS, i, 0), at)?,
            self.expr_id(self.w(P_ITEMS, i, 1), at)?,
        ))
    }

    fn read_opt_expr(&self, i: u32) -> Result<Option<ExprId>> {
        let at = self.rec_at(P_OPT_EXPRS, i);
        self.opt_expr_id(self.w(P_OPT_EXPRS, i, 0), at)
    }

    fn read_elseif(&self, i: u32) -> Result<Elseif> {
        let at = self.rec_at(P_ELSEIFS, i);
        let w = |k: usize| self.w(P_ELSEIFS, i, k);
        Ok((self.expr_id(w(0), at)?, self.stmt_range(w(1), w(2), at)?))
    }

    fn read_case(&self, i: u32) -> Result<SwitchCase> {
        let at = self.rec_at(P_CASES, i);
        let w = |k: usize| self.w(P_CASES, i, k);
        Ok(SwitchCase {
            value: self.opt_expr_id(w(0), at)?,
            body: self.stmt_range(w(1), w(2), at)?,
        })
    }

    fn read_catch(&self, i: u32) -> Result<Catch> {
        let at = self.rec_at(P_CATCHES, i);
        let w = |k: usize| self.w(P_CATCHES, i, k);
        Ok(Catch {
            class: self.sym(w(0), at)?,
            var: self.sym(w(1), at)?,
            body: self.stmt_range(w(2), w(3), at)?,
        })
    }

    fn read_sym_entry(&self, i: u32) -> Result<Symbol> {
        let at = self.rec_at(P_SYMS, i);
        self.sym(self.w(P_SYMS, i, 0), at)
    }

    fn read_static_var(&self, i: u32) -> Result<StaticVar> {
        let at = self.rec_at(P_STATIC_VARS, i);
        Ok((
            self.sym(self.w(P_STATIC_VARS, i, 0), at)?,
            self.opt_expr_id(self.w(P_STATIC_VARS, i, 1), at)?,
        ))
    }

    fn read_closure_use(&self, i: u32) -> Result<ClosureUse> {
        let at = self.rec_at(P_USES, i);
        Ok((
            self.sym(self.w(P_USES, i, 0), at)?,
            dec_flag(self.w(P_USES, i, 1), at)?,
        ))
    }

    fn read_const_item(&self, i: u32) -> Result<ConstItem> {
        let at = self.rec_at(P_CONSTS, i);
        Ok((
            self.sym(self.w(P_CONSTS, i, 0), at)?,
            self.expr_id(self.w(P_CONSTS, i, 1), at)?,
        ))
    }

    fn read_error(&self, i: u32) -> Result<ParseError> {
        let at = self.err_off + i as usize * 8;
        let msg = self.sym(self.word_at(at), at)?;
        Ok(ParseError {
            message: msg.as_str().to_string(),
            span: Span::at(self.word_at(at + 4)),
        })
    }
}

impl ParsedFileRef {
    /// Size of the underlying payload in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Number of expression records.
    pub fn expr_count(&self) -> usize {
        self.counts[P_EXPRS] as usize
    }

    /// Number of statement records.
    pub fn stmt_count(&self) -> usize {
        self.counts[P_STMTS] as usize
    }

    /// Total node count (expressions + statements), matching
    /// [`Arena::node_count`].
    pub fn node_count(&self) -> usize {
        self.expr_count() + self.stmt_count()
    }

    /// Number of recovered parse errors.
    pub fn error_count(&self) -> usize {
        self.n_errors as usize
    }

    /// The top-level statement range.
    pub fn top(&self) -> StmtRange {
        self.top
    }

    /// Reads expression record `i` straight from the borrowed buffer.
    /// Panics if `i >= expr_count()` (the payload itself was validated by
    /// [`ParsedFileRef::new`], so in-range reads cannot fail).
    pub fn expr(&self, i: u32) -> Expr {
        assert!(i < self.counts[P_EXPRS], "expression index out of range");
        self.read_expr(i).expect("validated zast payload")
    }

    /// Reads statement record `i` straight from the borrowed buffer.
    /// Panics if `i >= stmt_count()`.
    pub fn stmt(&self, i: u32) -> Stmt {
        assert!(i < self.counts[P_STMTS], "statement index out of range");
        self.read_stmt(i).expect("validated zast payload")
    }

    /// Bulk-relocates the borrowed pools into an owned [`ParsedFile`].
    /// No re-validation and no string decoding: every string was interned
    /// once by [`ParsedFileRef::new`], so this is a straight record →
    /// `Copy`-struct translation pass in pool order.
    pub fn thaw(&self) -> ParsedFile {
        const OK: &str = "validated zast payload";
        fn read_all<T>(n: u32, f: impl Fn(u32) -> T) -> Vec<T> {
            (0..n).map(f).collect()
        }
        let arena = Arena {
            exprs: read_all(self.counts[P_EXPRS], |i| self.read_expr(i).expect(OK)),
            stmts: read_all(self.counts[P_STMTS], |i| self.read_stmt(i).expect(OK)),
            expr_ids: read_all(self.counts[P_EXPR_IDS], |i| self.read_expr_id(i).expect(OK)),
            stmt_ids: read_all(self.counts[P_STMT_IDS], |i| self.read_stmt_id(i).expect(OK)),
            args: read_all(self.counts[P_ARGS], |i| self.read_arg(i).expect(OK)),
            params: read_all(self.counts[P_PARAMS], |i| self.read_param(i).expect(OK)),
            interp_parts: read_all(self.counts[P_INTERP], |i| {
                self.read_interp_part(i).expect(OK)
            }),
            array_items: read_all(self.counts[P_ITEMS], |i| self.read_array_item(i).expect(OK)),
            opt_exprs: read_all(self.counts[P_OPT_EXPRS], |i| {
                self.read_opt_expr(i).expect(OK)
            }),
            elseifs: read_all(self.counts[P_ELSEIFS], |i| self.read_elseif(i).expect(OK)),
            cases: read_all(self.counts[P_CASES], |i| self.read_case(i).expect(OK)),
            catches: read_all(self.counts[P_CATCHES], |i| self.read_catch(i).expect(OK)),
            syms: read_all(self.counts[P_SYMS], |i| self.read_sym_entry(i).expect(OK)),
            static_vars: read_all(self.counts[P_STATIC_VARS], |i| {
                self.read_static_var(i).expect(OK)
            }),
            closure_uses: read_all(self.counts[P_USES], |i| self.read_closure_use(i).expect(OK)),
            consts: read_all(self.counts[P_CONSTS], |i| {
                self.read_const_item(i).expect(OK)
            }),
            members: read_all(self.counts[P_MEMBERS], |i| {
                self.read_class_member(i).expect(OK)
            }),
            slices: self.slices,
        };
        ParsedFile {
            arena,
            top: self.top,
            errors: (0..self.n_errors)
                .map(|i| self.read_error(i).expect(OK))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    /// A source exercising every expression/statement/member variant the
    /// parser can produce, plus recovered errors.
    const KITCHEN_SINK: &str = r#"<html><body>
<?php
$id = $_GET['id'];
$x = 1 + 2.5 * 0x1f; $s = "pre $id mid {$row['k']} post"; $n = null; $t = true;
$arr = array('a' => 1, 2, 'c' => $x); $arr[] = $id; $e = $arr[0];
$$name = 3; $obj->prop = 4; $obj->$dyn = 5; C::$sp = 6; $k = C::KONST; $pi = M_PI;
$y = $x ?: 7; $z = $t ? 'a' : 'b'; $c = (int)$id; $d = (string)$x;
$q = isset($a, $b); $w = empty($a); $sup = @f(); print $x; $r = &$x;
$cat = 'a' . $id; $cat .= '!'; $neg = -$x; $not = !$t; $inc = ++$x; $dec = $x--;
$call = f($a, &$b); $m = $obj->m(1); $dm = $obj->$dmn(2); $sm = C::sm(3); $dyn = $fn(4);
$new = new C($x); $newd = new $cls(); $cl = clone $obj;
$closure = function (&$p, $q = 1) use (&$cap, $val) { return $p + $cap; };
$sh = `ls $dir`; $io = $obj instanceof C; $inc2 = include 'x.php'; require_once 'y.php';
list($l1, , $l2) = $arr;
if ($x > 1) { echo 'a'; } elseif ($x < 0) { echo 'b'; } else { echo 'c'; }
while ($x) { $x--; break; }
do { $x++; continue; } while ($x < 3);
for ($i = 0; $i < 9; $i++) { echo $i; }
foreach ($arr as $k => &$v) { $v = 1; }
switch ($x) { case 1: echo 'one'; break; default: echo 'other'; }
try { throw new E('boom'); } catch (E $ex) { echo 'c'; } finally { echo 'f'; }
global $g1, $g2; static $sv = 1, $sv2; unset($a, $b); ;
const TOP = 1;
{ echo 'block'; }
function f(&$a, array $b = array(), $c = 2) { return $a; }
function &byref() { static $s = 0; return $s; }
abstract class B { }
final class C extends B implements I, J {
    use T1, T2;
    const KONST = 9;
    public static $sp = 0;
    private $priv = 'p';
    protected abstract function pm();
    public final function m($p) { return $this->priv . $p; }
    static function sm($q) { return $q; }
    function &mref() { return $this->priv; }
}
interface I { } trait T1 { public function tm() { return 1; } }
echo $undefined_syntax ===;
?>tail html"#;

    fn sink() -> ParsedFile {
        parse(KITCHEN_SINK)
    }

    fn encoded() -> (ParsedFile, Vec<u8>) {
        let f = sink();
        let bytes = encode_file(&f);
        (f, bytes)
    }

    fn view(bytes: &[u8]) -> ParsedFileRef {
        ParsedFileRef::new(Arc::from(bytes.to_vec())).expect("valid payload")
    }

    #[test]
    fn roundtrip_is_identical() {
        let (f, bytes) = encoded();
        assert!(!f.errors.is_empty(), "source should exercise recovery");
        let v = view(&bytes);
        assert_eq!(v.thaw(), f);
    }

    #[test]
    fn header_is_aligned_and_recognized() {
        let (_, bytes) = encoded();
        assert!(looks_like(&bytes));
        assert_eq!(bytes.len() % 8, 0);
        assert_eq!(HEADER_BYTES % 8, 0);
        let f = sink();
        assert!(!looks_like(&crate::codec::encode_file(&f)));
        assert!(!looks_like(b"PAS"));
    }

    #[test]
    fn encoding_is_deterministic() {
        let (f, bytes) = encoded();
        assert_eq!(encode_file(&f), bytes);
        // Re-encoding a thawed copy is also byte-identical: the string
        // table order depends only on record order, not interner state.
        let thawed = view(&bytes).thaw();
        assert_eq!(encode_file(&thawed), bytes);
    }

    #[test]
    fn view_accessors_match_thawed_arena() {
        let (f, bytes) = encoded();
        let v = view(&bytes);
        assert_eq!(v.node_count(), f.arena.node_count());
        assert_eq!(v.top(), f.top);
        assert_eq!(v.error_count(), f.errors.len());
        for i in 0..v.expr_count() as u32 {
            assert_eq!(v.expr(i), *f.expr(ExprId::from_raw(i)));
        }
        for i in 0..v.stmt_count() as u32 {
            assert_eq!(v.stmt(i), *f.stmt(StmtId::from_raw(i)));
        }
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let (_, bytes) = encoded();
        // The header determines the exact length, so every proper prefix
        // must be rejected (and must not panic).
        for len in 0..bytes.len() {
            assert!(
                ParsedFileRef::new(Arc::from(bytes[..len].to_vec())).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0u8; 8]);
        assert!(ParsedFileRef::new(Arc::from(extended)).is_err());
    }

    #[test]
    fn byte_flips_never_panic_or_escape_bounds() {
        let (_, bytes) = encoded();
        for pos in 0..bytes.len() {
            for flip in [0xffu8, 0x01, 0x80] {
                let mut b = bytes.clone();
                b[pos] ^= flip;
                if b[pos] == bytes[pos] {
                    continue;
                }
                // Either rejected up front, or still structurally valid —
                // in which case every downstream read must stay in bounds.
                if let Ok(v) = ParsedFileRef::new(Arc::from(b)) {
                    let _ = v.thaw();
                }
            }
        }
    }

    #[test]
    fn garbage_fails_cleanly() {
        for n in [0usize, 3, 7, 8, 95, 104, 256, 4096] {
            let junk: Vec<u8> = (0..n).map(|i| (i * 37 + 11) as u8).collect();
            assert!(ParsedFileRef::new(Arc::from(junk)).is_err());
        }
        // Correct magic + version but hostile counts.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(MAGIC);
        hostile.extend_from_slice(&VERSION.to_le_bytes());
        for _ in 0..HEADER_WORDS {
            hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        assert!(ParsedFileRef::new(Arc::from(hostile)).is_err());
    }

    #[test]
    fn empty_file_roundtrips() {
        let f = parse("");
        let bytes = encode_file(&f);
        let v = view(&bytes);
        assert_eq!(v.node_count(), f.arena.node_count());
        assert_eq!(v.thaw(), f);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (_, mut bytes) = encoded();
        bytes[4] = 3;
        let err = match ParsedFileRef::new(Arc::from(bytes)) {
            Err(e) => e,
            Ok(_) => panic!("wrong version must be rejected"),
        };
        assert_eq!(err.what, "unsupported zast version");
    }
}
