//! Error-recovery tests: the parser must survive the malformed code that
//! real third-party plugins ship, keep later statements, and report
//! diagnostics — the robustness dimension of the paper's evaluation.

use php_ast::{parse, Arena, Expr, ParsedFile, Stmt, StmtId, StmtRange};

fn has_echo(file: &ParsedFile) -> bool {
    fn in_range(a: &Arena, body: StmtRange) -> bool {
        a.stmt_list(body).iter().any(|&s| in_stmt(a, s))
    }
    fn in_stmt(a: &Arena, s: StmtId) -> bool {
        match a.stmt(s) {
            Stmt::Echo(..) => true,
            Stmt::Block(b, _) => in_range(a, *b),
            Stmt::If {
                then, otherwise, ..
            } => in_range(a, *then) || otherwise.map(|b| in_range(a, b)).unwrap_or(false),
            Stmt::Function(f) => in_range(a, f.body),
            _ => false,
        }
    }
    file.top_stmts().iter().any(|&s| in_stmt(&file.arena, s))
}

#[test]
fn missing_semicolon_recovers() {
    let f = parse("<?php $a = 1 $b = 2; echo 'after';");
    assert!(!f.is_clean());
    assert!(has_echo(&f), "statements after the error survive");
}

#[test]
fn unbalanced_parens_recover() {
    let f = parse("<?php foo(1, 2; echo 'after';");
    assert!(!f.is_clean());
    assert!(has_echo(&f));
}

#[test]
fn unclosed_brace_at_eof() {
    let f = parse("<?php if ($a) { echo 'x';");
    assert!(!f.is_clean());
    assert!(has_echo(&f), "body statements still parsed");
}

#[test]
fn stray_close_braces() {
    let f = parse("<?php } } } echo 'after';");
    assert!(!f.is_clean());
    assert!(has_echo(&f));
}

#[test]
fn garbage_bytes_between_statements() {
    let f = parse("<?php $a = 1; \u{1}\u{2}\u{3} echo 'after';");
    assert!(has_echo(&f));
}

#[test]
fn broken_class_member_recovers_other_members() {
    let f = parse(
        "<?php class C {
            public $ok1;
            lalala ???;
            public function ok2() { echo 'in'; }
        }",
    );
    assert!(!f.is_clean());
    let Stmt::Class(c) = f.stmt(f.top_stmts()[0]) else {
        panic!("class survives")
    };
    assert!(c.method(&f, "ok2").is_some());
    assert!(f
        .members(c.members)
        .iter()
        .any(|m| matches!(m, php_ast::ClassMember::Property { name, .. } if *name == "$ok1")));
}

#[test]
fn incomplete_function_signature() {
    let f = parse("<?php function broken( { echo 'body'; } echo 'after';");
    assert!(!f.is_clean());
    assert!(has_echo(&f));
}

#[test]
fn errors_carry_line_numbers() {
    let f = parse("<?php\n$ok = 1;\n$broken = ;\n");
    assert!(!f.is_clean());
    assert!(f.errors.iter().any(|e| e.span.line == 3), "{:?}", f.errors);
}

#[test]
fn error_expr_placeholder_in_tree() {
    let f = parse("<?php $x = ;");
    let found = f.top_stmts().iter().any(|&s| {
        matches!(
            f.stmt(s),
            Stmt::Expr(e, _) if matches!(
                f.expr(*e),
                Expr::Assign { value, .. } if matches!(f.expr(*value), Expr::Error(_))
            )
        )
    });
    assert!(found, "{:?}", f.top_stmts());
}

#[test]
fn deeply_nested_input_does_not_stack_overflow() {
    // 200 nested parens + 200 nested ifs.
    let mut src = String::from("<?php $x = ");
    for _ in 0..200 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..200 {
        src.push(')');
    }
    src.push(';');
    for _ in 0..200 {
        src.push_str("if ($a) { ");
    }
    src.push_str("echo 1;");
    for _ in 0..200 {
        src.push('}');
    }
    let f = parse(&src);
    assert!(has_echo(&f));
}

#[test]
fn interleaved_html_with_broken_php() {
    let f = parse("<b>x</b><?php $a = ; ?><i>y</i><?php echo 'after';");
    assert!(!f.is_clean());
    assert!(has_echo(&f));
    assert!(f
        .top_stmts()
        .iter()
        .any(|&s| matches!(f.stmt(s), Stmt::InlineHtml(h, _) if h == "<i>y</i>")));
}

#[test]
fn half_written_oop_constructs() {
    for src in [
        "<?php $o->;",
        "<?php $o->m(;",
        "<?php new ;",
        "<?php C::;",
        "<?php class { }",
        "<?php class D extends { }",
    ] {
        let f = parse(src);
        assert!(!f.is_clean(), "{src} should report errors");
    }
}

#[test]
fn every_error_has_nonempty_message() {
    let f = parse("<?php $a = ; foo(; } class { x");
    assert!(!f.is_clean());
    for e in &f.errors {
        assert!(!e.message.is_empty());
        assert!(e.span.line >= 1);
    }
}
