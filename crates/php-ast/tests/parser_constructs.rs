//! Construct-by-construct parser tests: each test pins the AST shape for one
//! PHP construct the analyzers depend on.

use php_ast::*;

fn parse_clean(src: &str) -> ParsedFile {
    let f = parse(src);
    assert!(f.is_clean(), "parse errors for {src:?}: {:?}", f.errors);
    f
}

/// Parses and returns the file plus the id of the first expression
/// statement (nodes only mean something next to their arena).
fn first_expr(src: &str) -> (ParsedFile, ExprId) {
    let f = parse_clean(src);
    for &s in f.top_stmts() {
        if let Stmt::Expr(e, _) = f.stmt(s) {
            let e = *e;
            return (f, e);
        }
    }
    panic!("no expression statement in {src:?}");
}

fn top(f: &ParsedFile, i: usize) -> &Stmt {
    f.stmt(f.top_stmts()[i])
}

#[test]
fn assignment_chain_is_right_associative() {
    let (f, e) = first_expr("<?php $a = $b = 1;");
    let Expr::Assign { target, value, .. } = f.expr(e) else {
        panic!("expected assign");
    };
    assert_eq!(f.expr(*target).as_var_name(), Some("$a"));
    assert!(matches!(f.expr(*value), Expr::Assign { .. }));
}

#[test]
fn concat_assignment() {
    let (f, e) = first_expr("<?php $out .= $row;");
    let Expr::Assign { op, .. } = f.expr(e) else {
        panic!("expected assign");
    };
    assert_eq!(*op, AssignOp::ConcatAssign);
    assert!(op.reads_target());
}

#[test]
fn reference_assignment() {
    let (f, e) = first_expr("<?php $a =& $b;");
    let Expr::Assign { by_ref, .. } = f.expr(e) else {
        panic!("expected assign");
    };
    assert!(by_ref);
}

#[test]
fn precedence_concat_binds_tighter_than_comparison() {
    // $a . $b == $c parses as ($a . $b) == $c
    let (f, e) = first_expr("<?php $x = $a . $b == $c;");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::Binary { op, lhs, .. } = f.expr(*value) else {
        panic!("expected binary")
    };
    assert_eq!(*op, BinOp::Eq);
    assert!(matches!(
        f.expr(*lhs),
        Expr::Binary {
            op: BinOp::Concat,
            ..
        }
    ));
}

#[test]
fn precedence_mul_over_add() {
    let (f, e) = first_expr("<?php $x = 1 + 2 * 3;");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::Binary { op, rhs, .. } = f.expr(*value) else {
        panic!()
    };
    assert_eq!(*op, BinOp::Add);
    assert!(matches!(f.expr(*rhs), Expr::Binary { op: BinOp::Mul, .. }));
}

#[test]
fn logical_and_or_keywords_bind_loosest() {
    // `$a = $b or die()` assigns $b to $a, then ors.
    let (f, e) = first_expr("<?php $a = $b or exit();");
    assert!(matches!(f.expr(e), Expr::Binary { op: BinOp::Or, .. }));
}

#[test]
fn ternary_and_short_ternary() {
    let (f, e) = first_expr("<?php $x = $c ? 'a' : 'b';");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(
        f.expr(*value),
        Expr::Ternary { then: Some(_), .. }
    ));

    let (f, e) = first_expr("<?php $x = $c ?: 'b';");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(f.expr(*value), Expr::Ternary { then: None, .. }));
}

#[test]
fn superglobal_index_access() {
    let (f, e) = first_expr("<?php $id = $_GET['id'];");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::Index(base, idx, _) = f.expr(*value) else {
        panic!("expected index")
    };
    assert_eq!(f.expr(*base).as_var_name(), Some("$_GET"));
    assert!(matches!(
        idx.map(|i| f.expr(i)),
        Some(Expr::Lit(Lit::Str(s), _)) if s == "id"
    ));
}

#[test]
fn array_push_syntax() {
    let (f, e) = first_expr("<?php $a[] = 1;");
    let Expr::Assign { target, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(f.expr(*target), Expr::Index(_, None, _)));
}

#[test]
fn method_call_on_object() {
    let (f, e) = first_expr("<?php $wpdb->get_results($sql);");
    let Expr::Call { callee, args, .. } = f.expr(e) else {
        panic!("expected call")
    };
    let Callee::Method { base, name } = callee else {
        panic!("expected method callee")
    };
    assert_eq!(f.expr(*base).as_var_name(), Some("$wpdb"));
    assert_eq!(name.as_name(), Some("get_results"));
    assert_eq!(f.args(*args).len(), 1);
}

#[test]
fn chained_method_calls() {
    let (f, e) = first_expr("<?php $a->b()->c();");
    let Expr::Call { callee, .. } = f.expr(e) else {
        panic!()
    };
    let Callee::Method { base, name } = callee else {
        panic!()
    };
    assert_eq!(name.as_name(), Some("c"));
    assert!(matches!(f.expr(*base), Expr::Call { .. }));
}

#[test]
fn property_access_and_assignment() {
    let (f, e) = first_expr("<?php $this->db = $wpdb;");
    let Expr::Assign { target, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::Prop(base, member, _) = f.expr(*target) else {
        panic!()
    };
    assert_eq!(f.expr(*base).as_var_name(), Some("$this"));
    assert_eq!(member.as_name(), Some("db"));
}

#[test]
fn static_method_and_const_and_prop() {
    let (f, e) = first_expr("<?php Cache::get('k');");
    assert!(matches!(
        f.expr(e),
        Expr::Call {
            callee: Callee::StaticMethod { .. },
            ..
        }
    ));
    let (f, e) = first_expr("<?php $v = Config::VERSION;");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(f.expr(*value), Expr::ClassConst(..)));
    let (f, e) = first_expr("<?php $v = Registry::$items;");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(f.expr(*value), Expr::StaticProp(..)));
}

#[test]
fn new_with_and_without_args() {
    let (f, e) = first_expr("<?php $o = new Widget($x);");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::New { class, args, .. } = f.expr(*value) else {
        panic!()
    };
    assert_eq!(class.as_name(), Some("Widget"));
    assert_eq!(f.args(*args).len(), 1);

    let (f, e) = first_expr("<?php $o = new Widget;");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(f.expr(*value), Expr::New { .. }));
}

#[test]
fn new_dynamic_class() {
    let (f, e) = first_expr("<?php $o = new $cls();");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::New { class, .. } = f.expr(*value) else {
        panic!()
    };
    assert!(matches!(class, Member::Dynamic(_)));
}

#[test]
fn interpolated_string_parts() {
    let (f, e) = first_expr(r#"<?php $q = "SELECT * FROM {$wpdb->prefix}sml WHERE id = $id";"#);
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::Interp(parts, _) = f.expr(*value) else {
        panic!("expected interp")
    };
    let exprs: Vec<_> = f
        .interp(*parts)
        .iter()
        .filter(|p| matches!(p, InterpPart::Expr(_)))
        .collect();
    assert_eq!(exprs.len(), 2, "prefix property + $id");
}

#[test]
fn heredoc_becomes_interp() {
    let (f, e) = first_expr("<?php $h = <<<EOT\nHello $name\nEOT;\n");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(f.expr(*value), Expr::Interp(..)));
}

#[test]
fn function_declaration_with_defaults_and_refs() {
    let f = parse_clean("<?php function f($a, &$b, $c = 'x', array $d = array()) {}");
    let Stmt::Function(func) = top(&f, 0) else {
        panic!()
    };
    assert_eq!(func.name, "f");
    let params = f.params(func.params);
    assert_eq!(params.len(), 4);
    assert!(params[1].by_ref);
    assert!(params[2].default.is_some());
    assert_eq!(params[3].type_hint.map(|h| h.as_str()), Some("array"));
}

#[test]
fn class_with_members() {
    let f = parse_clean(
        "<?php
        abstract class Base extends Root implements A, B {
            const V = 1;
            public static $count = 0;
            private $name;
            protected function helper() { return $this->name; }
            abstract public function run();
        }",
    );
    let Stmt::Class(c) = top(&f, 0) else { panic!() };
    assert_eq!(c.name, "Base");
    assert!(c.is_abstract);
    assert_eq!(c.parent.map(|p| p.as_str()), Some("Root"));
    let ifaces: Vec<&str> = f.syms(c.interfaces).iter().map(|s| s.as_str()).collect();
    assert_eq!(ifaces, ["A", "B"]);
    assert_eq!(f.members(c.members).len(), 5);
    assert!(c.method(&f, "helper").is_some());
    assert!(c.method(&f, "run").is_some());
}

#[test]
fn trait_and_interface_declarations() {
    let f = parse_clean(
        "<?php
        interface Renderable { public function render(); }
        trait Loggable { public function log($m) { echo $m; } }
        class Page implements Renderable { use Loggable; public function render() {} }",
    );
    assert_eq!(f.top_stmts().len(), 3);
    let Stmt::Class(page) = top(&f, 2) else {
        panic!()
    };
    assert!(f.members(page.members).iter().any(|m| matches!(
        m,
        ClassMember::UseTrait(ts, _)
            if f.syms(*ts).iter().map(|s| s.as_str()).eq(["Loggable"])
    )));
}

#[test]
fn global_statement() {
    let f = parse_clean("<?php function f() { global $wpdb, $table; }");
    let Stmt::Function(func) = top(&f, 0) else {
        panic!()
    };
    let body = f.stmt_list(func.body);
    assert!(matches!(
        f.stmt(body[0]),
        Stmt::Global(names, _)
            if f.syms(*names).iter().map(|s| s.as_str()).eq(["$wpdb", "$table"])
    ));
}

#[test]
fn static_vars_vs_static_call() {
    let f = parse_clean("<?php function f() { static $n = 0; $n++; }");
    let Stmt::Function(func) = top(&f, 0) else {
        panic!()
    };
    let body = f.stmt_list(func.body);
    assert!(matches!(f.stmt(body[0]), Stmt::StaticVars(..)));

    let (f, e) = first_expr("<?php static::helper();");
    assert!(matches!(
        f.expr(e),
        Expr::Call {
            callee: Callee::StaticMethod { .. },
            ..
        }
    ));
}

#[test]
fn unset_and_isset_and_empty() {
    let f = parse_clean("<?php unset($a, $b['k']);");
    assert!(matches!(top(&f, 0), Stmt::Unset(es, _) if es.len() == 2));
    let (f, e) = first_expr("<?php $x = isset($_GET['a']) && !empty($_GET['a']);");
    assert!(matches!(f.expr(e), Expr::Assign { .. }));
}

#[test]
fn foreach_with_key_and_ref() {
    let f = parse_clean("<?php foreach ($rows as $k => &$v) { $v = 1; }");
    let Stmt::Foreach { key, by_ref, .. } = top(&f, 0) else {
        panic!()
    };
    assert!(key.is_some());
    assert!(by_ref);
}

#[test]
fn alternative_syntax_blocks() {
    let f = parse_clean(
        "<?php if ($a): echo 1; elseif ($b): echo 2; else: echo 3; endif;
         while ($x): $x--; endwhile;
         foreach ($r as $v): echo $v; endforeach;
         for ($i = 0; $i < 3; $i++): echo $i; endfor;",
    );
    assert!(f.top_stmts().len() >= 4);
    let Stmt::If {
        elseifs, otherwise, ..
    } = top(&f, 0)
    else {
        panic!()
    };
    assert_eq!(elseifs.len(), 1);
    assert!(otherwise.is_some());
}

#[test]
fn html_interleaving_inside_if() {
    let src = "<?php if ($ok) { ?><b>yes</b><?php } else { ?>no<?php } ?>";
    let f = parse_clean(src);
    let Stmt::If {
        then, otherwise, ..
    } = top(&f, 0)
    else {
        panic!("got {:?}", f.top_stmts())
    };
    let then_stmts = f.stmt_list(*then);
    assert!(matches!(f.stmt(then_stmts[0]), Stmt::InlineHtml(h, _) if h == "<b>yes</b>"));
    assert!(otherwise.is_some());
}

#[test]
fn echo_short_tag() {
    let f = parse_clean("<?= $_GET['x'] ?>");
    assert!(matches!(top(&f, 0), Stmt::Echo(es, _) if es.len() == 1));
}

#[test]
fn include_require_expressions() {
    let f = parse_clean("<?php require_once 'lib.php'; include dirname(__FILE__) . '/x.php';");
    let Stmt::Expr(e0, _) = top(&f, 0) else {
        panic!()
    };
    let Expr::Include(k1, ..) = f.expr(*e0) else {
        panic!()
    };
    assert_eq!(*k1, IncludeKind::RequireOnce);
    let Stmt::Expr(e1, _) = top(&f, 1) else {
        panic!()
    };
    assert!(matches!(
        f.expr(*e1),
        Expr::Include(IncludeKind::Include, ..)
    ));
}

#[test]
fn closures_with_use() {
    let (f, e) = first_expr("<?php add_action('init', function () use ($self) { $self->run(); });");
    let Expr::Call { args, .. } = f.expr(e) else {
        panic!()
    };
    let arg1 = f.args(*args)[1];
    assert!(matches!(
        f.expr(arg1.value),
        Expr::Closure { uses, .. } if uses.len() == 1
    ));
}

#[test]
fn list_assignment() {
    let (f, e) = first_expr("<?php list($a, , $b) = $parts;");
    let Expr::Assign { target, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::ListIntrinsic(items, _) = f.expr(*target) else {
        panic!()
    };
    let items = f.opt_exprs(*items);
    assert_eq!(items.len(), 3);
    assert!(items[1].is_none());
}

#[test]
fn casts_parse() {
    let (f, e) = first_expr("<?php $n = (int)$_GET['n'];");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    assert!(matches!(f.expr(*value), Expr::Cast(CastKind::Int, ..)));
}

#[test]
fn error_suppression_and_exit() {
    let (f, e) = first_expr("<?php @mysql_query($q) or die('fail');");
    assert!(matches!(f.expr(e), Expr::Binary { op: BinOp::Or, .. }));
}

#[test]
fn keyword_method_names() {
    // PHP permits keywords after `->`
    let (f, e) = first_expr("<?php $obj->list();");
    let Expr::Call { callee, .. } = f.expr(e) else {
        panic!()
    };
    let Callee::Method { name, .. } = callee else {
        panic!()
    };
    assert_eq!(name.as_name(), Some("list"));
}

#[test]
fn dynamic_property_and_method() {
    let (f, e) = first_expr("<?php $o->$field;");
    assert!(matches!(f.expr(e), Expr::Prop(_, Member::Dynamic(_), _)));
    let (f, e) = first_expr("<?php $o->$m($x);");
    assert!(matches!(
        f.expr(e),
        Expr::Call {
            callee: Callee::Method {
                name: Member::Dynamic(_),
                ..
            },
            ..
        }
    ));
}

#[test]
fn variable_function_call() {
    let (f, e) = first_expr("<?php $cb($x);");
    assert!(matches!(
        f.expr(e),
        Expr::Call {
            callee: Callee::Dynamic(_),
            ..
        }
    ));
}

#[test]
fn try_catch_finally() {
    let f = parse_clean(
        "<?php try { risky(); } catch (Exception $e) { echo $e; } finally { cleanup(); }",
    );
    let Stmt::Try {
        catches, finally, ..
    } = top(&f, 0)
    else {
        panic!()
    };
    let catches = f.catches(*catches);
    assert_eq!(catches.len(), 1);
    assert_eq!(catches[0].class, "Exception");
    assert!(finally.is_some());
}

#[test]
fn switch_with_cases() {
    let f = parse_clean(
        "<?php switch ($a) { case 'x': echo 1; break; case 'y': case 'z': echo 2; break; default: echo 3; }",
    );
    let Stmt::Switch { cases, .. } = top(&f, 0) else {
        panic!()
    };
    let cases = f.cases(*cases);
    assert_eq!(cases.len(), 4);
    assert!(cases[3].value.is_none());
}

#[test]
fn error_recovery_keeps_going() {
    let f = parse("<?php $a = ; echo 'still here';");
    assert!(!f.is_clean());
    // The echo after the error must still be parsed.
    assert!(f
        .top_stmts()
        .iter()
        .any(|&s| matches!(f.stmt(s), Stmt::Echo(..))));
}

#[test]
fn error_recovery_in_class_body() {
    let f = parse("<?php class C { ??? public function ok() {} }");
    assert!(!f.is_clean());
    let class = f.top_stmts().iter().find_map(|&s| match f.stmt(s) {
        Stmt::Class(c) => Some(c),
        _ => None,
    });
    assert!(class.expect("class survives").method(&f, "ok").is_some());
}

#[test]
fn namespaces_are_tolerated() {
    let f = parse_clean("<?php namespace My\\Plugin; use WP\\DB as D; $x = 1;");
    assert!(f
        .top_stmts()
        .iter()
        .any(|&s| matches!(f.stmt(s), Stmt::Expr(..))));
}

#[test]
fn magic_constants() {
    let (f, e) = first_expr("<?php $p = dirname(__FILE__);");
    let Expr::Assign { value, .. } = f.expr(e) else {
        panic!()
    };
    let Expr::Call { args, .. } = f.expr(*value) else {
        panic!()
    };
    let arg0 = f.args(*args)[0];
    assert!(matches!(f.expr(arg0.value), Expr::ConstFetch(n, _) if *n == "__FILE__"));
}

#[test]
fn paper_example_mail_subscribe_list() {
    // The motivating example from §III.E of the paper.
    let src = r#"<?php
$results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
foreach ($results as $row) {
    echo $row->sml_name;
}
"#;
    let f = parse_clean(src);
    assert_eq!(f.top_stmts().len(), 2);
    let Stmt::Foreach { body, .. } = top(&f, 1) else {
        panic!()
    };
    let body = f.stmt_list(*body);
    let Stmt::Echo(es, _) = f.stmt(body[0]) else {
        panic!()
    };
    let first = f.expr_list(*es)[0];
    assert!(matches!(f.expr(first), Expr::Prop(..)));
}
