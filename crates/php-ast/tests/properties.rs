//! Property-based tests: the parser is total, recovery always makes
//! progress, and printing then reparsing is stable.

use php_ast::{parse, printer::print_file};
use proptest::prelude::*;

fn php_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("<?php ".to_string()),
        Just("$x = $_GET['a']; ".to_string()),
        Just("echo $x; ".to_string()),
        Just("if ($a) { echo 1; } else { echo 2; } ".to_string()),
        Just("function f($p) { return $p; } ".to_string()),
        Just("class C { var $p; function m() {} } ".to_string()),
        Just("$o = new C(); $o->m(); ".to_string()),
        Just("foreach ($r as $k => $v) echo $v; ".to_string()),
        Just("\"str $interp\"; ".to_string()),
        Just("$a[1]['k'] = 2; ".to_string()),
        Just("while (".to_string()),  // deliberately broken
        Just("} } ) ; ".to_string()), // deliberately broken
        Just("$wpdb->query(\"DELETE\"); ".to_string()),
        Just("?><b>html</b><?php ".to_string()),
        Just("list($a,$b) = $x; ".to_string()),
        Just("switch($v){case 1: break; default: ;} ".to_string()),
        Just("@include 'x.php'; ".to_string()),
        Just("$$v = 1; ".to_string()),
        "[ -~]{0,16}".prop_map(|s| s),
    ];
    prop::collection::vec(fragment, 0..20).prop_map(|v| v.concat())
}

proptest! {
    /// The parser terminates and never panics on construct soup.
    #[test]
    fn parser_is_total(src in php_soup()) {
        let _ = parse(&src);
    }

    /// The parser never panics on arbitrary unicode.
    #[test]
    fn parser_is_total_on_unicode(src in "\\PC{0,80}") {
        let _ = parse(&src);
    }

    /// Printing a cleanly parsed file reparses cleanly, and a second
    /// print-parse cycle is a fixed point (structural stability).
    #[test]
    fn print_parse_stabilizes(src in php_soup()) {
        let f1 = parse(&src);
        if !f1.is_clean() {
            return Ok(());
        }
        let p1 = print_file(&f1);
        let f2 = parse(&p1);
        prop_assert!(f2.is_clean(), "printed output failed to reparse:\n{}\nerrors: {:?}", p1, f2.errors);
        let p2 = print_file(&f2);
        let f3 = parse(&p2);
        prop_assert!(f3.is_clean());
        prop_assert_eq!(print_file(&f3), p2, "printer must reach a fixed point");
    }

    /// Statement spans are 1-based and within the file.
    #[test]
    fn spans_in_range(src in php_soup()) {
        let f = parse(&src);
        let max_line = src.lines().count().max(1) as u32 + 1;
        for &s in f.top_stmts() {
            let sp = f.stmt(s).span();
            prop_assert!(sp.line >= 1 && sp.line <= max_line);
        }
    }
}
