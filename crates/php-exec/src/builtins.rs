//! Pure implementations of the PHP standard-library behaviour the executor
//! needs: escaping, hashing, string surgery. (The dispatch lives in
//! `exec.rs`; these helpers are deliberately side-effect free.)

/// `htmlentities` / `htmlspecialchars` / `esc_html`.
pub fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#039;"),
            other => out.push(other),
        }
    }
    out
}

/// `html_entity_decode` / `htmlspecialchars_decode`.
pub fn unescape_html(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#039;", "'")
        .replace("&#39;", "'")
        .replace("&amp;", "&")
}

/// `addslashes` (also our stand-in for `mysql_real_escape_string`).
pub fn addslashes(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\'' | '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            '\0' => out.push_str("\\0"),
            other => out.push(other),
        }
    }
    out
}

/// `stripslashes`.
pub fn stripslashes(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// `strip_tags` (naive tag stripper, as plugin authors assume).
pub fn strip_tags(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_tag = false;
    for c in s.chars() {
        match c {
            '<' => in_tag = true,
            '>' => in_tag = false,
            other if !in_tag => out.push(other),
            _ => {}
        }
    }
    out
}

/// `is_numeric`.
pub fn is_numeric(s: &str) -> bool {
    let t = s.trim();
    !t.is_empty() && t.parse::<f64>().is_ok()
}

/// `urlencode` (RFC 1738-ish).
pub fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            b' ' => out.push('+'),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// `urldecode`.
pub fn urldecode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Deterministic stand-in for `md5`/`sha1` (FNV-1a expanded to 32 hex
/// chars — stable, collision-irrelevant for exploit confirmation).
pub fn fake_hash(s: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}{:016x}", h.rotate_left(31))
}

/// `sprintf` with the subset plugin code uses (`%s`, `%d`, `%%`, `%f`).
pub fn sprintf(fmt: &str, args: &[String]) -> String {
    let mut out = String::new();
    let mut ai = 0;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('s') => {
                out.push_str(args.get(ai).map(|s| s.as_str()).unwrap_or(""));
                ai += 1;
            }
            Some('d') => {
                let v = args
                    .get(ai)
                    .map(|s| crate::value::parse_leading_number(s) as i64)
                    .unwrap_or(0);
                ai += 1;
                out.push_str(&v.to_string());
            }
            Some('f') => {
                let v = args
                    .get(ai)
                    .map(|s| crate::value::parse_leading_number(s))
                    .unwrap_or(0.0);
                ai += 1;
                out.push_str(&format!("{v:.6}"));
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

/// A conservative `preg_replace` for whitelist patterns: when the pattern
/// looks like `/[^...]/<flags>` we keep only ASCII alphanumerics and
/// underscores (what plugin cleaners intend); other patterns return the
/// subject unchanged.
pub fn preg_replace_approx(pattern: &str, replacement: &str, subject: &str) -> (String, bool) {
    let _ = replacement;
    if pattern.contains("[^") {
        let cleaned: String = subject
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        (cleaned, true)
    } else {
        (subject.to_string(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trip() {
        let s = "<script>alert('x')</script>";
        let e = escape_html(s);
        assert!(!e.contains('<'));
        assert_eq!(unescape_html(&e), s);
    }

    #[test]
    fn slashes_round_trip() {
        let s = "O'Reilly \"quoted\" \\ backslash";
        assert_eq!(stripslashes(&addslashes(s)), s);
    }

    #[test]
    fn strip_tags_removes_markup() {
        assert_eq!(strip_tags("<b>bold</b> text"), "bold text");
        assert_eq!(strip_tags("no tags"), "no tags");
        assert_eq!(strip_tags("<script>x</script>"), "x");
    }

    #[test]
    fn numeric_check() {
        assert!(is_numeric("42"));
        assert!(is_numeric(" 3.5 "));
        assert!(!is_numeric("42abc"));
        assert!(!is_numeric(""));
    }

    #[test]
    fn url_round_trip() {
        let s = "a b&c<d>'";
        assert_eq!(urldecode(&urlencode(s)), s);
    }

    #[test]
    fn sprintf_subset() {
        assert_eq!(
            sprintf(
                "%s has %d items (%d%%)",
                &["cart".into(), "3".into(), "50".into()]
            ),
            "cart has 3 items (50%)"
        );
    }

    #[test]
    fn fake_hash_is_stable_and_hexy() {
        let h = fake_hash("x");
        assert_eq!(h.len(), 32);
        assert_eq!(h, fake_hash("x"));
        assert_ne!(h, fake_hash("y"));
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn preg_replace_whitelist_neutralizes() {
        let (out, applied) = preg_replace_approx("/[^a-z0-9_]/i", "", "<img src=x>");
        assert!(applied);
        assert_eq!(out, "imgsrcx");
        let (out, applied) = preg_replace_approx("/foo/", "bar", "<img>");
        assert!(!applied);
        assert_eq!(out, "<img>");
    }
}
