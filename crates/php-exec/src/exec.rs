//! The concrete executor: runs plugin code with attacker-controlled inputs
//! injected, recording page output and executed SQL.
//!
//! This is *not* a full PHP runtime — it is the dynamic-confirmation
//! harness the paper performed manually ("the malicious code is injected
//! in his web browser, executing the attack (which we confirmed in an
//! experiment)"). Unsupported constructs degrade to `null` plus a recorded
//! warning rather than failing, and all loops/steps are bounded.
//!
//! AST nodes are arena handles: every walk carries the [`ParsedFile`]
//! (shared via `Arc`) whose arena the ids resolve against. Calls into
//! user-defined callables switch to the declaring file's arena.

use crate::value::{ArrayKey, ClosureValue, Object, PhpArray, Value};
use php_ast::{
    ArgRange, AssignOp, BinOp, Callee, Expr, ExprId, FunctionDecl, IncludeKind, InterpPart, Lit,
    Member, ParsedFile, Stmt, StmtId, StmtRange,
};
use phpsafe::symbols::SymbolTable;
use phpsafe::PluginProject;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A shared parsed file; derefs to its [`Arena`] for node lookups.
type Ast = Arc<ParsedFile>;

/// Attacker-input configuration for a run.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Payload for `$_GET` reads.
    pub get_payload: Option<String>,
    /// Payload for `$_POST` / `$_FILES` reads.
    pub post_payload: Option<String>,
    /// Payload for `$_COOKIE` reads.
    pub cookie_payload: Option<String>,
    /// Payload for `$_SERVER` reads.
    pub server_payload: Option<String>,
    /// Payload for `$_REQUEST` reads (GET/POST/COOKIE merged).
    pub request_payload: Option<String>,
    /// Payload stored in every database cell (stored-attack simulation).
    pub db_payload: Option<String>,
    /// Payload returned by file/environment reads (`fgets`, `getenv`).
    pub io_payload: Option<String>,
    /// Hard step budget for the whole run.
    pub step_limit: u64,
    /// Iteration cap per loop.
    pub loop_limit: u32,
    /// After top-level execution, invoke registered hook callbacks and
    /// never-called functions (simulates the CMS driving the plugin).
    pub fire_hooks: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            get_payload: None,
            post_payload: None,
            cookie_payload: None,
            server_payload: None,
            request_payload: None,
            db_payload: None,
            io_payload: None,
            step_limit: 200_000,
            loop_limit: 64,
            fire_hooks: true,
        }
    }
}

impl ExecConfig {
    /// Sets the same payload on every request-side channel (GET, POST,
    /// COOKIE, SERVER and `$_REQUEST`) — a full request-surface attack.
    pub fn with_all_request(mut self, payload: &str) -> Self {
        let p = Some(payload.to_string());
        self.get_payload = p.clone();
        self.post_payload = p.clone();
        self.cookie_payload = p.clone();
        self.server_payload = p.clone();
        self.request_payload = p;
        self
    }
}

/// What a run produced.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Everything echoed/printed (the rendered page).
    pub output: String,
    /// SQL strings sent to any database sink.
    pub queries: Vec<String>,
    /// Steps consumed.
    pub steps: u64,
    /// Unsupported constructs encountered (best-effort notes).
    pub warnings: Vec<String>,
    /// Hook callbacks invoked.
    pub hooks_fired: usize,
}

/// Control-flow signal from statement execution.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
    Exit,
}

/// One concrete scope.
#[derive(Default)]
struct Frame {
    vars: HashMap<String, Value>,
    globals_decl: HashSet<String>,
    this: Option<Object>,
    is_global: bool,
}

/// The concrete executor. Create with [`Executor::new`], run with
/// [`Executor::run_project`] or [`Executor::run_file`].
pub struct Executor<'p> {
    project: &'p PluginProject,
    parsed: HashMap<String, Ast>,
    symbols: SymbolTable,
    pub(crate) cfg: ExecConfig,
    pub(crate) output: String,
    pub(crate) queries: Vec<String>,
    pub(crate) warnings: Vec<String>,
    steps: u64,
    exhausted: bool,
    /// `exit`/`die` was executed: the current request is over.
    halted: bool,
    globals: HashMap<String, Value>,
    included: HashSet<String>,
    hooks: Vec<Value>,
    hooks_fired: usize,
    call_depth: u32,
}

impl<'p> Executor<'p> {
    /// Parses the project and prepares an executor.
    pub fn new(project: &'p PluginProject, cfg: ExecConfig) -> Self {
        let parsed: HashMap<String, Ast> = project
            .files()
            .iter()
            .map(|f| (f.path.clone(), Arc::new(php_ast::parse(&f.content))))
            .collect();
        let symbols = SymbolTable::build(parsed.iter().map(|(p, a)| (p.as_str(), a)));
        Executor {
            project,
            parsed,
            symbols,
            cfg,
            output: String::new(),
            queries: Vec::new(),
            warnings: Vec::new(),
            steps: 0,
            exhausted: false,
            halted: false,
            globals: HashMap::new(),
            included: HashSet::new(),
            hooks: Vec::new(),
            hooks_fired: 0,
            call_depth: 0,
        }
    }

    /// Runs every file of the project as a web entry point (fresh globals
    /// per entry), then fires hooks/uncalled callables, and returns the
    /// combined outcome.
    pub fn run_project(mut self) -> ExecOutcome {
        let mut paths: Vec<String> = self.parsed.keys().cloned().collect();
        paths.sort();
        for path in &paths {
            self.globals.clear();
            self.included.clear();
            self.included.insert(path.clone());
            self.halted = false; // each entry is a fresh request
            self.exec_entry(path);
            if self.steps >= self.cfg.step_limit {
                break;
            }
        }
        if self.cfg.fire_hooks {
            self.fire_hooks_and_uncalled();
        }
        self.finish()
    }

    /// Runs a single file as the entry point (plus hooks).
    pub fn run_file(mut self, path: &str) -> ExecOutcome {
        self.included.insert(path.to_string());
        self.exec_entry(path);
        if self.cfg.fire_hooks {
            self.fire_hooks_and_uncalled();
        }
        self.finish()
    }

    fn finish(self) -> ExecOutcome {
        ExecOutcome {
            output: self.output,
            queries: self.queries,
            steps: self.steps,
            warnings: self.warnings,
            hooks_fired: self.hooks_fired,
        }
    }

    fn exec_entry(&mut self, path: &str) {
        let Some(ast) = self.parsed.get(path).cloned() else {
            return;
        };
        let mut frame = Frame {
            is_global: true,
            ..Frame::default()
        };
        self.exec_stmts(&ast, ast.top, &mut frame);
    }

    /// Simulates the CMS: invoke registered hook callbacks, then every
    /// never-called function/method (with probe arguments).
    fn fire_hooks_and_uncalled(&mut self) {
        let hooks = std::mem::take(&mut self.hooks);
        for cb in hooks {
            self.hooks_fired += 1;
            self.halted = false;
            self.invoke_callable(cb, vec![]);
        }
        for r in self.symbols.uncalled() {
            self.halted = false;
            match r {
                phpsafe::symbols::FnRef::Function(name) => {
                    if let Some(info) = self.symbols.function(&name) {
                        let (decl, ast) = (info.decl, Arc::clone(&info.ast));
                        let args = self.probe_args(&decl);
                        self.call_user_function(&ast, &decl, args, None);
                    }
                }
                phpsafe::symbols::FnRef::Method(class, name) => {
                    if let Some((cinfo, decl)) = self.symbols.method(&class, &name) {
                        let (decl, ast) = (*decl, Arc::clone(&cinfo.ast));
                        let args = self.probe_args(&decl);
                        let this = Object::new(&class);
                        self.call_user_function(&ast, &decl, args, Some(this));
                    }
                }
            }
            if self.steps >= self.cfg.step_limit {
                break;
            }
        }
    }

    /// Hook/uncalled parameters: empty strings (hook args are usually
    /// trusted CMS data; the interesting inputs are superglobals/DB).
    fn probe_args(&self, decl: &FunctionDecl) -> Vec<Value> {
        vec![Value::Str(String::new()); decl.params.len()]
    }

    fn invoke_callable(&mut self, cb: Value, args: Vec<Value>) -> Value {
        match cb {
            Value::Str(name) => {
                if let Some(info) = self.symbols.function(&name) {
                    let (decl, ast) = (info.decl, Arc::clone(&info.ast));
                    return self.call_user_function(&ast, &decl, args, None);
                }
                Value::Null
            }
            Value::Closure(c) => {
                let mut frame = Frame::default();
                for (name, v) in &c.captured {
                    frame.vars.insert(name.clone(), v.clone());
                }
                for (i, p) in c.ast.params(c.params).iter().enumerate() {
                    let v = args.get(i).cloned().unwrap_or(Value::Null);
                    frame.vars.insert(p.name.to_string(), v);
                }
                match self.exec_stmts(&c.ast, c.body, &mut frame) {
                    Flow::Return(v) => v,
                    _ => Value::Null,
                }
            }
            _ => Value::Null,
        }
    }

    fn tick(&mut self) -> bool {
        self.steps += 1;
        if self.steps >= self.cfg.step_limit {
            self.exhausted = true;
        }
        !self.exhausted
    }

    pub(crate) fn warn(&mut self, msg: impl Into<String>) {
        if self.warnings.len() < 64 {
            self.warnings.push(msg.into());
        }
    }

    // ================= statements =================

    fn exec_stmts(&mut self, a: &Ast, stmts: StmtRange, f: &mut Frame) -> Flow {
        for &s in a.stmt_list(stmts) {
            match self.exec_stmt(a, s, f) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    fn exec_stmt(&mut self, a: &Ast, stmt: StmtId, f: &mut Frame) -> Flow {
        if self.halted || !self.tick() {
            return Flow::Exit;
        }
        match a.stmt(stmt) {
            Stmt::Expr(e, _) => match self.eval(a, *e, f) {
                EvalResult::Value(_) => Flow::Normal,
                EvalResult::Exit => Flow::Exit,
            },
            Stmt::Echo(es, _) => {
                for &e in a.expr_list(*es) {
                    match self.eval(a, e, f) {
                        EvalResult::Value(v) => {
                            let s = v.to_php_string();
                            self.output.push_str(&s);
                        }
                        EvalResult::Exit => return Flow::Exit,
                    }
                }
                Flow::Normal
            }
            Stmt::InlineHtml(html, _) => {
                self.output.push_str(html.as_str());
                Flow::Normal
            }
            Stmt::If {
                cond,
                then,
                elseifs,
                otherwise,
                ..
            } => {
                if self.eval_value(a, *cond, f).truthy() {
                    return self.exec_stmts(a, *then, f);
                }
                for &(c, body) in a.elseifs(*elseifs) {
                    if self.eval_value(a, c, f).truthy() {
                        return self.exec_stmts(a, body, f);
                    }
                }
                if let Some(body) = otherwise {
                    return self.exec_stmts(a, *body, f);
                }
                Flow::Normal
            }
            Stmt::While { cond, body, .. } => {
                let (cond, body) = (*cond, *body);
                let mut iters = 0;
                while self.eval_value(a, cond, f).truthy() {
                    iters += 1;
                    if iters > self.cfg.loop_limit || self.exhausted {
                        self.warn("loop cap reached");
                        break;
                    }
                    match self.exec_stmts(a, body, f) {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        other => return other,
                    }
                }
                Flow::Normal
            }
            Stmt::DoWhile { body, cond, .. } => {
                let (body, cond) = (*body, *cond);
                let mut iters = 0;
                loop {
                    iters += 1;
                    if iters > self.cfg.loop_limit || self.exhausted {
                        break;
                    }
                    match self.exec_stmts(a, body, f) {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        other => return other,
                    }
                    if !self.eval_value(a, cond, f).truthy() {
                        break;
                    }
                }
                Flow::Normal
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                let (init, cond, step, body) = (*init, *cond, *step, *body);
                for &e in a.expr_list(init) {
                    self.eval_value(a, e, f);
                }
                let mut iters = 0;
                loop {
                    let go = a
                        .expr_list(cond)
                        .to_vec()
                        .iter()
                        .all(|&c| self.eval_value(a, c, f).truthy());
                    if !go {
                        break;
                    }
                    iters += 1;
                    if iters > self.cfg.loop_limit || self.exhausted {
                        self.warn("for cap reached");
                        break;
                    }
                    match self.exec_stmts(a, body, f) {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        other => return other,
                    }
                    for &e in a.expr_list(step) {
                        self.eval_value(a, e, f);
                    }
                }
                Flow::Normal
            }
            Stmt::Foreach {
                subject,
                key,
                value,
                body,
                ..
            } => {
                let (subject, key, value, body) = (*subject, *key, *value, *body);
                let subj = self.eval_value(a, subject, f);
                let pairs: Vec<(Value, Value)> = match subj {
                    Value::Array(arr) => arr
                        .iter()
                        .map(|(k, v)| {
                            (
                                match k {
                                    ArrayKey::Int(i) => Value::Int(*i),
                                    ArrayKey::Str(s) => Value::Str(s.clone()),
                                },
                                v.clone(),
                            )
                        })
                        .collect(),
                    // Iterating a probe yields one attacker-shaped element.
                    Value::Probe(p) => vec![(Value::Int(0), Value::Probe(p))],
                    _ => vec![],
                };
                for (i, (k, v)) in pairs.into_iter().enumerate() {
                    if i as u32 >= self.cfg.loop_limit || self.exhausted {
                        break;
                    }
                    if let Some(ke) = key {
                        self.assign_to(a, ke, k, f);
                    }
                    self.assign_to(a, value, v, f);
                    match self.exec_stmts(a, body, f) {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        other => return other,
                    }
                }
                Flow::Normal
            }
            Stmt::Switch { subject, cases, .. } => {
                let (subject, cases) = (*subject, *cases);
                let v = self.eval_value(a, subject, f);
                let mut matched = false;
                for i in 0..a.cases(cases).len() {
                    let c = a.cases(cases)[i];
                    if !matched {
                        match c.value {
                            Some(val) => {
                                let cv = self.eval_value(a, val, f);
                                if v.loose_eq(&cv) {
                                    matched = true;
                                }
                            }
                            None => matched = true,
                        }
                    }
                    if matched {
                        match self.exec_stmts(a, c.body, f) {
                            Flow::Break => return Flow::Normal,
                            Flow::Normal => {} // fallthrough
                            other => return other,
                        }
                    }
                }
                Flow::Normal
            }
            Stmt::Break(_) => Flow::Break,
            Stmt::Continue(_) => Flow::Continue,
            Stmt::Return(e, _) => {
                let v = match e {
                    Some(e) => self.eval_value(a, *e, f),
                    None => Value::Null,
                };
                Flow::Return(v)
            }
            Stmt::Global(names, _) => {
                for &n in a.syms(*names) {
                    f.globals_decl.insert(n.to_string());
                }
                Flow::Normal
            }
            Stmt::StaticVars(vars, _) => {
                for &(name, default) in a.static_vars(*vars) {
                    let v = match default {
                        Some(d) => self.eval_value(a, d, f),
                        None => Value::Null,
                    };
                    f.vars.entry(name.to_string()).or_insert(v);
                }
                Flow::Normal
            }
            Stmt::Unset(es, _) => {
                for &e in a.expr_list(*es) {
                    if let Expr::Var(name, _) = a.expr(e) {
                        f.vars.remove(name.as_str());
                        if f.is_global {
                            self.globals.remove(name.as_str());
                        }
                    }
                }
                Flow::Normal
            }
            Stmt::Throw(e, _) => {
                self.eval_value(a, *e, f);
                // No exception machinery: treat as end of this body.
                Flow::Return(Value::Null)
            }
            Stmt::Try {
                body,
                catches: _,
                finally,
                ..
            } => {
                let (body, finally) = (*body, *finally);
                let flow = self.exec_stmts(a, body, f);
                if let Some(fin) = finally {
                    self.exec_stmts(a, fin, f);
                }
                flow
            }
            Stmt::Block(body, _) => self.exec_stmts(a, *body, f),
            Stmt::Function(_)
            | Stmt::Class(_)
            | Stmt::ConstDecl(..)
            | Stmt::Nop(_)
            | Stmt::Error(_) => Flow::Normal,
        }
    }

    // ================= expressions =================

    fn eval_value(&mut self, a: &Ast, e: ExprId, f: &mut Frame) -> Value {
        match self.eval(a, e, f) {
            EvalResult::Value(v) => v,
            EvalResult::Exit => Value::Null,
        }
    }

    fn eval(&mut self, a: &Ast, e: ExprId, f: &mut Frame) -> EvalResult {
        if !self.tick() {
            return EvalResult::Exit;
        }
        let v = match a.expr(e) {
            Expr::Var(name, _) => self.read_var(name.as_str(), f),
            Expr::VarVar(..) => Value::Null,
            Expr::Lit(l, _) => match l {
                Lit::Int(t) => Value::Int(parse_int(t.as_str())),
                Lit::Float(t) => Value::Float(t.as_str().parse().unwrap_or(0.0)),
                Lit::Str(s) => Value::Str(s.as_str().to_string()),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Null => Value::Null,
            },
            Expr::Interp(parts, _) => {
                let parts = *parts;
                let mut out = String::new();
                for i in 0..parts.len() {
                    match a.interp(parts)[i] {
                        InterpPart::Lit(s) => out.push_str(&unescape_dq(s.as_str())),
                        InterpPart::Expr(pe) => {
                            out.push_str(&self.eval_value(a, pe, f).to_php_string())
                        }
                    }
                }
                Value::Str(out)
            }
            Expr::ShellExec(..) => Value::Str(String::new()),
            Expr::ConstFetch(name, _) => match name.as_str() {
                "__FILE__" => Value::Str("plugin.php".into()),
                "PHP_EOL" => Value::Str("\n".into()),
                _ => Value::Str(name.to_string()),
            },
            Expr::ClassConst(..) => Value::Null,
            Expr::ArrayLit(items, _) => {
                let items = *items;
                let mut arr = PhpArray::new();
                for &(k, val) in a.items(items).to_vec().iter() {
                    let v = self.eval_value(a, val, f);
                    match k {
                        Some(ke) => {
                            let kv = self.eval_value(a, ke, f);
                            arr.set(ArrayKey::from_value(&kv), v);
                        }
                        None => arr.push(v),
                    }
                }
                Value::Array(arr)
            }
            Expr::Index(base, idx, _) => {
                let (base, idx) = (*base, *idx);
                let b = self.eval_value(a, base, f);
                match (b, idx) {
                    (Value::Array(arr), Some(i)) => {
                        let k = self.eval_value(a, i, f);
                        arr.get(&ArrayKey::from_value(&k))
                            .cloned()
                            .unwrap_or(Value::Null)
                    }
                    (Value::Probe(p), _) => Value::Probe(p),
                    (Value::Str(s), Some(i)) => {
                        let k = self.eval_value(a, i, f).to_number() as usize;
                        s.chars()
                            .nth(k)
                            .map(|c| Value::Str(c.to_string()))
                            .unwrap_or(Value::Str(String::new()))
                    }
                    _ => Value::Null,
                }
            }
            Expr::Prop(base, member, _) => {
                let (base, member) = (*base, *member);
                let b = self.eval_value(a, base, f);
                let name = match member {
                    Member::Name(n) => n.to_string(),
                    Member::Dynamic(e) => self.eval_value(a, e, f).to_php_string(),
                };
                match b {
                    Value::Object(o) => {
                        if o.class == "wpdb" && name == "prefix" {
                            Value::Str("wp_".into())
                        } else {
                            o.props.get(&name).cloned().unwrap_or(Value::Null)
                        }
                    }
                    Value::Probe(p) => Value::Probe(p),
                    _ => Value::Null,
                }
            }
            Expr::StaticProp(class, prop, _) => self
                .globals
                .get(&format!(
                    "{}::{}",
                    class.as_str().to_ascii_lowercase(),
                    prop
                ))
                .cloned()
                .unwrap_or(Value::Null),
            Expr::Assign {
                target, op, value, ..
            } => {
                let (target, op, value) = (*target, *op, *value);
                let rhs = self.eval_value(a, value, f);
                let newv = if op == AssignOp::Assign {
                    rhs
                } else {
                    let old = self.eval_value(a, target, f);
                    apply_compound(op, &old, &rhs)
                };
                self.assign_to(a, target, newv.clone(), f);
                newv
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let (op, lhs, rhs) = (*op, *lhs, *rhs);
                // Short-circuit logicals.
                match op {
                    BinOp::And => {
                        let l = self.eval_value(a, lhs, f);
                        if !l.truthy() {
                            return EvalResult::Value(Value::Bool(false));
                        }
                        let r = self.eval_value(a, rhs, f);
                        return EvalResult::Value(Value::Bool(r.truthy()));
                    }
                    BinOp::Or => {
                        let l = self.eval_value(a, lhs, f);
                        if l.truthy() {
                            return EvalResult::Value(Value::Bool(true));
                        }
                        let r = self.eval_value(a, rhs, f);
                        return EvalResult::Value(Value::Bool(r.truthy()));
                    }
                    _ => {}
                }
                let l = self.eval_value(a, lhs, f);
                let r = self.eval_value(a, rhs, f);
                apply_binop(op, &l, &r)
            }
            Expr::Unary { op, expr, .. } => {
                let (op, expr) = (*op, *expr);
                let v = self.eval_value(a, expr, f);
                match op {
                    php_ast::UnOp::Not => Value::Bool(!v.truthy()),
                    php_ast::UnOp::Neg => Value::Float(-v.to_number()),
                    php_ast::UnOp::Plus => Value::Float(v.to_number()),
                    php_ast::UnOp::BitNot => Value::Int(!(v.to_number() as i64)),
                }
            }
            Expr::IncDec {
                prefix,
                increment,
                expr,
                ..
            } => {
                let (prefix, increment, expr) = (*prefix, *increment, *expr);
                let old = self.eval_value(a, expr, f);
                let delta = if increment { 1.0 } else { -1.0 };
                let newv = Value::Int((old.to_number() + delta) as i64);
                self.assign_to(a, expr, newv.clone(), f);
                if prefix {
                    newv
                } else {
                    old
                }
            }
            Expr::Call { callee, args, .. } => return self.eval_call(a, *callee, *args, f),
            Expr::New { class, args, .. } => {
                let (class, args) = (*class, *args);
                let cname = match class {
                    Member::Name(n) => n.as_str().to_ascii_lowercase(),
                    Member::Dynamic(e) => self
                        .eval_value(a, e, f)
                        .to_php_string()
                        .to_ascii_lowercase(),
                };
                let mut obj = Object::new(&cname);
                // user constructor
                let ctor = self
                    .symbols
                    .method(&cname, "__construct")
                    .map(|(ci, d)| (*d, Arc::clone(&ci.ast)));
                if let Some((decl, decl_ast)) = ctor {
                    let argv = self.eval_args(a, args, f);
                    obj = self.call_method_on(&decl_ast, obj, &decl, argv);
                }
                Value::Object(obj)
            }
            Expr::Clone(e, _) => self.eval_value(a, *e, f),
            Expr::Ternary {
                cond,
                then,
                otherwise,
                ..
            } => {
                let (cond, then, otherwise) = (*cond, *then, *otherwise);
                let c = self.eval_value(a, cond, f);
                if c.truthy() {
                    match then {
                        Some(t) => self.eval_value(a, t, f),
                        None => c,
                    }
                } else {
                    self.eval_value(a, otherwise, f)
                }
            }
            Expr::Cast(kind, inner, _) => {
                let (kind, inner) = (*kind, *inner);
                let v = self.eval_value(a, inner, f);
                match kind {
                    php_ast::CastKind::Int => Value::Int(v.to_number() as i64),
                    php_ast::CastKind::Float => Value::Float(v.to_number()),
                    php_ast::CastKind::Bool => Value::Bool(v.truthy()),
                    php_ast::CastKind::String => Value::Str(v.to_php_string()),
                    php_ast::CastKind::Unset => Value::Null,
                    _ => v,
                }
            }
            Expr::Isset(es, _) => {
                let mut all = true;
                for &e in a.expr_list(*es) {
                    let v = self.eval_value(a, e, f);
                    if matches!(v, Value::Null) {
                        all = false;
                    }
                }
                Value::Bool(all)
            }
            Expr::Empty(e, _) => {
                let v = self.eval_value(a, *e, f);
                Value::Bool(!v.truthy())
            }
            Expr::ErrorSuppress(e, _) | Expr::Ref(e, _) => self.eval_value(a, *e, f),
            Expr::Print(e, _) => {
                let s = self.eval_value(a, *e, f).to_php_string();
                self.output.push_str(&s);
                Value::Int(1)
            }
            Expr::Exit(arg, _) => {
                if let Some(arg) = *arg {
                    let s = self.eval_value(a, arg, f).to_php_string();
                    self.output.push_str(&s);
                }
                self.halted = true;
                return EvalResult::Exit;
            }
            Expr::Include(kind, path, _) => {
                self.eval_include(a, *kind, *path, f);
                Value::Int(1)
            }
            Expr::Instanceof(e, _, _) => {
                self.eval_value(a, *e, f);
                Value::Bool(false)
            }
            Expr::ListIntrinsic(..) => Value::Null,
            Expr::Closure {
                params, uses, body, ..
            } => {
                let (params, uses, body) = (*params, *uses, *body);
                let captured = a
                    .uses(uses)
                    .to_vec()
                    .iter()
                    .map(|&(name, _)| {
                        let v = self.read_var(name.as_str(), f);
                        (name.to_string(), v)
                    })
                    .collect();
                Value::Closure(Box::new(ClosureValue {
                    ast: Arc::clone(a),
                    params,
                    captured,
                    body,
                }))
            }
            Expr::Error(_) => Value::Null,
        };
        EvalResult::Value(v)
    }

    fn read_var(&mut self, name: &str, f: &mut Frame) -> Value {
        match name {
            "$_GET" | "$HTTP_GET_VARS" => {
                return match &self.cfg.get_payload {
                    Some(p) => Value::Probe(p.clone()),
                    None => Value::Array(PhpArray::new()),
                };
            }
            "$_POST" | "$_FILES" | "$HTTP_POST_VARS" => {
                return match &self.cfg.post_payload {
                    Some(p) => Value::Probe(p.clone()),
                    None => Value::Array(PhpArray::new()),
                };
            }
            "$_COOKIE" | "$HTTP_COOKIE_VARS" => {
                return match &self.cfg.cookie_payload {
                    Some(p) => Value::Probe(p.clone()),
                    None => Value::Array(PhpArray::new()),
                };
            }
            "$_SERVER" => {
                return match &self.cfg.server_payload {
                    Some(p) => Value::Probe(p.clone()),
                    None => Value::Array(PhpArray::new()),
                };
            }
            "$_REQUEST" => {
                return match &self.cfg.request_payload {
                    Some(p) => Value::Probe(p.clone()),
                    None => Value::Array(PhpArray::new()),
                };
            }
            "$wpdb" => return Value::Object(Object::new("wpdb")),
            "$this" => {
                return f.this.clone().map(Value::Object).unwrap_or(Value::Null);
            }
            _ => {}
        }
        let use_globals = f.is_global || f.globals_decl.contains(name);
        if use_globals {
            self.globals.get(name).cloned().unwrap_or(Value::Null)
        } else {
            f.vars.get(name).cloned().unwrap_or(Value::Null)
        }
    }

    fn write_var(&mut self, name: &str, v: Value, f: &mut Frame) {
        let use_globals = f.is_global || f.globals_decl.contains(name);
        if use_globals {
            self.globals.insert(name.to_string(), v);
        } else {
            f.vars.insert(name.to_string(), v);
        }
    }

    fn assign_to(&mut self, a: &Ast, target: ExprId, v: Value, f: &mut Frame) {
        match a.expr(target) {
            Expr::Var(name, _) => self.write_var(name.as_str(), v, f),
            Expr::Index(base, idx, _) => {
                let (base, idx) = (*base, *idx);
                let mut container = self.eval_value(a, base, f);
                if !matches!(container, Value::Array(_)) {
                    container = Value::Array(PhpArray::new());
                }
                if let Value::Array(ref mut arr) = container {
                    match idx {
                        Some(i) => {
                            let k = self.eval_value(a, i, f);
                            arr.set(ArrayKey::from_value(&k), v);
                        }
                        None => arr.push(v),
                    }
                }
                self.assign_to(a, base, container, f);
            }
            Expr::Prop(base, member, _) => {
                let (base, member) = (*base, *member);
                let name = match member {
                    Member::Name(n) => n.to_string(),
                    Member::Dynamic(e) => self.eval_value(a, e, f).to_php_string(),
                };
                // `$this->x = v` mutates the live frame object.
                if a.expr(base).as_var_name() == Some("$this") {
                    if let Some(this) = f.this.as_mut() {
                        this.props.insert(name, v);
                    }
                    return;
                }
                let mut obj = self.eval_value(a, base, f);
                if let Value::Object(ref mut o) = obj {
                    o.props.insert(name, v);
                    self.assign_to(a, base, obj, f);
                }
            }
            Expr::StaticProp(class, prop, _) => {
                self.globals.insert(
                    format!("{}::{}", class.as_str().to_ascii_lowercase(), prop),
                    v,
                );
            }
            Expr::ListIntrinsic(items, _) => {
                let items = *items;
                if let Value::Array(arr) = v {
                    for (i, item) in a.opt_exprs(items).to_vec().iter().enumerate() {
                        if let Some(t) = item {
                            let elem = arr
                                .get(&ArrayKey::Int(i as i64))
                                .cloned()
                                .unwrap_or(Value::Null);
                            self.assign_to(a, *t, elem, f);
                        }
                    }
                }
            }
            Expr::Ref(inner, _) | Expr::ErrorSuppress(inner, _) => self.assign_to(a, *inner, v, f),
            _ => {}
        }
    }

    // ================= calls =================

    fn eval_args(&mut self, a: &Ast, args: ArgRange, f: &mut Frame) -> Vec<Value> {
        (0..args.len())
            .map(|i| {
                let arg = a.args(args)[i];
                self.eval_value(a, arg.value, f)
            })
            .collect()
    }

    fn eval_call(&mut self, a: &Ast, callee: Callee, args: ArgRange, f: &mut Frame) -> EvalResult {
        let argv = self.eval_args(a, args, f);
        match callee {
            Callee::Function(name) => {
                let lname = name.as_str().to_ascii_lowercase();
                if let Some(result) = self.call_builtin(&lname, &argv, a, args, f) {
                    return result;
                }
                if let Some(info) = self.symbols.function(&lname) {
                    let (decl, ast) = (info.decl, Arc::clone(&info.ast));
                    return EvalResult::Value(self.call_user_function(&ast, &decl, argv, None));
                }
                self.warn(format!("unknown function {name}()"));
                EvalResult::Value(Value::Null)
            }
            Callee::Method { base, name } => {
                let mname = match name.as_name() {
                    Some(n) => n.to_string(),
                    None => return EvalResult::Value(Value::Null),
                };
                let recv = self.eval_value(a, base, f);
                match recv {
                    Value::Object(obj) => {
                        if obj.class == "wpdb" {
                            return EvalResult::Value(self.call_wpdb(&mname, &argv));
                        }
                        let decl = self
                            .symbols
                            .method(&obj.class, &mname)
                            .map(|(ci, d)| (*d, Arc::clone(&ci.ast)));
                        match decl {
                            Some((d, decl_ast)) => {
                                let (obj2, ret) =
                                    self.call_method_capture(&decl_ast, obj, &d, argv.clone());
                                // Write the mutated object back when the
                                // receiver is a simple variable.
                                if let Some(vn) = a.expr(base).as_var_name() {
                                    if vn != "$this" && vn != "$wpdb" {
                                        let vn = vn.to_string();
                                        self.write_var(&vn, Value::Object(obj2), f);
                                    } else if vn == "$this" {
                                        f.this = Some(obj2);
                                    }
                                }
                                EvalResult::Value(ret)
                            }
                            None => {
                                self.warn(format!("unknown method {}::{mname}()", obj.class));
                                EvalResult::Value(Value::Null)
                            }
                        }
                    }
                    Value::Probe(p) => EvalResult::Value(Value::Probe(p)),
                    _ => EvalResult::Value(Value::Null),
                }
            }
            Callee::StaticMethod { class, name } => {
                let mname = match name.as_name() {
                    Some(n) => n.to_string(),
                    None => return EvalResult::Value(Value::Null),
                };
                let cname = class.as_str().to_ascii_lowercase();
                let decl = self
                    .symbols
                    .method(&cname, &mname)
                    .map(|(ci, d)| (*d, Arc::clone(&ci.ast)));
                match decl {
                    Some((d, decl_ast)) => {
                        let this = Object::new(&cname);
                        let (_, ret) = self.call_method_capture(&decl_ast, this, &d, argv);
                        EvalResult::Value(ret)
                    }
                    None => EvalResult::Value(Value::Null),
                }
            }
            Callee::Dynamic(inner) => {
                let cb = self.eval_value(a, inner, f);
                EvalResult::Value(self.invoke_callable(cb, argv))
            }
        }
    }

    /// Native-stack guard: PHP recursion deeper than this returns null.
    const MAX_CALL_DEPTH: u32 = 48;

    pub(crate) fn call_user_function(
        &mut self,
        a: &Ast,
        decl: &FunctionDecl,
        args: Vec<Value>,
        this: Option<Object>,
    ) -> Value {
        if self.call_depth >= Self::MAX_CALL_DEPTH {
            self.warn("call depth cap reached");
            return Value::Null;
        }
        self.call_depth += 1;
        let mut frame = Frame {
            this,
            ..Frame::default()
        };
        for i in 0..decl.params.len() {
            let p = a.params(decl.params)[i];
            let v = match args.get(i) {
                Some(v) => v.clone(),
                None => match p.default {
                    Some(d) => self.eval_value(a, d, &mut frame),
                    None => Value::Null,
                },
            };
            frame.vars.insert(p.name.to_string(), v);
        }
        let ret = match self.exec_stmts(a, decl.body, &mut frame) {
            Flow::Return(v) => v,
            _ => Value::Null,
        };
        self.call_depth -= 1;
        ret
    }

    /// Calls a method and returns `(possibly mutated receiver, return)`.
    fn call_method_capture(
        &mut self,
        a: &Ast,
        this: Object,
        decl: &FunctionDecl,
        args: Vec<Value>,
    ) -> (Object, Value) {
        if self.call_depth >= Self::MAX_CALL_DEPTH {
            self.warn("call depth cap reached");
            return (this, Value::Null);
        }
        self.call_depth += 1;
        let mut frame = Frame {
            this: Some(this),
            ..Frame::default()
        };
        for i in 0..decl.params.len() {
            let p = a.params(decl.params)[i];
            let v = match args.get(i) {
                Some(v) => v.clone(),
                None => match p.default {
                    Some(d) => self.eval_value(a, d, &mut frame),
                    None => Value::Null,
                },
            };
            frame.vars.insert(p.name.to_string(), v);
        }
        let ret = match self.exec_stmts(a, decl.body, &mut frame) {
            Flow::Return(v) => v,
            _ => Value::Null,
        };
        self.call_depth -= 1;
        (
            frame.this.take().unwrap_or_else(|| Object::new("stdclass")),
            ret,
        )
    }

    fn call_method_on(
        &mut self,
        a: &Ast,
        this: Object,
        decl: &FunctionDecl,
        args: Vec<Value>,
    ) -> Object {
        self.call_method_capture(a, this, decl, args).0
    }

    /// The mock WordPress database object.
    fn call_wpdb(&mut self, method: &str, args: &[Value]) -> Value {
        match method.to_ascii_lowercase().as_str() {
            "query" | "get_results" | "get_row" | "get_var" | "get_col" => {
                if let Some(sql) = args.first() {
                    self.queries.push(sql.to_php_string());
                }
                let payload = self.cfg.db_payload.clone();
                match method.to_ascii_lowercase().as_str() {
                    "get_results" | "get_col" => {
                        let mut rows = PhpArray::new();
                        if let Some(p) = payload {
                            rows.push(Value::Probe(p.clone()));
                            rows.push(Value::Probe(p));
                        }
                        Value::Array(rows)
                    }
                    "get_row" => payload.map(Value::Probe).unwrap_or(Value::Null),
                    "get_var" => payload.map(Value::Str).unwrap_or(Value::Null),
                    _ => Value::Int(1),
                }
            }
            "prepare" => {
                // Parameterization: %s is escaped, %d coerced — safe.
                let fmt = args.first().map(|v| v.to_php_string()).unwrap_or_default();
                let mut out = String::new();
                let mut ai = 1;
                let mut chars = fmt.chars().peekable();
                while let Some(c) = chars.next() {
                    if c == '%' {
                        match chars.next() {
                            Some('d') => {
                                let v = args.get(ai).map(|v| v.to_number() as i64).unwrap_or(0);
                                ai += 1;
                                out.push_str(&v.to_string());
                            }
                            Some('s') => {
                                let v = args.get(ai).map(|v| v.to_php_string()).unwrap_or_default();
                                ai += 1;
                                out.push_str(&crate::builtins::addslashes(&v));
                            }
                            Some('%') => out.push('%'),
                            Some(other) => {
                                out.push('%');
                                out.push(other);
                            }
                            None => out.push('%'),
                        }
                    } else {
                        out.push(c);
                    }
                }
                Value::Str(out)
            }
            "escape" | "_escape" => Value::Str(crate::builtins::addslashes(
                &args.first().map(|v| v.to_php_string()).unwrap_or_default(),
            )),
            _ => Value::Null,
        }
    }

    fn eval_include(&mut self, a: &Ast, kind: IncludeKind, path_expr: ExprId, f: &mut Frame) {
        let raw = self.eval_value(a, path_expr, f).to_php_string();
        let Some(file) = self.project.find_file(raw.trim_start_matches('/')) else {
            return;
        };
        let path = file.path.clone();
        let once = matches!(kind, IncludeKind::IncludeOnce | IncludeKind::RequireOnce);
        if once && self.included.contains(&path) {
            return;
        }
        self.included.insert(path.clone());
        if let Some(ast) = self.parsed.get(&path).cloned() {
            self.exec_stmts(&ast, ast.top, f);
        }
    }

    /// Registers a hook callback value (used by the builtin layer).
    pub(crate) fn register_hook(&mut self, cb: Value) {
        if self.hooks.len() < 256 {
            self.hooks.push(cb);
        }
    }
}

/// Result of expression evaluation (values or a `die()`/`exit`).
pub(crate) enum EvalResult {
    Value(Value),
    Exit,
}

fn parse_int(t: &str) -> i64 {
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).unwrap_or(0);
    }
    if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        return i64::from_str_radix(bin, 2).unwrap_or(0);
    }
    t.parse().unwrap_or(0)
}

/// Resolves double-quote escapes left verbatim by the lexer in
/// interpolated fragments.
fn unescape_dq(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('$') => out.push('$'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn apply_compound(op: AssignOp, old: &Value, rhs: &Value) -> Value {
    match op {
        AssignOp::ConcatAssign => Value::Str(old.to_php_string() + &rhs.to_php_string()),
        AssignOp::AddAssign => num(old.to_number() + rhs.to_number()),
        AssignOp::SubAssign => num(old.to_number() - rhs.to_number()),
        AssignOp::MulAssign => num(old.to_number() * rhs.to_number()),
        AssignOp::DivAssign => {
            let d = rhs.to_number();
            if d == 0.0 {
                Value::Bool(false)
            } else {
                num(old.to_number() / d)
            }
        }
        AssignOp::ModAssign => {
            let d = rhs.to_number() as i64;
            if d == 0 {
                Value::Bool(false)
            } else {
                Value::Int(old.to_number() as i64 % d)
            }
        }
        _ => rhs.clone(),
    }
}

fn num(f: f64) -> Value {
    if f.fract() == 0.0 && f.abs() < i64::MAX as f64 {
        Value::Int(f as i64)
    } else {
        Value::Float(f)
    }
}

fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Value {
    match op {
        BinOp::Concat => Value::Str(l.to_php_string() + &r.to_php_string()),
        BinOp::Add => num(l.to_number() + r.to_number()),
        BinOp::Sub => num(l.to_number() - r.to_number()),
        BinOp::Mul => num(l.to_number() * r.to_number()),
        BinOp::Div => {
            let d = r.to_number();
            if d == 0.0 {
                Value::Bool(false)
            } else {
                num(l.to_number() / d)
            }
        }
        BinOp::Mod => {
            let d = r.to_number() as i64;
            if d == 0 {
                Value::Bool(false)
            } else {
                Value::Int(l.to_number() as i64 % d)
            }
        }
        BinOp::Pow => num(l.to_number().powf(r.to_number())),
        BinOp::Eq => Value::Bool(l.loose_eq(r)),
        BinOp::NotEq => Value::Bool(!l.loose_eq(r)),
        BinOp::Identical => Value::Bool(l.strict_eq(r)),
        BinOp::NotIdentical => Value::Bool(!l.strict_eq(r)),
        BinOp::Lt => Value::Bool(l.to_number() < r.to_number()),
        BinOp::Gt => Value::Bool(l.to_number() > r.to_number()),
        BinOp::Le => Value::Bool(l.to_number() <= r.to_number()),
        BinOp::Ge => Value::Bool(l.to_number() >= r.to_number()),
        BinOp::And => Value::Bool(l.truthy() && r.truthy()),
        BinOp::Or => Value::Bool(l.truthy() || r.truthy()),
        BinOp::Xor => Value::Bool(l.truthy() != r.truthy()),
        BinOp::BitAnd => Value::Int((l.to_number() as i64) & (r.to_number() as i64)),
        BinOp::BitOr => Value::Int((l.to_number() as i64) | (r.to_number() as i64)),
        BinOp::BitXor => Value::Int((l.to_number() as i64) ^ (r.to_number() as i64)),
        BinOp::Shl => Value::Int((l.to_number() as i64) << ((r.to_number() as i64) & 63)),
        BinOp::Shr => Value::Int((l.to_number() as i64) >> ((r.to_number() as i64) & 63)),
    }
}

impl Executor<'_> {
    /// The built-in function layer. Returns `None` when `name` is not a
    /// modeled built-in (the caller then tries user functions).
    #[allow(clippy::too_many_lines)]
    fn call_builtin(
        &mut self,
        name: &str,
        argv: &[Value],
        a: &Ast,
        args: ArgRange,
        f: &mut Frame,
    ) -> Option<EvalResult> {
        use crate::builtins as b;
        let s0 = || argv.first().map(|v| v.to_php_string()).unwrap_or_default();
        let v = match name {
            // --- escaping / sanitizing ---
            "htmlentities" | "htmlspecialchars" | "esc_html" | "esc_attr" | "esc_textarea"
            | "esc_js" | "check_plain" | "tag_escape" => Value::Str(b::escape_html(&s0())),
            "wp_kses" | "wp_kses_post" | "wp_kses_data" | "filter_xss" => {
                Value::Str(b::escape_html(&s0()))
            }
            "esc_url" | "esc_url_raw" => Value::Str(b::escape_html(&s0())),
            "sanitize_text_field" | "sanitize_title" | "sanitize_key" => {
                Value::Str(b::strip_tags(&s0()).trim().to_string())
            }
            "strip_tags" => Value::Str(b::strip_tags(&s0())),
            "htmlspecialchars_decode" | "html_entity_decode" | "wp_specialchars_decode" => {
                Value::Str(b::unescape_html(&s0()))
            }
            "addslashes"
            | "mysql_real_escape_string"
            | "mysql_escape_string"
            | "mysqli_real_escape_string"
            | "esc_sql"
            | "db_escape_string" => {
                // mysqli takes (link, string)
                let s = if name == "mysqli_real_escape_string" && argv.len() > 1 {
                    argv[1].to_php_string()
                } else {
                    s0()
                };
                Value::Str(b::addslashes(&s))
            }
            "stripslashes" | "wp_unslash" => Value::Str(b::stripslashes(&s0())),
            "intval" | "absint" => {
                let n = argv.first().map(|v| v.to_number()).unwrap_or(0.0) as i64;
                Value::Int(if name == "absint" { n.abs() } else { n })
            }
            "floatval" | "doubleval" => {
                Value::Float(argv.first().map(|v| v.to_number()).unwrap_or(0.0))
            }
            "boolval" => Value::Bool(argv.first().map(|v| v.truthy()).unwrap_or(false)),
            "is_numeric" => Value::Bool(b::is_numeric(&s0())),
            "urlencode" | "rawurlencode" => Value::Str(b::urlencode(&s0())),
            "urldecode" | "rawurldecode" => Value::Str(b::urldecode(&s0())),
            "md5" | "sha1" | "crc32" | "hash" => Value::Str(b::fake_hash(&s0())),
            "preg_replace" => {
                let pattern = s0();
                let subject = argv.get(2).map(|v| v.to_php_string()).unwrap_or_default();
                let replacement = argv.get(1).map(|v| v.to_php_string()).unwrap_or_default();
                let (out, applied) = b::preg_replace_approx(&pattern, &replacement, &subject);
                if !applied {
                    self.warn("preg_replace pattern not modeled; identity");
                }
                Value::Str(out)
            }
            "preg_quote" => Value::Str(s0()),
            "preg_match" | "preg_match_all" => {
                // No concrete regex engine: no match, no captures.
                Value::Int(0)
            }
            // --- strings ---
            "strlen" => Value::Int(s0().len() as i64),
            "strtolower" => Value::Str(s0().to_lowercase()),
            "strtoupper" => Value::Str(s0().to_uppercase()),
            "trim" => Value::Str(s0().trim().to_string()),
            "ltrim" => Value::Str(s0().trim_start().to_string()),
            "rtrim" | "chop" => Value::Str(s0().trim_end().to_string()),
            "nl2br" => Value::Str(s0().replace('\n', "<br />\n")),
            "substr" => {
                let s = s0();
                let start = argv.get(1).map(|v| v.to_number() as i64).unwrap_or(0);
                let chars: Vec<char> = s.chars().collect();
                let len = chars.len() as i64;
                let from = if start < 0 {
                    (len + start).max(0)
                } else {
                    start.min(len)
                };
                let take = argv
                    .get(2)
                    .map(|v| v.to_number() as i64)
                    .unwrap_or(len - from)
                    .max(0);
                Value::Str(
                    chars[from as usize..((from + take).min(len)) as usize]
                        .iter()
                        .collect(),
                )
            }
            "str_replace" => {
                let search = s0();
                let replace = argv.get(1).map(|v| v.to_php_string()).unwrap_or_default();
                let subject = argv.get(2).map(|v| v.to_php_string()).unwrap_or_default();
                Value::Str(subject.replace(&search, &replace))
            }
            "sprintf" => {
                let fmt = s0();
                let rest: Vec<String> = argv[1..].iter().map(|v| v.to_php_string()).collect();
                Value::Str(b::sprintf(&fmt, &rest))
            }
            "printf" => {
                let fmt = s0();
                let rest: Vec<String> = argv[1..].iter().map(|v| v.to_php_string()).collect();
                let s = b::sprintf(&fmt, &rest);
                self.output.push_str(&s);
                Value::Int(s.len() as i64)
            }
            "print_r" => {
                let s = s0();
                self.output.push_str(&s);
                Value::Bool(true)
            }
            "implode" | "join" => {
                let (glue, arr) = if let Some(Value::Array(arr)) = argv.first() {
                    (String::new(), Some(arr.clone()))
                } else {
                    let g = s0();
                    let arr = match argv.get(1) {
                        Some(Value::Array(arr)) => Some(arr.clone()),
                        _ => None,
                    };
                    (g, arr)
                };
                match arr {
                    Some(arr) => Value::Str(
                        arr.iter()
                            .map(|(_, v)| v.to_php_string())
                            .collect::<Vec<_>>()
                            .join(&glue),
                    ),
                    None => Value::Str(String::new()),
                }
            }
            "explode" => {
                let delim = s0();
                let subj = argv.get(1).map(|v| v.to_php_string()).unwrap_or_default();
                let mut arr = PhpArray::new();
                if delim.is_empty() {
                    arr.push(Value::Str(subj));
                } else {
                    for part in subj.split(&delim) {
                        arr.push(Value::Str(part.to_string()));
                    }
                }
                Value::Array(arr)
            }
            // --- arrays ---
            "count" | "sizeof" => match argv.first() {
                Some(Value::Array(arr)) => Value::Int(arr.len() as i64),
                Some(Value::Null) => Value::Int(0),
                _ => Value::Int(1),
            },
            "in_array" => {
                let needle = argv.first().cloned().unwrap_or(Value::Null);
                match argv.get(1) {
                    Some(Value::Array(arr)) => {
                        Value::Bool(arr.iter().any(|(_, v)| v.loose_eq(&needle)))
                    }
                    _ => Value::Bool(false),
                }
            }
            "array_keys" => match argv.first() {
                Some(Value::Array(arr)) => {
                    let mut out = PhpArray::new();
                    for (k, _) in arr.iter() {
                        out.push(match k {
                            ArrayKey::Int(i) => Value::Int(*i),
                            ArrayKey::Str(s) => Value::Str(s.clone()),
                        });
                    }
                    Value::Array(out)
                }
                _ => Value::Array(PhpArray::new()),
            },
            "array_values" => match argv.first() {
                Some(Value::Array(arr)) => {
                    let mut out = PhpArray::new();
                    for (_, v) in arr.iter() {
                        out.push(v.clone());
                    }
                    Value::Array(out)
                }
                _ => Value::Array(PhpArray::new()),
            },
            "array_merge" => {
                let mut out = PhpArray::new();
                for v in argv {
                    if let Value::Array(arr) = v {
                        for (k, val) in arr.iter() {
                            match k {
                                ArrayKey::Int(_) => out.push(val.clone()),
                                ArrayKey::Str(s) => out.set(ArrayKey::Str(s.clone()), val.clone()),
                            }
                        }
                    }
                }
                Value::Array(out)
            }
            "extract" => {
                if let Some(Value::Array(arr)) = argv.first() {
                    for (k, v) in arr.clone().iter() {
                        if let ArrayKey::Str(s) = k {
                            self.write_var(&format!("${s}"), v.clone(), f);
                        }
                    }
                }
                Value::Int(0)
            }
            // --- environment / io ---
            "getenv" | "file_get_contents" | "fgets" | "fread" | "fgetc" => {
                match &self.cfg.io_payload {
                    Some(p) => Value::Str(p.clone()),
                    None => Value::Str(String::new()),
                }
            }
            "fopen" => Value::Resource("file"),
            "fclose" | "fwrite" | "fputs" => Value::Bool(true),
            "file_exists" | "is_file" | "is_dir" => Value::Bool(false),
            "date" => Value::Str("2014-06-01".into()),
            "time" => Value::Int(1_400_000_000),
            "rand" | "mt_rand" => Value::Int(4),
            "uniqid" => Value::Str("u1400000000".into()),
            "dirname" => {
                let s = s0();
                Value::Str(match s.rfind('/') {
                    Some(i) => s[..i].to_string(),
                    None => ".".to_string(),
                })
            }
            "plugin_dir_path" | "plugin_dir_url" | "trailingslashit" => Value::Str(String::new()),
            "function_exists" => Value::Bool(self.symbols.function(&s0()).is_some()),
            "class_exists" => Value::Bool(self.symbols.class(&s0()).is_some()),
            "defined" => Value::Bool(false),
            "define" | "error_reporting" | "ini_set" | "header" | "setcookie" => Value::Bool(true),
            // --- legacy mysql / database ---
            "mysql_query" | "mysql_db_query" | "mysqli_query" | "pg_query" | "db_query" => {
                // query may be arg 0 or arg 1 (with a link first)
                let q = argv
                    .iter()
                    .map(|v| v.to_php_string())
                    .find(|s| {
                        s.to_ascii_lowercase().contains("select")
                            || s.to_ascii_lowercase().contains("insert")
                            || s.to_ascii_lowercase().contains("update")
                            || s.to_ascii_lowercase().contains("delete")
                    })
                    .unwrap_or_else(s0);
                self.queries.push(q);
                Value::Resource("mysql_result")
            }
            "mysql_fetch_assoc" | "mysql_fetch_array" | "mysql_fetch_row"
            | "mysql_fetch_object" | "mysqli_fetch_assoc" | "mysqli_fetch_array"
            | "db_fetch_object" | "db_fetch_array" => match &self.cfg.db_payload {
                Some(p) => Value::Probe(p.clone()),
                None => Value::Bool(false),
            },
            "mysql_result" | "mysql_num_rows" => Value::Int(1),
            // --- WordPress runtime ---
            "get_option" | "get_post_meta" | "get_user_meta" | "get_transient" | "variable_get" => {
                match &self.cfg.db_payload {
                    Some(p) => Value::Str(p.clone()),
                    None => Value::Str(String::new()),
                }
            }
            "update_option" | "add_option" | "set_transient" | "delete_option" => Value::Bool(true),
            "add_action"
            | "add_filter"
            | "add_shortcode"
            | "register_activation_hook"
            | "register_deactivation_hook" => {
                if let Some(cb) = argv.get(1) {
                    self.register_hook(cb.clone());
                }
                Value::Bool(true)
            }
            "do_action" => Value::Null,
            "apply_filters" => argv.get(1).cloned().unwrap_or(Value::Null),
            "wp_die" => {
                self.output.push_str(&s0());
                self.halted = true;
                return Some(EvalResult::Exit);
            }
            "__" | "_e" | "esc_html__" | "esc_html_e" | "esc_attr__" | "esc_attr_e" => {
                // Translation passthrough; the *_e variants echo.
                let s = if name.ends_with("_e") {
                    let t = if name.starts_with("esc") {
                        b::escape_html(&s0())
                    } else {
                        s0()
                    };
                    self.output.push_str(&t);
                    t
                } else if name.starts_with("esc") {
                    b::escape_html(&s0())
                } else {
                    s0()
                };
                Value::Str(s)
            }
            "parse_str" => {
                // parse_str($query, $out): fill $out with parsed pairs.
                let q = s0();
                let mut arr = PhpArray::new();
                for pair in q.split('&') {
                    let mut it = pair.splitn(2, '=');
                    let k = it.next().unwrap_or("");
                    let v = it.next().unwrap_or("");
                    if !k.is_empty() {
                        arr.set(ArrayKey::Str(b::urldecode(k)), Value::Str(b::urldecode(v)));
                    }
                }
                if let Some(arg) = a.args(args).get(1).copied() {
                    self.assign_to(a, arg.value, Value::Array(arr), f);
                }
                Value::Null
            }
            "isset" | "unset" | "empty" => unreachable!("language constructs"),
            _ => return None,
        };
        Some(EvalResult::Value(v))
    }
}
