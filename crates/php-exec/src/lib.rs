//! # php-exec
//!
//! A bounded concrete PHP executor with a mock WordPress environment, plus
//! an **exploit-confirmation harness**: run a plugin with attack payloads
//! injected through a chosen input vector (request, database, file/env)
//! and check whether the attack actually manifests in the rendered page
//! (XSS) or in an executed SQL string (SQLi).
//!
//! This automates the dynamic verification the phpSAFE paper performed by
//! hand — "any subscriber can inject malicious code into the database.
//! When a victim visits the page … executing the attack (which we
//! confirmed in an experiment)" (§III.E).
//!
//! The executor is deliberately *not* a full PHP runtime: unsupported
//! constructs degrade to `null` with a recorded warning, every loop and
//! the whole run are step-bounded, and nondeterministic built-ins return
//! fixed values, so confirmation runs are total and reproducible.
//!
//! ```
//! use phpsafe::{PluginProject, SourceFile};
//! use php_exec::{ExecConfig, Executor};
//!
//! let p = PluginProject::new("demo")
//!     .with_file(SourceFile::new("d.php", "<?php echo 'Hello ' . $_GET['n'];"));
//! let cfg = ExecConfig::default().with_all_request("WORLD");
//! let out = Executor::new(&p, cfg).run_project();
//! assert_eq!(out.output, "Hello WORLD");
//! ```

#![warn(missing_docs)]

pub mod builtins;
mod exec;
pub mod value;
mod verify;

pub use exec::{ExecConfig, ExecOutcome, Executor};
pub use verify::{attack_surface, confirm_vulnerability, Confirmation};
