//! Concrete PHP values for the executor: the dynamic-typing semantics
//! (string/number juggling, truthiness, loose comparison) needed to run
//! plugin code for real.

use std::collections::BTreeMap;
use std::fmt;

/// A concrete PHP value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// Booleans.
    Bool(bool),
    /// Integers.
    Int(i64),
    /// Floats.
    Float(f64),
    /// Strings.
    Str(String),
    /// Ordered associative array (PHP arrays are ordered maps).
    Array(PhpArray),
    /// An object: class name (lowercase) + properties.
    Object(Object),
    /// A *probe*: a value that answers any index/property access with the
    /// attacker payload. Used by the exploit harness to stand in for
    /// superglobals and database rows without enumerating keys.
    Probe(String),
    /// A closure value (parameters, captured environment, body).
    Closure(Box<ClosureValue>),
    /// An opaque resource (database links, file handles).
    Resource(&'static str),
}

/// A captured anonymous function.
///
/// `params`/`body` are arena ranges that resolve against `ast` — the parsed
/// file the closure literal appears in, kept alive by the value itself.
#[derive(Debug, Clone)]
pub struct ClosureValue {
    /// The parsed file the handles index into.
    pub ast: std::sync::Arc<php_ast::ParsedFile>,
    /// Parameters as declared.
    pub params: php_ast::ParamRange,
    /// Captured variables (by value).
    pub captured: Vec<(String, Value)>,
    /// Body statements.
    pub body: php_ast::StmtRange,
}

impl PartialEq for ClosureValue {
    fn eq(&self, other: &Self) -> bool {
        // Handles are only comparable within one arena: same file (by
        // pointer), same ranges, same captures.
        std::sync::Arc::ptr_eq(&self.ast, &other.ast)
            && self.params == other.params
            && self.body == other.body
            && self.captured == other.captured
    }
}

/// An ordered PHP array.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhpArray {
    entries: Vec<(ArrayKey, Value)>,
    next_index: i64,
}

/// PHP array keys are ints or strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArrayKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
}

impl fmt::Display for ArrayKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayKey::Int(i) => write!(f, "{i}"),
            ArrayKey::Str(s) => f.write_str(s),
        }
    }
}

impl ArrayKey {
    /// Converts a value to an array key per PHP rules (numeric strings
    /// become ints).
    pub fn from_value(v: &Value) -> ArrayKey {
        match v {
            Value::Int(i) => ArrayKey::Int(*i),
            Value::Bool(b) => ArrayKey::Int(*b as i64),
            Value::Float(fl) => ArrayKey::Int(*fl as i64),
            Value::Str(s) => match s.parse::<i64>() {
                Ok(i) if i.to_string() == *s => ArrayKey::Int(i),
                _ => ArrayKey::Str(s.clone()),
            },
            Value::Null => ArrayKey::Str(String::new()),
            other => ArrayKey::Str(other.to_php_string()),
        }
    }
}

impl PhpArray {
    /// Empty array.
    pub fn new() -> Self {
        PhpArray::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Gets by key.
    pub fn get(&self, key: &ArrayKey) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Sets by key (replacing in place to keep order).
    pub fn set(&mut self, key: ArrayKey, value: Value) {
        if let ArrayKey::Int(i) = key {
            self.next_index = self.next_index.max(i + 1);
        }
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Appends with the next integer key (`$a[] = v`).
    pub fn push(&mut self, value: Value) {
        let key = ArrayKey::Int(self.next_index);
        self.next_index += 1;
        self.entries.push((key, value));
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(ArrayKey, Value)> {
        self.entries.iter()
    }

    /// Builds from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ArrayKey, Value)>) -> Self {
        let mut a = PhpArray::new();
        for (k, v) in pairs {
            a.set(k, v);
        }
        a
    }
}

/// A concrete object.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// Lowercase class name (`wpdb`, `stdclass`, `__dbrow`, user classes).
    pub class: String,
    /// Property values (names without `$`).
    pub props: BTreeMap<String, Value>,
}

impl Object {
    /// New empty object of `class`.
    pub fn new(class: &str) -> Object {
        Object {
            class: class.to_ascii_lowercase(),
            props: BTreeMap::new(),
        }
    }
}

impl Value {
    /// PHP string conversion (as `echo` performs it).
    pub fn to_php_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(true) => "1".into(),
            Value::Bool(false) => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Array(_) => "Array".into(),
            Value::Object(_) => "Object".into(),
            Value::Probe(payload) => payload.clone(),
            Value::Closure(_) => "Closure".into(),
            Value::Resource(name) => format!("Resource({name})"),
        }
    }

    /// PHP truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty() && s != "0",
            Value::Array(a) => !a.is_empty(),
            Value::Object(_) | Value::Closure(_) | Value::Resource(_) => true,
            Value::Probe(_) => true,
        }
    }

    /// Numeric coercion (PHP's leading-number parse).
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Null => 0.0,
            Value::Bool(b) => *b as i64 as f64,
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Str(s) | Value::Probe(s) => parse_leading_number(s),
            Value::Array(a) if a.is_empty() => 0.0,
            _ => 1.0,
        }
    }

    /// PHP loose equality (`==`) — simplified to the cases plugin code
    /// uses: numeric comparison when either side is numeric-ish, string
    /// comparison otherwise.
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), b) => *a == b.truthy(),
            (a, Bool(b)) => a.truthy() == *b,
            (Int(_) | Float(_), _) | (_, Int(_) | Float(_)) => {
                (self.to_number() - other.to_number()).abs() < f64::EPSILON
            }
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            _ => self.to_php_string() == other.to_php_string(),
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        self == other
    }
}

/// Parses the leading numeric prefix of a string, PHP-style.
pub fn parse_leading_number(s: &str) -> f64 {
    let t = s.trim_start();
    let mut end = 0;
    let bytes = t.as_bytes();
    let mut seen_digit = false;
    let mut seen_dot = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'+' | b'-' if i == 0 => end = i + 1,
            b'0'..=b'9' => {
                seen_digit = true;
                end = i + 1;
            }
            b'.' if !seen_dot => {
                seen_dot = true;
                end = i + 1;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stringify_matches_php() {
        assert_eq!(Value::Null.to_php_string(), "");
        assert_eq!(Value::Bool(true).to_php_string(), "1");
        assert_eq!(Value::Bool(false).to_php_string(), "");
        assert_eq!(Value::Int(-3).to_php_string(), "-3");
        assert_eq!(Value::Float(2.0).to_php_string(), "2");
        assert_eq!(Value::Str("x".into()).to_php_string(), "x");
        assert_eq!(Value::Array(PhpArray::new()).to_php_string(), "Array");
    }

    #[test]
    fn truthiness_matches_php() {
        assert!(!Value::Str("0".into()).truthy());
        assert!(!Value::Str("".into()).truthy());
        assert!(Value::Str("00".into()).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Array(PhpArray::new()).truthy());
    }

    #[test]
    fn leading_number_parse() {
        assert_eq!(parse_leading_number("42abc"), 42.0);
        assert_eq!(parse_leading_number("  3.5x"), 3.5);
        assert_eq!(parse_leading_number("-7"), -7.0);
        assert_eq!(parse_leading_number("abc"), 0.0);
        assert_eq!(parse_leading_number(""), 0.0);
    }

    #[test]
    fn loose_equality_juggles() {
        assert!(Value::Str("1".into()).loose_eq(&Value::Int(1)));
        assert!(Value::Int(0).loose_eq(&Value::Str("a".into()))); // PHP5!
        assert!(Value::Bool(true).loose_eq(&Value::Str("yes".into())));
        assert!(!Value::Str("a".into()).loose_eq(&Value::Str("b".into())));
    }

    #[test]
    fn array_ordering_and_next_index() {
        let mut a = PhpArray::new();
        a.push(Value::Int(10));
        a.set(ArrayKey::Int(5), Value::Int(50));
        a.push(Value::Int(60)); // takes index 6
        let keys: Vec<String> = a.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["0", "5", "6"]);
    }

    #[test]
    fn numeric_string_keys_collapse() {
        assert_eq!(
            ArrayKey::from_value(&Value::Str("7".into())),
            ArrayKey::Int(7)
        );
        assert_eq!(
            ArrayKey::from_value(&Value::Str("07".into())),
            ArrayKey::Str("07".into())
        );
    }

    #[test]
    fn probe_answers_everything() {
        let p = Value::Probe("PAYLOAD".into());
        assert_eq!(p.to_php_string(), "PAYLOAD");
        assert!(p.truthy());
    }
}
