//! Exploit confirmation: execute the plugin with attack payloads injected
//! and check whether the attack actually manifests — the automation of the
//! paper's manual verification step ("each vulnerability confirmed by the
//! expert was further analyzed…", "which we confirmed in an experiment").

use crate::exec::{ExecConfig, ExecOutcome, Executor};
use phpsafe::{PluginProject, Vulnerability};
use taint_config::{SourceKind, VulnClass};

/// Unambiguous probe strings: must survive into output/SQL *unescaped* to
/// count as a successful attack.
const XSS_PROBE: &str = "<script>phpsafe_probe(7)</script>";
const SQLI_PROBE: &str = "1' OR 'phpsafe_probe'='phpsafe_probe";
const CMDI_PROBE: &str = "; phpsafe_probe 7";
const PATH_PROBE: &str = "../../phpsafe_probe";
const URL_PROBE: &str = "http://phpsafe-probe.invalid/7";

/// The result of attempting to confirm a finding dynamically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Confirmation {
    /// The XSS payload reached the rendered page unescaped.
    ConfirmedXss {
        /// A window of the rendered output around the payload.
        evidence: String,
    },
    /// The SQLi payload reached an executed query with its quote intact.
    ConfirmedSqli {
        /// The offending query.
        query: String,
    },
    /// Execution completed but the payload never manifested.
    NotConfirmed,
}

impl Confirmation {
    /// Did the exploit work?
    pub fn is_confirmed(&self) -> bool {
        !matches!(self, Confirmation::NotConfirmed)
    }
}

/// Builds the attack configuration for a vulnerability's input vector.
fn attack_config(class: VulnClass, vector: SourceKind) -> ExecConfig {
    let payload = match class {
        VulnClass::Xss => XSS_PROBE,
        VulnClass::Sqli => SQLI_PROBE,
        VulnClass::CmdInjection => CMDI_PROBE,
        VulnClass::PathTraversal => PATH_PROBE,
        VulnClass::Ssrf => URL_PROBE,
    }
    .to_string();
    let mut cfg = ExecConfig::default();
    let p = Some(payload);
    match vector {
        // An attacker sending a GET parameter reaches both $_GET and
        // $_REQUEST, and so on per channel.
        SourceKind::Get => {
            cfg.get_payload = p.clone();
            cfg.request_payload = p;
        }
        SourceKind::Post => {
            cfg.post_payload = p.clone();
            cfg.request_payload = p;
        }
        SourceKind::Cookie => {
            cfg.cookie_payload = p.clone();
            cfg.request_payload = p;
        }
        SourceKind::Request => {
            cfg.get_payload = p.clone();
            cfg.post_payload = p.clone();
            cfg.cookie_payload = p.clone();
            cfg.request_payload = p;
        }
        SourceKind::Server => cfg.server_payload = p,
        SourceKind::Database => cfg.db_payload = p,
        SourceKind::File | SourceKind::Function | SourceKind::Array => cfg.io_payload = p,
    }
    cfg
}

/// Evidence window around the first occurrence of `needle` in `hay`.
fn window(hay: &str, needle: &str) -> String {
    match hay.find(needle) {
        Some(pos) => {
            let start = hay[..pos]
                .char_indices()
                .rev()
                .nth(40)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let end = (pos + needle.len() + 40).min(hay.len());
            // Clamp to char boundaries.
            let mut s = start;
            while !hay.is_char_boundary(s) {
                s -= 1;
            }
            let mut e = end;
            while !hay.is_char_boundary(e) {
                e += 1;
            }
            hay[s..e].to_string()
        }
        None => String::new(),
    }
}

/// Checks an execution outcome for a successful attack of `class`.
fn judge(class: VulnClass, outcome: &ExecOutcome) -> Confirmation {
    match class {
        VulnClass::Xss => {
            if outcome.output.contains(XSS_PROBE) {
                Confirmation::ConfirmedXss {
                    evidence: window(&outcome.output, XSS_PROBE),
                }
            } else {
                Confirmation::NotConfirmed
            }
        }
        VulnClass::Sqli => {
            for q in &outcome.queries {
                // The quote must arrive *unescaped* to break the query.
                if q.contains(SQLI_PROBE) {
                    return Confirmation::ConfirmedSqli { query: q.clone() };
                }
            }
            Confirmation::NotConfirmed
        }
        // The sandbox executor observes rendered output and executed SQL
        // only — shell, filesystem and network side effects are not
        // modeled, so these classes cannot manifest dynamically here.
        VulnClass::CmdInjection | VulnClass::PathTraversal | VulnClass::Ssrf => {
            Confirmation::NotConfirmed
        }
    }
}

/// Attempts to confirm one reported vulnerability by running the plugin
/// with the matching payload injected through the reported input vector.
///
/// # Examples
///
/// ```
/// use phpsafe::{PhpSafe, PluginProject, SourceFile};
/// use php_exec::confirm_vulnerability;
///
/// let p = PluginProject::new("d")
///     .with_file(SourceFile::new("d.php", "<?php echo $_GET['x'];"));
/// let outcome = PhpSafe::new().analyze(&p);
/// let confirmation = confirm_vulnerability(&p, &outcome.vulns[0]);
/// assert!(confirmation.is_confirmed());
/// ```
pub fn confirm_vulnerability(project: &PluginProject, vuln: &Vulnerability) -> Confirmation {
    let cfg = attack_config(vuln.class, vuln.source_kind);
    let outcome = Executor::new(project, cfg).run_project();
    judge(vuln.class, &outcome)
}

/// Attack the whole plugin with a payload on every vector at once and
/// report whether each class is exploitable at all (a plugin-level smoke
/// attack, independent of any analyzer report).
pub fn attack_surface(project: &PluginProject) -> (Confirmation, Confirmation) {
    let mut xss_cfg = ExecConfig::default().with_all_request(XSS_PROBE);
    xss_cfg.db_payload = Some(XSS_PROBE.into());
    xss_cfg.io_payload = Some(XSS_PROBE.into());
    let xss_out = Executor::new(project, xss_cfg).run_project();

    let mut sqli_cfg = ExecConfig::default().with_all_request(SQLI_PROBE);
    sqli_cfg.io_payload = Some(SQLI_PROBE.into());
    let sqli_out = Executor::new(project, sqli_cfg).run_project();

    (
        judge(VulnClass::Xss, &xss_out),
        judge(VulnClass::Sqli, &sqli_out),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use phpsafe::SourceFile;

    fn plugin(src: &str) -> PluginProject {
        PluginProject::new("t").with_file(SourceFile::new("t.php", src))
    }

    fn vuln(class: VulnClass, vector: SourceKind) -> Vulnerability {
        Vulnerability {
            class,
            file: "t.php".into(),
            line: 1,
            sink: "echo".into(),
            var: "$x".into(),
            source_kind: vector,
            labels: taint_config::TaintLabels::single(vector),
            via_oop: false,
            numeric_hint: false,
            trace: vec![],
        }
    }

    #[test]
    fn reflected_xss_confirms() {
        let p = plugin("<?php echo '<div>' . $_GET['q'] . '</div>';");
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::Get));
        assert!(c.is_confirmed(), "{c:?}");
        if let Confirmation::ConfirmedXss { evidence } = c {
            assert!(evidence.contains("<script>phpsafe_probe"));
        }
    }

    #[test]
    fn escaped_output_does_not_confirm() {
        let p = plugin("<?php echo htmlentities($_GET['q']);");
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::Get));
        assert!(!c.is_confirmed());
    }

    #[test]
    fn intval_does_not_confirm() {
        let p = plugin("<?php echo intval($_GET['q']);");
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::Get));
        assert!(!c.is_confirmed());
    }

    #[test]
    fn sqli_through_wpdb_confirms() {
        let p = plugin(
            "<?php $id = $_GET['id'];
             $wpdb->query(\"DELETE FROM {$wpdb->prefix}t WHERE name = '$id'\");",
        );
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Sqli, SourceKind::Get));
        assert!(c.is_confirmed(), "{c:?}");
        if let Confirmation::ConfirmedSqli { query } = c {
            assert!(query.starts_with("DELETE FROM wp_t"));
            assert!(query.contains("1' OR "));
        }
    }

    #[test]
    fn prepared_query_does_not_confirm() {
        let p = plugin(
            "<?php $wpdb->query($wpdb->prepare(
                \"SELECT * FROM t WHERE name = '%s'\", $_GET['n']));",
        );
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Sqli, SourceKind::Get));
        assert!(!c.is_confirmed(), "escaped quote cannot break out");
    }

    #[test]
    fn stored_xss_via_db_confirms() {
        let p = plugin(
            "<?php $rows = $wpdb->get_results('SELECT * FROM t');
             foreach ($rows as $r) { echo '<li>' . $r->name . '</li>'; }",
        );
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::Database));
        assert!(c.is_confirmed(), "{c:?}");
    }

    #[test]
    fn hook_handler_confirms_via_cms_simulation() {
        let p = plugin(
            "<?php add_action('init', 'boom');
             function boom() { echo $_REQUEST['x']; }",
        );
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::Request));
        assert!(c.is_confirmed(), "hooks must fire");
    }

    #[test]
    fn file_payload_confirms_file_vector() {
        let p = plugin("<?php $l = fgets($fp, 128); echo $l;");
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::File));
        assert!(c.is_confirmed());
    }

    #[test]
    fn guarded_false_positive_does_not_confirm() {
        // The FpGuardedEcho bait: static analysis reports it, dynamic
        // execution proves the guard works.
        let p = plugin(
            "<?php $pg = $_GET['pg'];
             if (!is_numeric($pg)) { die('bad'); }
             echo 'Page: ' . $pg;",
        );
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::Get));
        assert!(!c.is_confirmed(), "die() stops the tainted path");
    }

    #[test]
    fn custom_cleaner_false_positive_does_not_confirm() {
        let p = plugin("<?php $t = preg_replace('/[^a-z0-9_]/i', '', $_GET['t']); echo $t;");
        let c = confirm_vulnerability(&p, &vuln(VulnClass::Xss, SourceKind::Get));
        assert!(!c.is_confirmed(), "whitelist cleaner strips the payload");
    }

    #[test]
    fn attack_surface_smoke() {
        let p = plugin(
            "<?php echo $_GET['a'];
             $x = $_POST['b'];
             mysql_query(\"SELECT * FROM t WHERE x = '$x'\");",
        );
        let (xss, sqli) = attack_surface(&p);
        assert!(xss.is_confirmed());
        assert!(sqli.is_confirmed());
    }
}
