//! Property tests for the concrete executor: it is total (bounded) and
//! deterministic on arbitrary inputs, including the whole synthetic corpus.

use php_exec::{ExecConfig, Executor};
use phpsafe::{PluginProject, SourceFile};
use proptest::prelude::*;

fn php_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("<?php ".to_string()),
        Just("$x = $_GET['a']; echo $x; ".to_string()),
        Just("for ($i = 0; $i < 100000; $i++) { $n = $i * 2; } ".to_string()),
        Just("while (true) { $a = 1; } ".to_string()), // loop cap
        Just("function f($v) { return f($v); } f(1); ".to_string()), // recursion
        Just("$r = $wpdb->get_results('SELECT 1'); foreach ($r as $x) echo $x->p; ".to_string()),
        Just("echo htmlentities($_POST['b']); ".to_string()),
        Just("$arr = array('k' => 1); echo $arr['k']; ".to_string()),
        Just("add_action('x', function () { echo 'hook'; }); ".to_string()),
        Just("if ($_GET['m'] == 'x') { echo 'yes'; } else { echo 'no'; } ".to_string()),
        Just("include 'other.php'; ".to_string()),
        Just("garbage ((( ".to_string()),
        "[ -~]{0,16}".prop_map(|s| s),
    ];
    prop::collection::vec(fragment, 0..12).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The executor terminates on arbitrary construct soup (step bound)
    /// and never panics.
    #[test]
    fn executor_is_total(src in php_soup()) {
        let p = PluginProject::new("soup")
            .with_file(SourceFile::new("soup.php", src))
            .with_file(SourceFile::new("other.php", "<?php echo 'inc';"));
        let cfg = ExecConfig {
            step_limit: 20_000,
            ..ExecConfig::default()
        };
        let out = Executor::new(&p, cfg).run_project();
        prop_assert!(out.steps <= 20_000 + 16, "budget respected: {}", out.steps);
    }

    /// Execution is deterministic (fixed clock/rand built-ins).
    #[test]
    fn executor_is_deterministic(src in php_soup()) {
        let p = PluginProject::new("det").with_file(SourceFile::new("d.php", src));
        let cfg = ExecConfig::default().with_all_request("P");
        let a = Executor::new(&p, cfg.clone()).run_project();
        let b = Executor::new(&p, cfg).run_project();
        prop_assert_eq!(a.output, b.output);
        prop_assert_eq!(a.queries, b.queries);
    }

    /// Escaped output never contains a raw probe even though the probe
    /// flowed through.
    #[test]
    fn escaping_is_airtight(key in "[a-z]{1,6}") {
        let src = format!(
            "<?php echo htmlentities($_GET['{key}']); echo esc_html($_POST['{key}']);"
        );
        let p = PluginProject::new("esc").with_file(SourceFile::new("e.php", src));
        let cfg = ExecConfig::default().with_all_request("<script>x</script>");
        let out = Executor::new(&p, cfg).run_project();
        prop_assert!(!out.output.contains("<script>"), "{}", out.output);
        prop_assert!(out.output.contains("&lt;script&gt;"));
    }
}

/// The executor survives every plugin of the full synthetic corpus under
/// attack payloads (both versions) within its budget.
#[test]
fn executor_survives_the_corpus() {
    use phpsafe_corpus::{Corpus, Version};
    let corpus = Corpus::generate();
    for plugin in corpus.plugins() {
        for v in Version::ALL {
            let cfg = ExecConfig::default().with_all_request("<p>probe</p>");
            let out = Executor::new(plugin.project(v), cfg).run_project();
            assert!(
                out.steps <= ExecConfig::default().step_limit + 16,
                "{} {v:?}",
                plugin.name
            );
        }
    }
}

/// Output is reproducible across runs on a corpus plugin.
#[test]
fn corpus_execution_is_deterministic() {
    use phpsafe_corpus::{Corpus, Version};
    let corpus = Corpus::generate();
    let plugin = &corpus.plugins()[0];
    let cfg = ExecConfig {
        db_payload: Some("INJ".into()),
        ..ExecConfig::default().with_all_request("REQ")
    };
    let a = Executor::new(plugin.project(Version::V2014), cfg.clone()).run_project();
    let b = Executor::new(plugin.project(Version::V2014), cfg).run_project();
    assert_eq!(a.output, b.output);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.hooks_fired, b.hooks_fired);
}
