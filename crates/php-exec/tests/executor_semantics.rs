//! Construct-level semantics tests for the concrete executor: each test
//! pins the PHP behaviour one construct must exhibit at runtime.

use php_exec::{ExecConfig, Executor};
use phpsafe::{PluginProject, SourceFile};

fn run(src: &str) -> String {
    let p = PluginProject::new("t").with_file(SourceFile::new("t.php", src));
    Executor::new(&p, ExecConfig::default())
        .run_project()
        .output
}

fn run_with(src: &str, cfg: ExecConfig) -> php_exec::ExecOutcome {
    let p = PluginProject::new("t").with_file(SourceFile::new("t.php", src));
    Executor::new(&p, cfg).run_project()
}

#[test]
fn echo_and_string_ops() {
    assert_eq!(run("<?php echo 'a' . 'b' . (1 + 1);"), "ab2");
    // PHP 5 gives `.` and `+` equal precedence (left-assoc):
    // (('a'.'b').1)+1 => numeric coercion of 'ab1' => 0, plus 1.
    assert_eq!(run("<?php echo 'a' . 'b' . 1 + 1;"), "1");
}

#[test]
fn arithmetic_and_juggling() {
    assert_eq!(run("<?php echo 2 + 3 * 4;"), "14");
    assert_eq!(run("<?php echo '5' + '10';"), "15");
    assert_eq!(run("<?php echo 10 / 4;"), "2.5");
    assert_eq!(run("<?php echo 7 % 3;"), "1");
}

#[test]
fn interpolation_renders_values() {
    assert_eq!(
        run("<?php $n = 'World'; echo \"Hello $n!\";"),
        "Hello World!"
    );
    assert_eq!(
        run("<?php $a = array('k' => 'v'); echo \"x={$a['k']}\";"),
        "x=v"
    );
}

#[test]
fn html_passthrough() {
    assert_eq!(
        run("<h1>Title</h1><?php echo 'mid'; ?><p>end</p>"),
        "<h1>Title</h1>mid<p>end</p>"
    );
}

#[test]
fn if_else_chains() {
    assert_eq!(
        run(
            "<?php $x = 5; if ($x > 10) echo 'big'; elseif ($x > 3) echo 'mid'; else echo 'small';"
        ),
        "mid"
    );
}

#[test]
fn loops_with_break_continue() {
    assert_eq!(
        run("<?php for ($i = 0; $i < 10; $i++) { if ($i == 2) continue; if ($i == 5) break; echo $i; }"),
        "0134"
    );
    assert_eq!(run("<?php $i = 3; while ($i--) { echo $i; }"), "210");
}

#[test]
fn foreach_iterates_in_order() {
    assert_eq!(
        run("<?php foreach (array('a' => 1, 'b' => 2) as $k => $v) { echo \"$k$v\"; }"),
        "a1b2"
    );
}

#[test]
fn switch_with_fallthrough() {
    assert_eq!(
        run("<?php switch (2) { case 1: echo 'one'; case 2: echo 'two'; case 3: echo 'three'; break; default: echo 'other'; }"),
        "twothree"
    );
}

#[test]
fn functions_and_defaults() {
    assert_eq!(
        run("<?php function greet($n = 'anon') { return 'hi ' . $n; } echo greet(); echo greet('bob');"),
        "hi anonhi bob"
    );
}

#[test]
fn recursion_with_real_base_case() {
    assert_eq!(
        run("<?php function fact($n) { if ($n <= 1) return 1; return $n * fact($n - 1); } echo fact(5);"),
        "120"
    );
}

#[test]
fn objects_hold_state_across_method_calls() {
    assert_eq!(
        run("<?php
            class Counter {
                private $n;
                public function __construct($start) { $this->n = $start; }
                public function bump() { $this->n = $this->n + 1; }
                public function get() { return $this->n; }
            }
            $c = new Counter(10);
            $c->bump();
            $c->bump();
            echo $c->get();"),
        "12"
    );
}

#[test]
fn global_keyword_shares_state() {
    assert_eq!(
        run("<?php $total = 5;
            function add() { global $total; $total = $total + 3; }
            add();
            echo $total;"),
        "8"
    );
}

#[test]
fn include_executes_in_scope() {
    let p = PluginProject::new("t")
        .with_file(SourceFile::new(
            "main.php",
            "<?php $name = 'inc'; include 'part.php';",
        ))
        .with_file(SourceFile::new("part.php", "<?php echo 'from ' . $name;"));
    let out = Executor::new(&p, ExecConfig::default()).run_file("main.php");
    assert_eq!(out.output, "from inc");
}

#[test]
fn closures_capture_by_value() {
    assert_eq!(
        run("<?php $x = 'captured';
            $f = function () use ($x) { echo $x; };
            $x = 'changed';
            $f();"),
        "captured"
    );
}

#[test]
fn hooks_fire_after_top_level() {
    assert_eq!(
        run("<?php add_action('init', function () { echo 'hook!'; }); echo 'main;';"),
        "main;hook!"
    );
}

#[test]
fn superglobal_payload_injection() {
    let cfg = ExecConfig::default().with_all_request("INJ");
    let out = run_with("<?php echo 'v=' . $_GET['anything'];", cfg);
    assert_eq!(out.output, "v=INJ");
}

#[test]
fn wpdb_queries_are_recorded() {
    let out = run_with(
        "<?php $wpdb->query(\"DELETE FROM {$wpdb->prefix}x WHERE id = 3\");",
        ExecConfig::default(),
    );
    assert_eq!(
        out.queries,
        vec!["DELETE FROM wp_x WHERE id = 3".to_string()]
    );
}

#[test]
fn wpdb_prepare_escapes() {
    let cfg = ExecConfig::default().with_all_request("a' OR '1'='1");
    let out = run_with(
        "<?php $wpdb->query($wpdb->prepare(\"SELECT '%s'\", $_GET['x']));",
        cfg,
    );
    assert_eq!(
        out.queries,
        vec![r#"SELECT 'a\' OR \'1\'=\'1'"#.to_string()]
    );
}

#[test]
fn db_rows_carry_payload() {
    let cfg = ExecConfig {
        db_payload: Some("ROW".into()),
        ..ExecConfig::default()
    };
    let out = run_with(
        "<?php foreach ($wpdb->get_results('SELECT 1') as $r) { echo $r->any . ';'; }",
        cfg,
    );
    assert_eq!(out.output, "ROW;ROW;");
}

#[test]
fn die_halts_entry() {
    assert_eq!(run("<?php echo 'a'; die('X'); echo 'b';"), "aX");
}

#[test]
fn exit_inside_function_halts() {
    assert_eq!(
        run("<?php function f() { echo '1'; exit(); echo '2'; } f(); echo '3';"),
        "1"
    );
}

#[test]
fn sprintf_printf() {
    assert_eq!(run("<?php printf('%s is %d%%', 'cpu', 93);"), "cpu is 93%");
    assert_eq!(run("<?php echo sprintf('[%s]', 'x');"), "[x]");
}

#[test]
fn implode_explode_round_trip() {
    assert_eq!(
        run("<?php echo implode('-', explode(',', 'a,b,c'));"),
        "a-b-c"
    );
}

#[test]
fn isset_and_empty() {
    assert_eq!(
        run("<?php $a = 1; echo isset($a) ? 'set' : 'unset'; echo empty($b) ? ' empty' : ' full';"),
        "set empty"
    );
}

#[test]
fn static_properties_persist() {
    assert_eq!(
        run("<?php class Reg { public static $v; }
            Reg::$v = 'stored';
            echo Reg::$v;"),
        "stored"
    );
}

#[test]
fn inherited_methods_execute() {
    assert_eq!(
        run(
            "<?php class Base { public function hi() { return 'base-hi'; } }
            class Kid extends Base {}
            $k = new Kid();
            echo $k->hi();"
        ),
        "base-hi"
    );
}

#[test]
fn unknown_function_degrades_with_warning() {
    let out = run_with(
        "<?php echo mystery_fn('x'); echo 'after';",
        ExecConfig::default(),
    );
    assert_eq!(out.output, "after");
    assert!(out.warnings.iter().any(|w| w.contains("mystery_fn")));
}
