//! A character cursor over source text with line tracking and lookahead.

use std::sync::Arc;

/// Cursor used by the lexer: a byte offset into shared source text.
///
/// The source sits behind an [`Arc`] so the speculative cursor clones the
/// lexer takes (cast probing, interpolation scanning) copy two integers
/// instead of the whole file, and [`Cursor::slice_from`] lets token text
/// be materialized as one exact-capacity copy of the consumed region
/// rather than a char-by-char rebuild.
#[derive(Debug, Clone)]
pub(crate) struct Cursor {
    src: Arc<str>,
    pos: usize,
    line: u32,
}

impl Cursor {
    pub(crate) fn new(src: &str) -> Self {
        Cursor {
            src: Arc::from(src),
            pos: 0,
            line: 1,
        }
    }

    /// Current 1-based line number.
    pub(crate) fn line(&self) -> u32 {
        self.line
    }

    /// Current byte offset (a valid UTF-8 boundary).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// The source text between `start` (an earlier [`Cursor::pos`]) and the
    /// current position.
    pub(crate) fn slice_from(&self, start: usize) -> &str {
        &self.src[start..self.pos]
    }

    pub(crate) fn is_eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// Peeks `n` characters ahead (0 = current).
    pub(crate) fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    pub(crate) fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Consumes and returns the current character, tracking newlines.
    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes the current char if it equals `c`.
    pub(crate) fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// True if the upcoming characters match `s` (ASCII case-insensitive
    /// when `ci` is set). `s` must be ASCII, which every caller's pattern is.
    pub(crate) fn starts_with(&self, s: &str, ci: bool) -> bool {
        let rest = self.src.as_bytes();
        let (pat, n) = (s.as_bytes(), s.len());
        if self.pos + n > rest.len() {
            return false;
        }
        let have = &rest[self.pos..self.pos + n];
        if ci {
            have.eq_ignore_ascii_case(pat)
        } else {
            have == pat
        }
    }

    /// Consumes `n` characters, maintaining line counts.
    pub(crate) fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }

    /// Consumes characters while `pred` holds, returning the consumed text.
    pub(crate) fn eat_while(&mut self, pred: impl FnMut(char) -> bool) -> String {
        let start = self.pos;
        self.skip_while(pred);
        self.src[start..self.pos].to_string()
    }

    /// Consumes characters while `pred` holds without materializing text;
    /// pair with [`Cursor::slice_from`] to read the region. ASCII bytes
    /// take a decode-free fast path — this runs per character of every
    /// identifier, number, and whitespace run.
    pub(crate) fn skip_while(&mut self, mut pred: impl FnMut(char) -> bool) {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b < 0x80 {
                if !pred(b as char) {
                    break;
                }
                self.pos += 1;
                if b == b'\n' {
                    self.line += 1;
                }
            } else {
                let c = self.src[self.pos..].chars().next().expect("utf8 boundary");
                if !pred(c) {
                    break;
                }
                self.pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_lines_across_bumps() {
        let mut c = Cursor::new("a\nb\nc");
        assert_eq!(c.line(), 1);
        c.bump(); // a
        c.bump(); // \n
        assert_eq!(c.line(), 2);
        c.advance(2); // b, \n
        assert_eq!(c.line(), 3);
        assert_eq!(c.bump(), Some('c'));
        assert!(c.is_eof());
    }

    #[test]
    fn starts_with_case_modes() {
        let c = Cursor::new("<?PHP echo");
        assert!(c.starts_with("<?php", true));
        assert!(!c.starts_with("<?php", false));
        assert!(c.starts_with("<?PHP", false));
    }

    #[test]
    fn eat_while_stops_at_predicate_boundary() {
        let mut c = Cursor::new("abc123");
        let word = c.eat_while(|ch| ch.is_ascii_alphabetic());
        assert_eq!(word, "abc");
        assert_eq!(c.peek(), Some('1'));
    }

    #[test]
    fn handles_multibyte_chars() {
        let mut c = Cursor::new("éé$x");
        c.advance(2);
        assert_eq!(c.peek(), Some('$'));
    }

    #[test]
    fn slice_from_reproduces_consumed_text() {
        let mut c = Cursor::new("héllo world");
        let start = c.pos();
        c.skip_while(|ch| !ch.is_whitespace());
        assert_eq!(c.slice_from(start), "héllo");
    }
}
