//! A character cursor over source text with line tracking and lookahead.

/// Char-level cursor used by the lexer.
///
/// Operates on a `Vec<char>` snapshot of the input so multi-byte UTF-8
/// characters index uniformly; plugin sources are small enough that the
/// up-front copy is irrelevant next to analysis cost.
#[derive(Debug, Clone)]
pub(crate) struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    pub(crate) fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    /// Current 1-based line number.
    pub(crate) fn line(&self) -> u32 {
        self.line
    }

    pub(crate) fn is_eof(&self) -> bool {
        self.pos >= self.chars.len()
    }

    /// Peeks `n` characters ahead (0 = current).
    pub(crate) fn peek_at(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    pub(crate) fn peek(&self) -> Option<char> {
        self.peek_at(0)
    }

    /// Consumes and returns the current character, tracking newlines.
    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes the current char if it equals `c`.
    pub(crate) fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// True if the upcoming characters match `s` (ASCII case-insensitive
    /// when `ci` is set).
    pub(crate) fn starts_with(&self, s: &str, ci: bool) -> bool {
        for (i, want) in s.chars().enumerate() {
            match self.peek_at(i) {
                Some(have) => {
                    let matches = if ci {
                        have.eq_ignore_ascii_case(&want)
                    } else {
                        have == want
                    };
                    if !matches {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }

    /// Consumes `n` characters, maintaining line counts.
    pub(crate) fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }

    /// Consumes characters while `pred` holds, returning the consumed text.
    pub(crate) fn eat_while(&mut self, mut pred: impl FnMut(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_lines_across_bumps() {
        let mut c = Cursor::new("a\nb\nc");
        assert_eq!(c.line(), 1);
        c.bump(); // a
        c.bump(); // \n
        assert_eq!(c.line(), 2);
        c.advance(2); // b, \n
        assert_eq!(c.line(), 3);
        assert_eq!(c.bump(), Some('c'));
        assert!(c.is_eof());
    }

    #[test]
    fn starts_with_case_modes() {
        let c = Cursor::new("<?PHP echo");
        assert!(c.starts_with("<?php", true));
        assert!(!c.starts_with("<?php", false));
        assert!(c.starts_with("<?PHP", false));
    }

    #[test]
    fn eat_while_stops_at_predicate_boundary() {
        let mut c = Cursor::new("abc123");
        let word = c.eat_while(|ch| ch.is_ascii_alphabetic());
        assert_eq!(word, "abc");
        assert_eq!(c.peek(), Some('1'));
    }

    #[test]
    fn handles_multibyte_chars() {
        let mut c = Cursor::new("éé$x");
        c.advance(2);
        assert_eq!(c.peek(), Some('$'));
    }
}
