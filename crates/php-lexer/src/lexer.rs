//! The PHP lexer: a faithful, total re-implementation of the behaviour the
//! paper relies on from PHP's `token_get_all`.
//!
//! The lexer is *total*: any byte sequence produces a token stream, never an
//! error (unclassifiable bytes become [`TokenKind::Unknown`]). Concatenating
//! the `text` of every token reproduces the input exactly; the
//! `phpsafe` analyzer and both baselines depend on this when mapping findings
//! back to source lines.

use crate::cursor::Cursor;
use crate::token::{keyword_kind, Token, TokenKind};

/// Lexes a complete PHP source file (starting in HTML mode, as PHP does).
///
/// # Examples
///
/// ```
/// use php_lexer::{tokenize, TokenKind};
/// let toks = tokenize("<?php echo $_GET['id']; ?>");
/// assert!(toks.iter().any(|t| t.kind == TokenKind::Variable && t.text == "$_GET"));
/// ```
pub fn tokenize(src: &str) -> Vec<Token> {
    let _span = phpsafe_obs::span!("stage.lex", src);
    let toks = Lexer::new(src).run();
    phpsafe_obs::count("lex.files", 1);
    phpsafe_obs::count("lex.tokens", toks.len() as u64);
    toks
}

/// Lexes source and drops trivia (whitespace/comments), the view parsers use.
pub fn tokenize_significant(src: &str) -> Vec<Token> {
    let mut toks = tokenize(src);
    toks.retain(|t| !t.kind.is_trivia());
    toks
}

/// What terminates an interpolated scanning region.
#[derive(Debug, Clone, PartialEq, Eq)]
enum InterpEnd {
    DoubleQuote,
    Backtick,
    Heredoc(String),
}

/// Streaming PHP lexer. Construct with [`Lexer::new`], consume with
/// [`Lexer::run`].
#[derive(Debug)]
pub struct Lexer {
    cur: Cursor,
    out: Vec<Token>,
}

impl Lexer {
    /// Creates a lexer over `src`.
    pub fn new(src: &str) -> Self {
        Lexer {
            cur: Cursor::new(src),
            // PHP source averages well under one token per 4 bytes; one
            // up-front guess avoids the doubling-regrowth copies.
            out: Vec::with_capacity(src.len() / 4),
        }
    }

    /// Runs the lexer to completion, returning the token stream.
    pub fn run(mut self) -> Vec<Token> {
        while !self.cur.is_eof() {
            self.lex_html_until_open_tag();
            // Inside PHP until a close tag flips us back to HTML mode.
            while !self.cur.is_eof() {
                if self.cur.starts_with("?>", false) {
                    let line = self.cur.line();
                    self.cur.advance(2);
                    self.push(TokenKind::CloseTag, "?>", line);
                    break;
                }
                self.lex_php_token();
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, text: impl Into<String>, line: u32) {
        self.out.push(Token::new(kind, text, line));
    }

    /// HTML mode: consume inline HTML until an open tag (or EOF).
    fn lex_html_until_open_tag(&mut self) {
        let line = self.cur.line();
        let start = self.cur.pos();
        loop {
            if self.cur.is_eof() {
                break;
            }
            if self.cur.starts_with("<?", false) {
                if self.cur.pos() > start {
                    let html = self.cur.slice_from(start).to_string();
                    self.push(TokenKind::InlineHtml, html, line);
                }
                let tag_line = self.cur.line();
                if self.cur.starts_with("<?php", true) {
                    self.cur.advance(5);
                    self.push(TokenKind::OpenTag, "<?php", tag_line);
                } else if self.cur.starts_with("<?=", false) {
                    self.cur.advance(3);
                    self.push(TokenKind::OpenTagWithEcho, "<?=", tag_line);
                } else {
                    self.cur.advance(2);
                    self.push(TokenKind::OpenTag, "<?", tag_line);
                }
                return;
            }
            self.cur.bump();
        }
        if self.cur.pos() > start {
            let html = self.cur.slice_from(start).to_string();
            self.push(TokenKind::InlineHtml, html, line);
        }
    }

    /// Lexes exactly one PHP-mode token (never called at `?>` or EOF).
    fn lex_php_token(&mut self) {
        let line = self.cur.line();
        let c = match self.cur.peek() {
            Some(c) => c,
            None => return,
        };

        // Whitespace
        if c.is_whitespace() {
            let ws = self.cur.eat_while(|ch| ch.is_whitespace());
            self.push(TokenKind::Whitespace, ws, line);
            return;
        }

        // Comments
        if self.cur.starts_with("/**", false) && self.cur.peek_at(3) != Some('/') {
            let text = self.block_comment();
            self.push(TokenKind::DocComment, text, line);
            return;
        }
        if self.cur.starts_with("/*", false) {
            let text = self.block_comment();
            self.push(TokenKind::Comment, text, line);
            return;
        }
        if self.cur.starts_with("//", false) || c == '#' {
            let text = self.line_comment();
            self.push(TokenKind::Comment, text, line);
            return;
        }

        // Variables
        if c == '$' {
            if matches!(self.cur.peek_at(1), Some(n) if is_ident_start(n)) {
                let start = self.cur.pos();
                self.cur.bump();
                self.cur.skip_while(is_ident_continue);
                let name = self.cur.slice_from(start).to_string();
                self.push(TokenKind::Variable, name, line);
            } else {
                self.cur.bump();
                self.push(TokenKind::Dollar, "$", line);
            }
            return;
        }

        // Numbers
        if c.is_ascii_digit()
            || (c == '.' && matches!(self.cur.peek_at(1), Some(d) if d.is_ascii_digit()))
        {
            self.lex_number(line);
            return;
        }

        // Identifiers / keywords / magic constants
        if is_ident_start(c) {
            let word = self.cur.eat_while(is_ident_continue);
            let kind = keyword_kind(&word).unwrap_or(TokenKind::Identifier);
            self.push(kind, word, line);
            return;
        }

        // Strings
        if c == '\'' {
            self.lex_single_quoted(line);
            return;
        }
        if c == '"' {
            self.lex_double_quoted(line);
            return;
        }
        if c == '`' {
            self.cur.bump();
            self.push(TokenKind::Backtick, "`", line);
            self.lex_interpolated(InterpEnd::Backtick);
            return;
        }
        if self.cur.starts_with("<<<", false) {
            self.lex_heredoc(line);
            return;
        }

        // Casts: "(" ws* keyword ws* ")"
        if c == '(' {
            if let Some((kind, text)) = self.try_cast() {
                self.push(kind, text, line);
                return;
            }
        }

        // Operators & punctuation
        self.lex_operator(line);
    }

    fn block_comment(&mut self) -> String {
        let start = self.cur.pos();
        self.cur.advance(2); // "/*"
        loop {
            if self.cur.is_eof() {
                break;
            }
            if self.cur.starts_with("*/", false) {
                self.cur.advance(2);
                break;
            }
            self.cur.bump();
        }
        self.cur.slice_from(start).to_string()
    }

    fn line_comment(&mut self) -> String {
        let start = self.cur.pos();
        loop {
            match self.cur.peek() {
                None => break,
                Some('\n') => break,
                // A line comment ends at a close tag, which must be re-lexed.
                _ if self.cur.starts_with("?>", false) => break,
                Some(_) => {
                    self.cur.bump();
                }
            }
        }
        self.cur.slice_from(start).to_string()
    }

    fn lex_number(&mut self, line: u32) {
        let start = self.cur.pos();
        if self.cur.starts_with("0x", true) || self.cur.starts_with("0X", false) {
            self.cur.advance(2);
            self.cur.skip_while(|c| c.is_ascii_hexdigit() || c == '_');
            let text = self.cur.slice_from(start).to_string();
            self.push(TokenKind::LNumber, text, line);
            return;
        }
        if self.cur.starts_with("0b", true) {
            self.cur.advance(2);
            self.cur.skip_while(|c| c == '0' || c == '1' || c == '_');
            let text = self.cur.slice_from(start).to_string();
            self.push(TokenKind::LNumber, text, line);
            return;
        }
        let mut is_float = false;
        self.cur.skip_while(|c| c.is_ascii_digit());
        if self.cur.peek() == Some('.')
            && matches!(self.cur.peek_at(1), Some(d) if d.is_ascii_digit())
        {
            is_float = true;
            self.cur.bump();
            self.cur.skip_while(|c| c.is_ascii_digit());
        } else if self.cur.peek() == Some('.') && self.cur.pos() == start {
            // ".5" style float
            is_float = true;
            self.cur.bump();
            self.cur.skip_while(|c| c.is_ascii_digit());
        }
        if matches!(self.cur.peek(), Some('e') | Some('E')) {
            let mut k = 1;
            if matches!(self.cur.peek_at(1), Some('+') | Some('-')) {
                k = 2;
            }
            if matches!(self.cur.peek_at(k), Some(d) if d.is_ascii_digit()) {
                is_float = true;
                self.cur.advance(k);
                self.cur.skip_while(|c| c.is_ascii_digit());
            }
        }
        let kind = if is_float {
            TokenKind::DNumber
        } else {
            TokenKind::LNumber
        };
        let text = self.cur.slice_from(start).to_string();
        self.push(kind, text, line);
    }

    fn lex_single_quoted(&mut self, line: u32) {
        let start = self.cur.pos();
        self.cur.bump(); // opening quote
        loop {
            match self.cur.peek() {
                None => break,
                Some('\\') => {
                    self.cur.bump();
                    self.cur.bump();
                }
                Some('\'') => {
                    self.cur.bump();
                    break;
                }
                Some(_) => {
                    self.cur.bump();
                }
            }
        }
        let text = self.cur.slice_from(start).to_string();
        self.push(TokenKind::ConstantEncapsedString, text, line);
    }

    /// Double-quoted strings: emitted as a single
    /// `T_CONSTANT_ENCAPSED_STRING` when free of interpolation, otherwise as
    /// `"` + interpolation parts + `"`, exactly as PHP does.
    fn lex_double_quoted(&mut self, line: u32) {
        // Scan ahead (on a cheap cursor clone — the source is shared) to
        // decide whether the string interpolates, so simple strings stay
        // one token.
        let start = self.cur.pos();
        let mut probe = self.cur.clone();
        probe.bump(); // opening quote
        let mut interpolates = false;
        let mut closed = false;
        loop {
            match probe.peek() {
                None => break,
                Some('\\') => {
                    probe.bump();
                    probe.bump();
                }
                Some('"') => {
                    probe.bump();
                    closed = true;
                    break;
                }
                Some('$') => {
                    if matches!(probe.peek_at(1), Some(n) if is_ident_start(n) || n == '{') {
                        interpolates = true;
                    }
                    probe.bump();
                }
                Some('{') => {
                    if probe.peek_at(1) == Some('$') {
                        interpolates = true;
                    }
                    probe.bump();
                }
                Some(_) => {
                    probe.bump();
                }
            }
        }
        if !interpolates {
            // Commit the probe's progress.
            self.cur = probe;
            let raw = self.cur.slice_from(start).to_string();
            let kind = if closed || !raw.is_empty() {
                TokenKind::ConstantEncapsedString
            } else {
                TokenKind::Unknown
            };
            self.push(kind, raw, line);
            return;
        }
        self.cur.bump(); // opening quote
        self.push(TokenKind::DoubleQuote, "\"", line);
        self.lex_interpolated(InterpEnd::DoubleQuote);
    }

    fn lex_heredoc(&mut self, line: u32) {
        let start = self.cur.pos();
        self.cur.advance(3); // "<<<"
        self.cur.skip_while(|c| c == ' ' || c == '\t');
        let mut nowdoc = false;
        let mut quoted = false;
        if self.cur.eat('\'') {
            nowdoc = true;
        } else if self.cur.eat('"') {
            quoted = true;
        }
        let label = self.cur.eat_while(is_ident_continue);
        if nowdoc {
            self.cur.eat('\'');
        }
        if quoted {
            self.cur.eat('"');
        }
        if self.cur.peek() == Some('\r') {
            self.cur.bump();
        }
        if self.cur.peek() == Some('\n') {
            self.cur.bump();
        }
        let text = self.cur.slice_from(start).to_string();
        self.push(TokenKind::StartHeredoc, text, line);
        if nowdoc {
            // Nowdoc: raw until terminator, no interpolation.
            let body_start = self.cur.pos();
            let body_line = self.cur.line();
            loop {
                if self.cur.is_eof() {
                    break;
                }
                if self.at_heredoc_end(&label) {
                    break;
                }
                self.cur.bump();
            }
            if self.cur.pos() > body_start {
                let body = self.cur.slice_from(body_start).to_string();
                self.push(TokenKind::EncapsedAndWhitespace, body, body_line);
            }
            let end_line = self.cur.line();
            self.cur.advance(label.chars().count());
            self.push(TokenKind::EndHeredoc, label.clone(), end_line);
        } else {
            self.lex_interpolated(InterpEnd::Heredoc(label));
        }
    }

    /// True when the cursor sits at the start of a line containing exactly
    /// the heredoc terminator label (optionally followed by `;` or `,`).
    fn at_heredoc_end(&self, label: &str) -> bool {
        // Must be at start of line: previous char was '\n' — we approximate
        // by only calling this after consuming a '\n' or at the body start.
        if !self.cur.starts_with(label, false) {
            return false;
        }
        let after = self.cur.peek_at(label.chars().count());
        matches!(
            after,
            None | Some(';') | Some(',') | Some('\n') | Some('\r') | Some(')')
        )
    }

    /// Scans interpolated content (double-quoted string, backtick, heredoc),
    /// emitting `T_ENCAPSED_AND_WHITESPACE` runs, simple `$var` accesses and
    /// `{$ ... }` complex expressions, until the terminator.
    fn lex_interpolated(&mut self, end: InterpEnd) {
        let mut run_start = self.cur.pos();
        let mut run_line = self.cur.line();
        let mut at_line_start = matches!(end, InterpEnd::Heredoc(_));
        loop {
            if self.cur.is_eof() {
                break;
            }
            // Terminator?
            match &end {
                InterpEnd::DoubleQuote => {
                    if self.cur.peek() == Some('"') {
                        self.flush_encapsed_run(run_start, run_line);
                        let line = self.cur.line();
                        self.cur.bump();
                        self.push(TokenKind::DoubleQuote, "\"", line);
                        return;
                    }
                }
                InterpEnd::Backtick => {
                    if self.cur.peek() == Some('`') {
                        self.flush_encapsed_run(run_start, run_line);
                        let line = self.cur.line();
                        self.cur.bump();
                        self.push(TokenKind::Backtick, "`", line);
                        return;
                    }
                }
                InterpEnd::Heredoc(label) => {
                    if at_line_start && self.at_heredoc_end(label) {
                        self.flush_encapsed_run(run_start, run_line);
                        let line = self.cur.line();
                        self.cur.advance(label.chars().count());
                        self.push(TokenKind::EndHeredoc, label.clone(), line);
                        return;
                    }
                }
            }
            at_line_start = false;
            match self.cur.peek() {
                Some('\\') if end != InterpEnd::Heredoc(String::new()) => {
                    // Escapes stay verbatim inside the encapsed run.
                    self.cur.bump();
                    if let Some(e) = self.cur.bump() {
                        if e == '\n' {
                            at_line_start = true;
                        }
                    }
                }
                Some('$') if matches!(self.cur.peek_at(1), Some(n) if is_ident_start(n)) => {
                    self.flush_encapsed_run(run_start, run_line);
                    let line = self.cur.line();
                    let var_start = self.cur.pos();
                    self.cur.bump(); // $
                    self.cur.skip_while(is_ident_continue);
                    let name = self.cur.slice_from(var_start).to_string();
                    self.push(TokenKind::Variable, name, line);
                    // Simple-syntax suffixes: ->prop or [index]
                    if self.cur.starts_with("->", false)
                        && matches!(self.cur.peek_at(2), Some(n) if is_ident_start(n))
                    {
                        let line = self.cur.line();
                        self.cur.advance(2);
                        self.push(TokenKind::ObjectOperator, "->", line);
                        let prop = self.cur.eat_while(is_ident_continue);
                        self.push(TokenKind::Identifier, prop, line);
                    } else if self.cur.peek() == Some('[')
                        && matches!(
                            self.cur.peek_at(1),
                            Some(c) if c == '$' || c == '\'' || c.is_ascii_digit() || is_ident_start(c)
                        )
                    {
                        let line = self.cur.line();
                        self.cur.bump();
                        self.push(TokenKind::OpenBracket, "[", line);
                        // index: $var | number | bareword
                        if self.cur.peek() == Some('$') {
                            let idx_start = self.cur.pos();
                            self.cur.bump();
                            self.cur.skip_while(is_ident_continue);
                            let iname = self.cur.slice_from(idx_start).to_string();
                            self.push(TokenKind::Variable, iname, line);
                        } else if matches!(self.cur.peek(), Some(d) if d.is_ascii_digit()) {
                            let num = self.cur.eat_while(|c| c.is_ascii_digit());
                            self.push(TokenKind::LNumber, num, line);
                        } else {
                            let word = self.cur.eat_while(|c| is_ident_continue(c) || c == '\'');
                            self.push(TokenKind::Identifier, word, line);
                        }
                        if self.cur.eat(']') {
                            self.push(TokenKind::CloseBracket, "]", line);
                        }
                    }
                    run_start = self.cur.pos();
                    run_line = self.cur.line();
                }
                Some('{') if self.cur.peek_at(1) == Some('$') => {
                    self.flush_encapsed_run(run_start, run_line);
                    let line = self.cur.line();
                    self.cur.bump();
                    self.push(TokenKind::CurlyOpen, "{", line);
                    self.lex_php_until_matching_brace();
                    run_start = self.cur.pos();
                    run_line = self.cur.line();
                }
                Some('$') if self.cur.peek_at(1) == Some('{') => {
                    self.flush_encapsed_run(run_start, run_line);
                    let line = self.cur.line();
                    self.cur.advance(2);
                    self.push(TokenKind::DollarOpenCurlyBraces, "${", line);
                    self.lex_php_until_matching_brace();
                    run_start = self.cur.pos();
                    run_line = self.cur.line();
                }
                Some(c) => {
                    if c == '\n' {
                        at_line_start = true;
                    }
                    self.cur.bump();
                }
                None => break,
            }
        }
        self.flush_encapsed_run(run_start, run_line);
    }

    /// Emits the pending `T_ENCAPSED_AND_WHITESPACE` run (source text from
    /// `run_start` to the cursor), if non-empty.
    fn flush_encapsed_run(&mut self, run_start: usize, run_line: u32) {
        if self.cur.pos() > run_start {
            let run = self.cur.slice_from(run_start).to_string();
            self.push(TokenKind::EncapsedAndWhitespace, run, run_line);
        }
    }

    /// Lexes full PHP tokens inside `{$ ... }` until the matching `}` (which
    /// is emitted as `}`), tracking nesting.
    fn lex_php_until_matching_brace(&mut self) {
        let mut depth = 1usize;
        while !self.cur.is_eof() {
            if self.cur.peek() == Some('{') {
                depth += 1;
            } else if self.cur.peek() == Some('}') {
                depth -= 1;
                let line = self.cur.line();
                self.cur.bump();
                self.push(TokenKind::CloseBrace, "}", line);
                if depth == 0 {
                    return;
                }
                continue;
            }
            self.lex_php_token();
        }
    }

    /// Attempts to lex a cast like `(int)`; restores the cursor on failure.
    fn try_cast(&mut self) -> Option<(TokenKind, String)> {
        let snapshot = self.cur.clone();
        let start = self.cur.pos();
        self.cur.bump(); // (
        self.cur.skip_while(|c| c == ' ' || c == '\t');
        let word_start = self.cur.pos();
        self.cur.skip_while(|c| c.is_ascii_alphabetic());
        let word = self.cur.slice_from(word_start);
        let kind = if word.eq_ignore_ascii_case("int") || word.eq_ignore_ascii_case("integer") {
            TokenKind::IntCast
        } else if word.eq_ignore_ascii_case("float")
            || word.eq_ignore_ascii_case("double")
            || word.eq_ignore_ascii_case("real")
        {
            TokenKind::DoubleCast
        } else if word.eq_ignore_ascii_case("string") || word.eq_ignore_ascii_case("binary") {
            TokenKind::StringCast
        } else if word.eq_ignore_ascii_case("array") {
            TokenKind::ArrayCast
        } else if word.eq_ignore_ascii_case("object") {
            TokenKind::ObjectCast
        } else if word.eq_ignore_ascii_case("bool") || word.eq_ignore_ascii_case("boolean") {
            TokenKind::BoolCast
        } else if word.eq_ignore_ascii_case("unset") {
            TokenKind::UnsetCast
        } else {
            self.cur = snapshot;
            return None;
        };
        self.cur.skip_while(|c| c == ' ' || c == '\t');
        if self.cur.eat(')') {
            Some((kind, self.cur.slice_from(start).to_string()))
        } else {
            self.cur = snapshot;
            None
        }
    }

    fn lex_operator(&mut self, line: u32) {
        use TokenKind::*;
        // Multi-char operators dispatched on the first char (longest match
        // first within each group) so plain punctuation — the bulk of the
        // operator stream — doesn't scan a global table.
        let multi: &[(&str, TokenKind)] = match self.cur.peek() {
            Some('=') => &[("===", Identical), ("==", Equal), ("=>", DoubleArrow)],
            Some('!') => &[("!==", NotIdentical), ("!=", NotEqual)],
            Some('<') => &[
                ("<<=", SlEqual),
                ("<<", Sl),
                ("<=", SmallerOrEqual),
                ("<>", NotEqual),
            ],
            Some('>') => &[(">>=", SrEqual), (">>", Sr), (">=", GreaterOrEqual)],
            Some('.') => &[("...", Ellipsis), (".=", ConcatEqual)],
            Some('-') => &[("->", ObjectOperator), ("--", Dec), ("-=", MinusEqual)],
            Some('+') => &[("++", Inc), ("+=", PlusEqual)],
            Some(':') => &[("::", DoubleColon)],
            Some('&') => &[("&&", BooleanAnd), ("&=", AndEqual)],
            Some('|') => &[("||", BooleanOr), ("|=", OrEqual)],
            Some('*') => &[("**", Pow), ("*=", MulEqual)],
            Some('/') => &[("/=", DivEqual)],
            Some('%') => &[("%=", ModEqual)],
            Some('^') => &[("^=", XorEqual)],
            _ => &[],
        };
        for (s, k) in multi {
            if self.cur.starts_with(s, false) {
                self.cur.advance(s.len());
                self.push(*k, *s, line);
                return;
            }
        }
        let c = self.cur.bump().expect("operator char");
        let kind = match c {
            ';' => Semicolon,
            ',' => Comma,
            '(' => OpenParen,
            ')' => CloseParen,
            '{' => OpenBrace,
            '}' => CloseBrace,
            '[' => OpenBracket,
            ']' => CloseBracket,
            '+' => Plus,
            '-' => Minus,
            '*' => Star,
            '/' => Slash,
            '%' => Percent,
            '.' => Dot,
            '=' => Assign,
            '<' => Lt,
            '>' => Gt,
            '!' => Bang,
            '?' => Question,
            ':' => Colon,
            '&' => Amp,
            '|' => Pipe,
            '^' => Caret,
            '~' => Tilde,
            '@' => At,
            '$' => Dollar,
            '\\' => Backslash,
            _ => Unknown,
        };
        self.push(kind, c.to_string(), line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || (c as u32) >= 0x80
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || (c as u32) >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as K;

    fn kinds(src: &str) -> Vec<K> {
        tokenize_significant(src)
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    fn texts(src: &str) -> Vec<String> {
        tokenize_significant(src)
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = tokenize(src).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(joined, src, "token texts must reconstruct the source");
    }

    #[test]
    fn html_then_php() {
        let toks = tokenize("<h1>Hi</h1><?php echo 1; ?><p>bye</p>");
        assert_eq!(toks[0].kind, K::InlineHtml);
        assert_eq!(toks[0].text, "<h1>Hi</h1>");
        assert_eq!(toks[1].kind, K::OpenTag);
        assert!(toks.iter().any(|t| t.kind == K::CloseTag));
        assert_eq!(toks.last().unwrap().kind, K::InlineHtml);
        roundtrip("<h1>Hi</h1><?php echo 1; ?><p>bye</p>");
    }

    #[test]
    fn open_tag_with_echo() {
        let toks = tokenize("<?= $x ?>");
        assert_eq!(toks[0].kind, K::OpenTagWithEcho);
        assert_eq!(toks[2].kind, K::Variable);
    }

    #[test]
    fn variables_and_superglobals() {
        assert_eq!(
            kinds("<?php $_POST;"),
            vec![K::OpenTag, K::Variable, K::Semicolon]
        );
        assert_eq!(texts("<?php $_POST;")[1], "$_POST");
    }

    #[test]
    fn variable_line_numbers_match_source() {
        let toks = tokenize("<?php\n\n$x = 1;\n$y = 2;");
        let x = toks.iter().find(|t| t.text == "$x").unwrap();
        let y = toks.iter().find(|t| t.text == "$y").unwrap();
        assert_eq!(x.line, 3);
        assert_eq!(y.line, 4);
    }

    #[test]
    fn keywords_vs_identifiers() {
        let k = kinds("<?php function foo() { return bar; }");
        assert_eq!(
            k,
            vec![
                K::OpenTag,
                K::Function,
                K::Identifier,
                K::OpenParen,
                K::CloseParen,
                K::OpenBrace,
                K::Return,
                K::Identifier,
                K::Semicolon,
                K::CloseBrace
            ]
        );
    }

    #[test]
    fn numbers() {
        let k = kinds("<?php 1 1.5 0x1F 0b101 1e3 .5;");
        assert_eq!(
            k,
            vec![
                K::OpenTag,
                K::LNumber,
                K::DNumber,
                K::LNumber,
                K::LNumber,
                K::DNumber,
                K::DNumber,
                K::Semicolon
            ]
        );
    }

    #[test]
    fn single_quoted_string_is_one_token() {
        let t = tokenize_significant("<?php 'a $x b';");
        assert_eq!(t[1].kind, K::ConstantEncapsedString);
        assert_eq!(t[1].text, "'a $x b'");
    }

    #[test]
    fn plain_double_quoted_string_is_one_token() {
        let t = tokenize_significant("<?php \"hello world\";");
        assert_eq!(t[1].kind, K::ConstantEncapsedString);
        assert_eq!(t[1].text, "\"hello world\"");
    }

    #[test]
    fn interpolated_string_splits() {
        let t = tokenize_significant("<?php \"abc $x def\";");
        let k: Vec<K> = t.iter().map(|t| t.kind).collect();
        assert_eq!(
            k,
            vec![
                K::OpenTag,
                K::DoubleQuote,
                K::EncapsedAndWhitespace,
                K::Variable,
                K::EncapsedAndWhitespace,
                K::DoubleQuote,
                K::Semicolon
            ]
        );
        assert_eq!(t[3].text, "$x");
        roundtrip("<?php \"abc $x def\";");
    }

    #[test]
    fn interpolated_property_access() {
        let t = tokenize_significant("<?php \"v={$row->sml_name}\";");
        assert!(t.iter().any(|t| t.kind == K::CurlyOpen));
        assert!(t.iter().any(|t| t.kind == K::ObjectOperator));
        assert!(t.iter().any(|t| t.text == "sml_name"));
        roundtrip("<?php \"v={$row->sml_name}\";");
    }

    #[test]
    fn simple_syntax_property_access_in_string() {
        let t = tokenize_significant("<?php \"v=$row->name!\";");
        let k: Vec<K> = t.iter().map(|t| t.kind).collect();
        assert!(k.contains(&K::ObjectOperator));
        roundtrip("<?php \"v=$row->name!\";");
    }

    #[test]
    fn simple_syntax_array_index_in_string() {
        let t = tokenize_significant("<?php \"v=$a[key] w=$b[0] x=$c[$i]\";");
        let brackets = t.iter().filter(|t| t.kind == K::OpenBracket).count();
        assert_eq!(brackets, 3);
        roundtrip("<?php \"v=$a[key] w=$b[0] x=$c[$i]\";");
    }

    #[test]
    fn escaped_dollar_does_not_interpolate() {
        let t = tokenize_significant("<?php \"a \\$x b\";");
        assert_eq!(t[1].kind, K::ConstantEncapsedString);
    }

    #[test]
    fn heredoc_with_interpolation() {
        let src = "<?php $s = <<<EOT\nhello $name\nEOT;\n";
        let t = tokenize_significant(src);
        let k: Vec<K> = t.iter().map(|t| t.kind).collect();
        assert!(k.contains(&K::StartHeredoc));
        assert!(k.contains(&K::Variable));
        assert!(k.contains(&K::EndHeredoc));
        roundtrip(src);
    }

    #[test]
    fn nowdoc_has_no_interpolation() {
        let src = "<?php $s = <<<'EOT'\nhello $name\nEOT;\n";
        let t = tokenize_significant(src);
        assert!(t.iter().any(|t| t.kind == K::StartHeredoc));
        assert!(!t.iter().any(|t| t.kind == K::Variable && t.text == "$name"));
        roundtrip(src);
    }

    #[test]
    fn comments() {
        let t = tokenize("<?php // line\n# hash\n/* block */ /** doc */ 1;");
        let k: Vec<K> = t.iter().map(|t| t.kind).collect();
        assert_eq!(k.iter().filter(|&&x| x == K::Comment).count(), 3);
        assert_eq!(k.iter().filter(|&&x| x == K::DocComment).count(), 1);
    }

    #[test]
    fn line_comment_stops_at_close_tag() {
        let t = tokenize("<?php // c ?>after");
        assert!(t.iter().any(|t| t.kind == K::CloseTag));
        assert_eq!(t.last().unwrap().kind, K::InlineHtml);
        roundtrip("<?php // c ?>after");
    }

    #[test]
    fn object_and_static_operators() {
        let k = kinds("<?php $wpdb->get_results(); Foo::bar();");
        assert!(k.contains(&K::ObjectOperator));
        assert!(k.contains(&K::DoubleColon));
    }

    #[test]
    fn casts() {
        let k = kinds("<?php (int)$x; (string) $y; ( array )$z; (bool)$w;");
        assert!(k.contains(&K::IntCast));
        assert!(k.contains(&K::StringCast));
        assert!(k.contains(&K::ArrayCast));
        assert!(k.contains(&K::BoolCast));
    }

    #[test]
    fn non_cast_paren_is_paren() {
        let k = kinds("<?php (1 + 2);");
        assert_eq!(k[1], K::OpenParen);
    }

    #[test]
    fn three_char_operators() {
        let k = kinds("<?php $a === $b; $a !== $b;");
        assert!(k.contains(&K::Identical));
        assert!(k.contains(&K::NotIdentical));
    }

    #[test]
    fn assignment_operator_family() {
        let k = kinds("<?php $a .= 'x'; $a += 1; $a <<= 2;");
        assert!(k.contains(&K::ConcatEqual));
        assert!(k.contains(&K::PlusEqual));
        assert!(k.contains(&K::SlEqual));
    }

    #[test]
    fn variable_variable() {
        let k = kinds("<?php $$name;");
        assert_eq!(k[1], K::Dollar);
        assert_eq!(k[2], K::Variable);
    }

    #[test]
    fn unclosed_string_is_total() {
        // Must not panic and must round-trip.
        roundtrip("<?php $x = 'never closed");
        roundtrip("<?php $x = \"never closed $y");
    }

    #[test]
    fn empty_and_html_only_inputs() {
        assert!(tokenize("").is_empty());
        let t = tokenize("just html, no php");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, K::InlineHtml);
    }

    #[test]
    fn short_open_tag() {
        let t = tokenize("<? echo 1;");
        assert_eq!(t[0].kind, K::OpenTag);
        assert_eq!(t[0].text, "<?");
    }

    #[test]
    fn roundtrip_realistic_plugin_snippet() {
        let src = r#"<?php
/*
Plugin Name: Example
*/
class My_Plugin {
    private $db;
    public function __construct() {
        global $wpdb;
        $this->db = $wpdb;
    }
    function render() {
        $rows = $this->db->get_results("SELECT * FROM {$this->db->prefix}sml");
        foreach ($rows as $row) {
            echo '<li>' . $row->sml_name . '</li>';
        }
    }
}
$p = new My_Plugin();
$p->render();
"#;
        roundtrip(src);
        let k = kinds(src);
        assert!(k.contains(&K::Class));
        assert!(k.contains(&K::Private));
        assert!(k.contains(&K::Foreach));
        assert!(k.contains(&K::New));
    }
}
