//! # php-lexer
//!
//! A total, line-tracking PHP tokenizer mirroring the semantics of PHP's
//! `token_get_all`, which the phpSAFE paper (Nunes, Fonseca, Vieira — DSN
//! 2015, §III.B) uses as its model-construction front end.
//!
//! Design goals:
//!
//! * **Totality** — every input produces a token stream; malformed code
//!   degrades to [`TokenKind::Unknown`] / truncated strings instead of
//!   failing, because a plugin analyzer must survive real-world code.
//! * **Round-trip fidelity** — concatenating [`Token::text`] reproduces the
//!   source byte-for-byte, so findings map exactly back to source.
//! * **PHP-shaped output** — token kinds carry their PHP `T_*` names
//!   ([`TokenKind::php_name`]), including interpolation tokens
//!   (`T_ENCAPSED_AND_WHITESPACE`, `T_CURLY_OPEN`, …) and OOP operators
//!   (`T_OBJECT_OPERATOR`, `T_DOUBLE_COLON`) that the paper's OOP support
//!   (§III.E) keys on.
//!
//! ## Example
//!
//! ```
//! use php_lexer::{tokenize_significant, TokenKind};
//!
//! let tokens = tokenize_significant(r#"<?php echo $_GET['name']; "#);
//! assert_eq!(tokens[1].kind, TokenKind::Echo);
//! assert_eq!(tokens[2].kind, TokenKind::Variable);
//! assert_eq!(tokens[2].text, "$_GET");
//! ```

#![warn(missing_docs)]

mod cursor;
mod lexer;
mod token;

pub use lexer::{tokenize, tokenize_significant, Lexer};
pub use token::{keyword_kind, Token, TokenKind};

/// Counts non-blank source lines of PHP code, the LOC measure used for the
/// paper's responsiveness numbers (Table III reports seconds per KLOC).
///
/// # Examples
///
/// ```
/// use php_lexer::count_loc;
/// assert_eq!(count_loc("<?php\n$a = 1;\n\n$b = 2;\n"), 3);
/// ```
pub fn count_loc(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_ignores_blank_lines() {
        assert_eq!(count_loc(""), 0);
        assert_eq!(count_loc("\n\n\n"), 0);
        assert_eq!(count_loc("a\n\nb"), 2);
    }
}
