//! Token definitions mirroring PHP's `token_get_all` output.
//!
//! PHP's tokenizer names compound tokens `T_*` (e.g. `T_VARIABLE`) and emits
//! single-character punctuation as bare strings. We model both uniformly as
//! [`TokenKind`] variants; [`TokenKind::php_name`] recovers the PHP-style
//! name the paper refers to (e.g. `"T_VARIABLE"`).

use phpsafe_intern::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a PHP token.
///
/// Compound variants correspond to PHP `T_*` token identifiers; punctuation
/// variants correspond to the bare one/two-character strings PHP's
/// `token_get_all` returns outside of arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are self-describing PHP token names
pub enum TokenKind {
    // --- structure ---
    /// `<?php` or `<?`
    OpenTag,
    /// `<?=`
    OpenTagWithEcho,
    /// `?>` (including a trailing newline, as PHP does)
    CloseTag,
    /// Raw HTML outside PHP tags.
    InlineHtml,
    /// Whitespace inside PHP code (`T_WHITESPACE`).
    Whitespace,
    /// `// ...`, `# ...` or `/* ... */`
    Comment,
    /// `/** ... */`
    DocComment,

    // --- literals & identifiers ---
    /// `$name`
    Variable,
    /// Identifier / keyword-like bareword (`T_STRING`).
    Identifier,
    /// Integer literal.
    LNumber,
    /// Float literal.
    DNumber,
    /// Fully quoted string with no interpolation (quotes included in text).
    ConstantEncapsedString,
    /// Literal fragment inside an interpolated string or heredoc.
    EncapsedAndWhitespace,
    /// `<<<EOT` opener.
    StartHeredoc,
    /// Heredoc/nowdoc terminator label.
    EndHeredoc,
    /// `{$` inside an interpolated string.
    CurlyOpen,
    /// `${` inside an interpolated string.
    DollarOpenCurlyBraces,
    /// The `"` delimiting an interpolated double-quoted string.
    DoubleQuote,
    /// The `` ` `` delimiting a shell-exec string.
    Backtick,

    // --- keywords ---
    Abstract,
    Array,
    As,
    Break,
    Callable,
    Case,
    Catch,
    Class,
    ClassC, // __CLASS__
    Clone,
    Const,
    Continue,
    Declare,
    Default,
    Do,
    Echo,
    Else,
    Elseif,
    Empty,
    EndDeclare,
    EndFor,
    EndForeach,
    EndIf,
    EndSwitch,
    EndWhile,
    Exit,
    Extends,
    Final,
    Finally,
    FileC, // __FILE__
    For,
    Foreach,
    Function,
    FuncC, // __FUNCTION__
    Global,
    Goto,
    If,
    Implements,
    Include,
    IncludeOnce,
    Instanceof,
    Insteadof,
    Interface,
    Isset,
    LineC, // __LINE__
    List,
    LogicalAnd, // and
    LogicalOr,  // or
    LogicalXor, // xor
    MethodC,    // __METHOD__
    Namespace,
    NsC, // __NAMESPACE__
    New,
    Print,
    Private,
    Protected,
    Public,
    Require,
    RequireOnce,
    Return,
    Static,
    Switch,
    Throw,
    Trait,
    Try,
    Unset,
    Use,
    Var,
    While,
    Yield,

    // --- casts ---
    IntCast,
    DoubleCast,
    StringCast,
    ArrayCast,
    ObjectCast,
    BoolCast,
    UnsetCast,

    // --- multi-char operators ---
    /// `->`
    ObjectOperator,
    /// `::`
    DoubleColon,
    /// `=>`
    DoubleArrow,
    /// `++`
    Inc,
    /// `--`
    Dec,
    /// `===`
    Identical,
    /// `!==`
    NotIdentical,
    /// `==`
    Equal,
    /// `!=` or `<>`
    NotEqual,
    /// `<=`
    SmallerOrEqual,
    /// `>=`
    GreaterOrEqual,
    /// `&&`
    BooleanAnd,
    /// `||`
    BooleanOr,
    /// `+=`
    PlusEqual,
    /// `-=`
    MinusEqual,
    /// `*=`
    MulEqual,
    /// `/=`
    DivEqual,
    /// `.=`
    ConcatEqual,
    /// `%=`
    ModEqual,
    /// `&=`
    AndEqual,
    /// `|=`
    OrEqual,
    /// `^=`
    XorEqual,
    /// `<<=`
    SlEqual,
    /// `>>=`
    SrEqual,
    /// `<<`
    Sl,
    /// `>>`
    Sr,
    /// `**`
    Pow,
    /// `...`
    Ellipsis,

    // --- single-char punctuation (bare strings in token_get_all) ---
    Semicolon,
    Comma,
    OpenParen,
    CloseParen,
    OpenBrace,
    CloseBrace,
    OpenBracket,
    CloseBracket,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Dot,
    Assign,
    Lt,
    Gt,
    Bang,
    Question,
    Colon,
    Amp,
    Pipe,
    Caret,
    Tilde,
    At,
    Dollar,
    Backslash,

    /// A byte the lexer could not classify (kept for error tolerance).
    Unknown,
}

impl TokenKind {
    /// PHP-style token name, e.g. `T_VARIABLE`, as returned by PHP's
    /// `token_name`. Punctuation kinds return their literal spelling.
    ///
    /// # Examples
    ///
    /// ```
    /// use php_lexer::TokenKind;
    /// assert_eq!(TokenKind::Variable.php_name(), "T_VARIABLE");
    /// assert_eq!(TokenKind::Semicolon.php_name(), ";");
    /// ```
    pub fn php_name(self) -> &'static str {
        use TokenKind::*;
        match self {
            OpenTag => "T_OPEN_TAG",
            OpenTagWithEcho => "T_OPEN_TAG_WITH_ECHO",
            CloseTag => "T_CLOSE_TAG",
            InlineHtml => "T_INLINE_HTML",
            Whitespace => "T_WHITESPACE",
            Comment => "T_COMMENT",
            DocComment => "T_DOC_COMMENT",
            Variable => "T_VARIABLE",
            Identifier => "T_STRING",
            LNumber => "T_LNUMBER",
            DNumber => "T_DNUMBER",
            ConstantEncapsedString => "T_CONSTANT_ENCAPSED_STRING",
            EncapsedAndWhitespace => "T_ENCAPSED_AND_WHITESPACE",
            StartHeredoc => "T_START_HEREDOC",
            EndHeredoc => "T_END_HEREDOC",
            CurlyOpen => "T_CURLY_OPEN",
            DollarOpenCurlyBraces => "T_DOLLAR_OPEN_CURLY_BRACES",
            DoubleQuote => "\"",
            Backtick => "`",
            Abstract => "T_ABSTRACT",
            Array => "T_ARRAY",
            As => "T_AS",
            Break => "T_BREAK",
            Callable => "T_CALLABLE",
            Case => "T_CASE",
            Catch => "T_CATCH",
            Class => "T_CLASS",
            ClassC => "T_CLASS_C",
            Clone => "T_CLONE",
            Const => "T_CONST",
            Continue => "T_CONTINUE",
            Declare => "T_DECLARE",
            Default => "T_DEFAULT",
            Do => "T_DO",
            Echo => "T_ECHO",
            Else => "T_ELSE",
            Elseif => "T_ELSEIF",
            Empty => "T_EMPTY",
            EndDeclare => "T_ENDDECLARE",
            EndFor => "T_ENDFOR",
            EndForeach => "T_ENDFOREACH",
            EndIf => "T_ENDIF",
            EndSwitch => "T_ENDSWITCH",
            EndWhile => "T_ENDWHILE",
            Exit => "T_EXIT",
            Extends => "T_EXTENDS",
            Final => "T_FINAL",
            Finally => "T_FINALLY",
            FileC => "T_FILE",
            For => "T_FOR",
            Foreach => "T_FOREACH",
            Function => "T_FUNCTION",
            FuncC => "T_FUNC_C",
            Global => "T_GLOBAL",
            Goto => "T_GOTO",
            If => "T_IF",
            Implements => "T_IMPLEMENTS",
            Include => "T_INCLUDE",
            IncludeOnce => "T_INCLUDE_ONCE",
            Instanceof => "T_INSTANCEOF",
            Insteadof => "T_INSTEADOF",
            Interface => "T_INTERFACE",
            Isset => "T_ISSET",
            LineC => "T_LINE",
            List => "T_LIST",
            LogicalAnd => "T_LOGICAL_AND",
            LogicalOr => "T_LOGICAL_OR",
            LogicalXor => "T_LOGICAL_XOR",
            MethodC => "T_METHOD_C",
            Namespace => "T_NAMESPACE",
            NsC => "T_NS_C",
            New => "T_NEW",
            Print => "T_PRINT",
            Private => "T_PRIVATE",
            Protected => "T_PROTECTED",
            Public => "T_PUBLIC",
            Require => "T_REQUIRE",
            RequireOnce => "T_REQUIRE_ONCE",
            Return => "T_RETURN",
            Static => "T_STATIC",
            Switch => "T_SWITCH",
            Throw => "T_THROW",
            Trait => "T_TRAIT",
            Try => "T_TRY",
            Unset => "T_UNSET",
            Use => "T_USE",
            Var => "T_VAR",
            While => "T_WHILE",
            Yield => "T_YIELD",
            IntCast => "T_INT_CAST",
            DoubleCast => "T_DOUBLE_CAST",
            StringCast => "T_STRING_CAST",
            ArrayCast => "T_ARRAY_CAST",
            ObjectCast => "T_OBJECT_CAST",
            BoolCast => "T_BOOL_CAST",
            UnsetCast => "T_UNSET_CAST",
            ObjectOperator => "T_OBJECT_OPERATOR",
            DoubleColon => "T_DOUBLE_COLON",
            DoubleArrow => "T_DOUBLE_ARROW",
            Inc => "T_INC",
            Dec => "T_DEC",
            Identical => "T_IS_IDENTICAL",
            NotIdentical => "T_IS_NOT_IDENTICAL",
            Equal => "T_IS_EQUAL",
            NotEqual => "T_IS_NOT_EQUAL",
            SmallerOrEqual => "T_IS_SMALLER_OR_EQUAL",
            GreaterOrEqual => "T_IS_GREATER_OR_EQUAL",
            BooleanAnd => "T_BOOLEAN_AND",
            BooleanOr => "T_BOOLEAN_OR",
            PlusEqual => "T_PLUS_EQUAL",
            MinusEqual => "T_MINUS_EQUAL",
            MulEqual => "T_MUL_EQUAL",
            DivEqual => "T_DIV_EQUAL",
            ConcatEqual => "T_CONCAT_EQUAL",
            ModEqual => "T_MOD_EQUAL",
            AndEqual => "T_AND_EQUAL",
            OrEqual => "T_OR_EQUAL",
            XorEqual => "T_XOR_EQUAL",
            SlEqual => "T_SL_EQUAL",
            SrEqual => "T_SR_EQUAL",
            Sl => "T_SL",
            Sr => "T_SR",
            Pow => "T_POW",
            Ellipsis => "T_ELLIPSIS",
            Semicolon => ";",
            Comma => ",",
            OpenParen => "(",
            CloseParen => ")",
            OpenBrace => "{",
            CloseBrace => "}",
            OpenBracket => "[",
            CloseBracket => "]",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Dot => ".",
            Assign => "=",
            Lt => "<",
            Gt => ">",
            Bang => "!",
            Question => "?",
            Colon => ":",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            At => "@",
            Dollar => "$",
            Backslash => "\\",
            Unknown => "T_UNKNOWN",
        }
    }

    /// Whether this token carries no syntactic meaning for a parser
    /// (whitespace, comments and HTML passthrough).
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::Comment | TokenKind::DocComment
        )
    }

    /// Whether this is one of the PHP cast tokens like `(int)`.
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            TokenKind::IntCast
                | TokenKind::DoubleCast
                | TokenKind::StringCast
                | TokenKind::ArrayCast
                | TokenKind::ObjectCast
                | TokenKind::BoolCast
                | TokenKind::UnsetCast
        )
    }

    /// Whether this is an `include`/`require` family keyword.
    pub fn is_include(self) -> bool {
        matches!(
            self,
            TokenKind::Include
                | TokenKind::IncludeOnce
                | TokenKind::Require
                | TokenKind::RequireOnce
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.php_name())
    }
}

/// A single lexed token: kind, verbatim source text and 1-based line number.
///
/// Mirrors the `[id, text, line]` triples of PHP's `token_get_all` (the paper,
/// §III.B: *"the array has the token identifier, the value of the token and
/// the line number"*).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Verbatim text as it appeared in the source.
    pub text: String,
    /// Interned name for identifier-like tokens ([`TokenKind::Variable`],
    /// [`TokenKind::Identifier`]); [`Symbol::EMPTY`] for everything else.
    /// Interning here means the parser and interpreter never re-hash the
    /// name string — they thread the `Copy` id through the whole pipeline.
    pub sym: Symbol,
    /// 1-based source line on which the token starts.
    pub line: u32,
}

impl Token {
    /// Creates a token, interning identifier/variable names.
    pub fn new(kind: TokenKind, text: impl Into<String>, line: u32) -> Self {
        let text = text.into();
        let sym = match kind {
            TokenKind::Variable | TokenKind::Identifier => Symbol::intern(&text),
            _ => Symbol::EMPTY,
        };
        Token {
            kind,
            text,
            sym,
            line,
        }
    }

    /// The interned text: `sym` when pre-interned at lex time, otherwise
    /// interned on demand (keywords used as member names, magic constants).
    pub fn symbol(&self) -> Symbol {
        if self.sym.is_empty() && !self.text.is_empty() {
            Symbol::intern(&self.text)
        } else {
            self.sym
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {:?}, {}]",
            self.kind.php_name(),
            self.text,
            self.line
        )
    }
}

/// Resolves a keyword spelled `word` (ASCII case-insensitive, as in PHP) to
/// its token kind, or `None` if it is an ordinary identifier.
pub fn keyword_kind(word: &str) -> Option<TokenKind> {
    use TokenKind::*;
    // Lowercase on the stack: this runs for every identifier-shaped token
    // in the stream, and the longest keyword (`__namespace__`) is 13 bytes.
    const MAX: usize = 13;
    let bytes = word.as_bytes();
    if bytes.len() > MAX {
        return None;
    }
    let mut buf = [0u8; MAX];
    for (dst, b) in buf.iter_mut().zip(bytes) {
        *dst = b.to_ascii_lowercase();
    }
    Some(match &buf[..bytes.len()] {
        b"abstract" => Abstract,
        b"array" => Array,
        b"as" => As,
        b"break" => Break,
        b"callable" => Callable,
        b"case" => Case,
        b"catch" => Catch,
        b"class" => Class,
        b"__class__" => ClassC,
        b"clone" => Clone,
        b"const" => Const,
        b"continue" => Continue,
        b"declare" => Declare,
        b"default" => Default,
        b"do" => Do,
        b"echo" => Echo,
        b"else" => Else,
        b"elseif" => Elseif,
        b"empty" => Empty,
        b"enddeclare" => EndDeclare,
        b"endfor" => EndFor,
        b"endforeach" => EndForeach,
        b"endif" => EndIf,
        b"endswitch" => EndSwitch,
        b"endwhile" => EndWhile,
        b"exit" | b"die" => Exit,
        b"extends" => Extends,
        b"final" => Final,
        b"finally" => Finally,
        b"__file__" => FileC,
        b"for" => For,
        b"foreach" => Foreach,
        b"function" => Function,
        b"__function__" => FuncC,
        b"global" => Global,
        b"goto" => Goto,
        b"if" => If,
        b"implements" => Implements,
        b"include" => Include,
        b"include_once" => IncludeOnce,
        b"instanceof" => Instanceof,
        b"insteadof" => Insteadof,
        b"interface" => Interface,
        b"isset" => Isset,
        b"__line__" => LineC,
        b"list" => List,
        b"and" => LogicalAnd,
        b"or" => LogicalOr,
        b"xor" => LogicalXor,
        b"__method__" => MethodC,
        b"namespace" => Namespace,
        b"__namespace__" => NsC,
        b"new" => New,
        b"print" => Print,
        b"private" => Private,
        b"protected" => Protected,
        b"public" => Public,
        b"require" => Require,
        b"require_once" => RequireOnce,
        b"return" => Return,
        b"static" => Static,
        b"switch" => Switch,
        b"throw" => Throw,
        b"trait" => Trait,
        b"try" => Try,
        b"unset" => Unset,
        b"use" => Use,
        b"var" => Var,
        b"while" => While,
        b"yield" => Yield,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn php_names_match_php_conventions() {
        assert_eq!(TokenKind::Variable.php_name(), "T_VARIABLE");
        assert_eq!(TokenKind::ObjectOperator.php_name(), "T_OBJECT_OPERATOR");
        assert_eq!(TokenKind::DoubleColon.php_name(), "T_DOUBLE_COLON");
        assert_eq!(TokenKind::OpenBrace.php_name(), "{");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(keyword_kind("ECHO"), Some(TokenKind::Echo));
        assert_eq!(keyword_kind("Function"), Some(TokenKind::Function));
        assert_eq!(keyword_kind("die"), Some(TokenKind::Exit));
        assert_eq!(keyword_kind("not_a_keyword"), None);
    }

    #[test]
    fn trivia_classification() {
        assert!(TokenKind::Whitespace.is_trivia());
        assert!(TokenKind::Comment.is_trivia());
        assert!(TokenKind::DocComment.is_trivia());
        assert!(!TokenKind::Variable.is_trivia());
        assert!(!TokenKind::InlineHtml.is_trivia());
    }

    #[test]
    fn cast_classification() {
        assert!(TokenKind::IntCast.is_cast());
        assert!(TokenKind::UnsetCast.is_cast());
        assert!(!TokenKind::OpenParen.is_cast());
    }

    #[test]
    fn include_classification() {
        assert!(TokenKind::Include.is_include());
        assert!(TokenKind::RequireOnce.is_include());
        assert!(!TokenKind::Use.is_include());
    }

    #[test]
    fn token_display_mirrors_token_get_all_triple() {
        let t = Token::new(TokenKind::Variable, "$_POST", 11);
        assert_eq!(t.to_string(), "[T_VARIABLE, \"$_POST\", 11]");
    }
}
