//! Property-based tests for the lexer's totality and round-trip invariants.

use php_lexer::{tokenize, tokenize_significant, TokenKind};
use proptest::prelude::*;

/// Strategy producing PHP-ish source fragments: a soup of constructs the
/// lexer must survive, biased toward tricky boundaries (strings, tags,
/// interpolation, comments).
fn php_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("<?php ".to_string()),
        Just("?>".to_string()),
        Just("<?= ".to_string()),
        Just("$x".to_string()),
        Just("$_GET['a']".to_string()),
        Just("\"a $b c\"".to_string()),
        Just("'lit'".to_string()),
        Just("\"{$obj->prop}\"".to_string()),
        Just("// comment\n".to_string()),
        Just("/* block */".to_string()),
        Just("echo ".to_string()),
        Just("function f($a) { return $a; }".to_string()),
        Just("class C { var $p; }".to_string()),
        Just("$a->b".to_string()),
        Just("A::b()".to_string()),
        Just("1.5e3".to_string()),
        Just("0x1F".to_string()),
        Just("(int)".to_string()),
        Just("===".to_string()),
        Just("<<<EOT\nbody\nEOT;\n".to_string()),
        Just("<html><b>x</b>".to_string()),
        Just(";".to_string()),
        Just("\n".to_string()),
        Just("\\".to_string()),
        Just("'unclosed".to_string()),
        Just("\"unclosed $v".to_string()),
        "[ -~]{0,12}".prop_map(|s| s),
    ];
    prop::collection::vec(fragment, 0..24).prop_map(|v| v.concat())
}

proptest! {
    /// The lexer is total and round-trips arbitrary construct soup.
    #[test]
    fn lexing_is_total_and_roundtrips(src in php_soup()) {
        let toks = tokenize(&src);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(rebuilt, src);
    }

    /// The lexer is total on completely arbitrary unicode strings.
    #[test]
    fn lexing_is_total_on_arbitrary_unicode(src in "\\PC{0,64}") {
        let toks = tokenize(&src);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(rebuilt, src);
    }

    /// No token has empty text (C-DEBUG-NONEMPTY analogue for tokens), and
    /// line numbers are monotonically non-decreasing and 1-based.
    #[test]
    fn tokens_nonempty_and_lines_monotone(src in php_soup()) {
        let toks = tokenize(&src);
        let mut last = 1u32;
        for t in &toks {
            prop_assert!(!t.text.is_empty(), "empty token text: {:?}", t);
            prop_assert!(t.line >= 1);
            prop_assert!(t.line >= last, "line went backwards at {:?}", t);
            last = t.line;
        }
    }

    /// Filtering trivia never removes significant kinds.
    #[test]
    fn significant_is_a_subsequence(src in php_soup()) {
        let all = tokenize(&src);
        let sig = tokenize_significant(&src);
        prop_assert!(sig.len() <= all.len());
        prop_assert!(sig.iter().all(|t| !t.kind.is_trivia()));
        // Every significant token appears in the full stream.
        let mut it = all.iter();
        for s in &sig {
            prop_assert!(it.any(|a| a == s), "significant token missing from full stream");
        }
    }

    /// Line numbers never exceed the physical line count of the input.
    #[test]
    fn line_numbers_bounded_by_input(src in php_soup()) {
        let max_line = src.lines().count().max(1) as u32;
        for t in tokenize(&src) {
            prop_assert!(t.line <= max_line + 1, "token line {} > {}", t.line, max_line);
        }
    }
}

#[test]
fn significant_filters_whitespace_deterministically() {
    let src = "<?php  $a  =  1 ; // c\n$b = 2;";
    let a = tokenize_significant(src);
    let b = tokenize_significant(src);
    assert_eq!(a, b);
    assert!(a.iter().all(|t| t.kind != TokenKind::Whitespace));
}
