//! Request-scoped context threaded through the daemon into the service.
//!
//! A [`RequestCtx`] is created once per protocol request (the daemon
//! assigns the monotonic `seq`) and handed by reference through every hop
//! — transport thread, queue, worker, analysis service — so each layer
//! can deposit what it knows (queue wait, stage timings, cache
//! attribution, content identity) into the one record that becomes the
//! request's [`WideEvent`](phpsafe_obs::WideEvent). All mutation is
//! interior and thread-safe: the transport thread may be assembling the
//! 504 reply while the worker is still writing timings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Per-request context: identity, deadline, and the telemetry scratchpad.
#[derive(Debug)]
pub struct RequestCtx {
    /// Server-assigned request id, monotonic per daemon; 0 for detached
    /// (non-daemon) contexts.
    pub seq: u64,
    /// The client's `id` field, if it sent one (echoed in the response).
    pub client_id: Option<Json>,
    /// When the request line was received.
    pub received: Instant,
    /// Absolute deadline derived from the daemon's request timeout;
    /// `None` for detached contexts.
    pub deadline: Option<Instant>,
    queue_wait_us: AtomicU64,
    service_us: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    marks: Mutex<Vec<(&'static str, u64)>>,
    content_key: Mutex<Option<String>>,
}

impl RequestCtx {
    /// A context for a daemon request: `seq` from the daemon's counter,
    /// the client's optional `id`, and a deadline `timeout` from now.
    pub fn new(seq: u64, client_id: Option<Json>, timeout: Duration) -> RequestCtx {
        let received = Instant::now();
        RequestCtx {
            seq,
            client_id,
            received,
            deadline: received.checked_add(timeout),
            queue_wait_us: AtomicU64::new(0),
            service_us: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            marks: Mutex::new(Vec::new()),
            content_key: Mutex::new(None),
        }
    }

    /// A context for callers outside the daemon (batch CLI, benches,
    /// tests): no seq, no deadline. Telemetry still accumulates.
    pub fn detached() -> RequestCtx {
        RequestCtx {
            seq: 0,
            client_id: None,
            received: Instant::now(),
            deadline: None,
            queue_wait_us: AtomicU64::new(0),
            service_us: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            marks: Mutex::new(Vec::new()),
            content_key: Mutex::new(None),
        }
    }

    /// Records time spent queued before a worker picked the request up.
    pub fn set_queue_wait(&self, wait: Duration) {
        self.queue_wait_us
            .store(wait.as_micros() as u64, Ordering::Relaxed);
    }

    /// Queue wait in microseconds (0 until the worker dequeued it).
    pub fn queue_wait_us(&self) -> u64 {
        self.queue_wait_us.load(Ordering::Relaxed)
    }

    /// Records time spent inside the service call.
    pub fn set_service_time(&self, spent: Duration) {
        self.service_us
            .store(spent.as_micros() as u64, Ordering::Relaxed);
    }

    /// Service time in microseconds (0 until the worker finished).
    pub fn service_us(&self) -> u64 {
        self.service_us.load(Ordering::Relaxed)
    }

    /// Appends a named stage timing (e.g. `load_us`, `analyze_us`).
    pub fn mark(&self, name: &'static str, spent: Duration) {
        self.marks
            .lock()
            .unwrap()
            .push((name, spent.as_micros() as u64));
    }

    /// The stage timings recorded so far, in recording order.
    pub fn marks(&self) -> Vec<(&'static str, u64)> {
        self.marks.lock().unwrap().clone()
    }

    /// Appends a named count to the marks (e.g. `dirty_files`): sizes ride
    /// in the same wide-event field as stage timings, so one telemetry
    /// record explains both where the time went and how big the work was.
    pub fn mark_count(&self, name: &'static str, n: u64) {
        self.marks.lock().unwrap().push((name, n));
    }

    /// Attributes cache hits to this request (summed across tiers).
    pub fn add_cache_hits(&self, n: u64) {
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Attributes cache misses to this request.
    pub fn add_cache_misses(&self, n: u64) {
        self.cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Cache hits attributed so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses attributed so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Records the content key identifying what was analyzed.
    pub fn set_content_key(&self, key: String) {
        *self.content_key.lock().unwrap() = Some(key);
    }

    /// The recorded content key, if any.
    pub fn content_key(&self) -> Option<String> {
        self.content_key.lock().unwrap().clone()
    }

    /// Time left before the deadline; `None` means no deadline, zero
    /// means it already passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_has_no_identity_or_deadline() {
        let ctx = RequestCtx::detached();
        assert_eq!(ctx.seq, 0);
        assert!(ctx.client_id.is_none());
        assert!(ctx.deadline.is_none());
        assert!(ctx.remaining().is_none());
    }

    #[test]
    fn telemetry_scratchpad_accumulates() {
        let ctx = RequestCtx::new(7, Some(Json::Num(9.0)), Duration::from_secs(10));
        ctx.set_queue_wait(Duration::from_micros(40));
        ctx.set_service_time(Duration::from_micros(900));
        ctx.mark("load_us", Duration::from_micros(100));
        ctx.mark("analyze_us", Duration::from_micros(800));
        ctx.add_cache_hits(3);
        ctx.add_cache_misses(1);
        ctx.set_content_key("00ff-12".into());
        assert_eq!(ctx.seq, 7);
        assert_eq!(ctx.queue_wait_us(), 40);
        assert_eq!(ctx.service_us(), 900);
        assert_eq!(ctx.marks(), [("load_us", 100), ("analyze_us", 800)]);
        assert_eq!(ctx.cache_hits(), 3);
        assert_eq!(ctx.cache_misses(), 1);
        assert_eq!(ctx.content_key().as_deref(), Some("00ff-12"));
        let remaining = ctx.remaining().unwrap();
        assert!(remaining <= Duration::from_secs(10));
        assert!(remaining > Duration::from_secs(5), "fresh deadline");
    }
}
