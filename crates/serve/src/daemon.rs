//! The daemon core: a [`Service`]-agnostic request loop.
//!
//! The analysis implementation lives downstream (phpsafe-core implements
//! [`Service`]); this module owns everything operational around it — the
//! bounded queue, the worker pool, per-request timeouts, graceful drain on
//! shutdown, and the `serve.*` metrics. [`Daemon::handle_line`] is the
//! single entry point used by both transports ([`run_stdio`] and
//! [`run_tcp`]), so unit tests can drive the full protocol without a
//! socket.

use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use phpsafe_obs::{count, snapshot, time};

use crate::json::Json;
use crate::proto::{error_response, ok_response, parse_line, AnalyzeRequest, Request};
use crate::queue::{BoundedQueue, PushError};

/// What a daemon must know how to do; everything else (transport, queueing,
/// timeouts, metrics) is generic.
pub trait Service: Send + Sync + 'static {
    /// Runs one analysis request and returns the response payload placed
    /// under `"result"` in the reply. Use [`Json::Raw`] for pre-rendered
    /// cached reports so replies stay byte-identical.
    fn analyze(&self, request: &AnalyzeRequest) -> Result<Json, String>;

    /// Extra fields appended to `status` replies (cache sizes etc.).
    fn status(&self) -> Vec<(String, Json)> {
        Vec::new()
    }
}

/// Operational limits for a daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Analysis worker threads consuming the queue.
    pub workers: usize,
    /// Maximum queued (not yet running) requests before 429 rejection.
    pub queue_capacity: usize,
    /// Per-request deadline; expired requests get a 504 reply (the worker
    /// finishes in the background and warms the caches regardless).
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 1,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(300),
        }
    }
}

/// What the caller should do after writing the response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// The daemon is shutting down; stop the transport loop.
    Shutdown,
}

struct Job {
    request: AnalyzeRequest,
    reply: mpsc::Sender<Result<Json, String>>,
}

/// A running daemon: worker pool + bounded queue around a [`Service`].
pub struct Daemon {
    service: Arc<dyn Service>,
    config: ServerConfig,
    queue: Arc<BoundedQueue<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    draining: AtomicBool,
    started: Instant,
    served: AtomicU64,
}

impl Daemon {
    /// Starts the worker pool and returns the daemon handle.
    pub fn start(service: Arc<dyn Service>, config: ServerConfig) -> Arc<Daemon> {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let daemon = Arc::new(Daemon {
            service: Arc::clone(&service),
            workers: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            served: AtomicU64::new(0),
            queue: Arc::clone(&queue),
            config,
        });
        let mut workers = daemon.workers.lock().unwrap();
        for _ in 0..daemon.config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            workers.push(std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    let t0 = Instant::now();
                    let outcome = service.analyze(&job.request);
                    time("serve.analyze", t0.elapsed());
                    if outcome.is_err() {
                        count("serve.errors", 1);
                    }
                    // The requester may have timed out and dropped the
                    // receiver; the work still warmed the caches.
                    let _ = job.reply.send(outcome);
                }
            }));
        }
        drop(workers);
        daemon
    }

    /// True once a shutdown request has been accepted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Stops accepting new work; already-queued requests still complete.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Waits for every worker to finish draining the queue.
    pub fn join(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Handles one NDJSON request line and returns the response line plus
    /// whether the transport should keep reading.
    pub fn handle_line(&self, line: &str) -> (String, Control) {
        count("serve.requests", 1);
        let envelope = match parse_line(line) {
            Ok(envelope) => envelope,
            Err(message) => {
                count("serve.bad_requests", 1);
                return (error_response(None, 400, &message), Control::Continue);
            }
        };
        let id = envelope.id.as_ref();
        match envelope.request {
            Request::Status => {
                let mut fields = vec![
                    (
                        "uptime_ms".to_owned(),
                        Json::Num(self.started.elapsed().as_millis() as f64),
                    ),
                    (
                        "queue_depth".to_owned(),
                        Json::Num(self.queue.depth() as f64),
                    ),
                    ("workers".to_owned(), Json::Num(self.config.workers as f64)),
                    (
                        "served".to_owned(),
                        Json::Num(self.served.load(Ordering::SeqCst) as f64),
                    ),
                    ("draining".to_owned(), Json::Bool(self.draining())),
                ];
                fields.extend(self.service.status());
                (ok_response(id, fields), Control::Continue)
            }
            Request::Metrics => {
                // The snapshot renders as a pretty multi-line document;
                // re-emit it compactly so the response stays on one line.
                let doc = snapshot().to_json();
                let metrics = match crate::json::parse(&doc) {
                    Ok(value) => value,
                    Err(_) => Json::Str(doc),
                };
                (
                    ok_response(id, vec![("metrics".to_owned(), metrics)]),
                    Control::Continue,
                )
            }
            Request::Shutdown => {
                self.shutdown();
                (
                    ok_response(id, vec![("shutting_down".to_owned(), Json::Bool(true))]),
                    Control::Shutdown,
                )
            }
            Request::Analyze(request) => (self.analyze(id, request), Control::Continue),
        }
    }

    fn analyze(&self, id: Option<&Json>, request: AnalyzeRequest) -> String {
        let t0 = Instant::now();
        let (reply, receiver) = mpsc::channel();
        match self.queue.try_push(Job { request, reply }) {
            Ok(()) => count("serve.accepted", 1),
            Err(PushError::Full) => {
                count("serve.rejected", 1);
                return error_response(id, 429, "queue full, retry later");
            }
            Err(PushError::Closed) => {
                count("serve.rejected", 1);
                return error_response(id, 503, "daemon is shutting down");
            }
        }
        let response = match receiver.recv_timeout(self.config.request_timeout) {
            Ok(Ok(result)) => {
                self.served.fetch_add(1, Ordering::SeqCst);
                ok_response(id, vec![("result".to_owned(), result)])
            }
            Ok(Err(message)) => error_response(id, 500, &message),
            Err(_) => {
                count("serve.timeouts", 1);
                error_response(id, 504, "request timed out")
            }
        };
        time("serve.request", t0.elapsed());
        response
    }
}

/// Serves the protocol over stdin/stdout until EOF or a shutdown request,
/// then drains the queue.
pub fn run_stdio(daemon: &Arc<Daemon>) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = daemon.handle_line(&line);
        let mut out = stdout.lock();
        writeln!(out, "{response}")?;
        out.flush()?;
        if control == Control::Shutdown {
            break;
        }
    }
    daemon.shutdown();
    daemon.join();
    Ok(())
}

/// Binds the daemon's loopback listener (`port` 0 picks a free port).
pub fn bind(port: u16) -> io::Result<TcpListener> {
    TcpListener::bind(("127.0.0.1", port))
}

fn handle_conn(daemon: &Arc<Daemon>, stream: TcpStream) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = io::BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = daemon.handle_line(&line);
        writeln!(writer, "{response}")?;
        writer.flush()?;
        if control == Control::Shutdown {
            break;
        }
    }
    Ok(())
}

/// Accepts loopback connections (one thread each) until a shutdown request
/// arrives on any of them, then drains and joins everything.
pub fn run_tcp(daemon: &Arc<Daemon>, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if daemon.draining() {
            break;
        }
        let stream = stream?;
        let daemon = Arc::clone(daemon);
        conns.push(std::thread::spawn(move || {
            let _ = handle_conn(&daemon, stream);
            if daemon.draining() {
                // Wake the accept loop so it can observe the drain flag.
                let _ = TcpStream::connect(addr);
            }
        }));
    }
    for conn in conns {
        let _ = conn.join();
    }
    daemon.shutdown();
    daemon.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::sync::Barrier;

    /// Echoes the request back; optionally announces entry on a channel
    /// and parks on a barrier so tests can control worker occupancy.
    struct Mock {
        entered: Option<Mutex<mpsc::Sender<()>>>,
        gate: Option<Arc<Barrier>>,
        delay: Duration,
    }

    impl Mock {
        fn fast() -> Arc<Mock> {
            Arc::new(Mock {
                entered: None,
                gate: None,
                delay: Duration::ZERO,
            })
        }

        fn gated() -> (Arc<Mock>, mpsc::Receiver<()>, Arc<Barrier>) {
            let (tx, rx) = mpsc::channel();
            let gate = Arc::new(Barrier::new(2));
            let mock = Arc::new(Mock {
                entered: Some(Mutex::new(tx)),
                gate: Some(Arc::clone(&gate)),
                delay: Duration::ZERO,
            });
            (mock, rx, gate)
        }
    }

    impl Service for Mock {
        fn analyze(&self, request: &AnalyzeRequest) -> Result<Json, String> {
            if let Some(entered) = &self.entered {
                let _ = entered.lock().unwrap().send(());
            }
            if let Some(gate) = &self.gate {
                gate.wait();
            }
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            if request.paths == ["boom"] {
                return Err("analysis failed".into());
            }
            Ok(Json::Obj(vec![(
                "paths".to_owned(),
                Json::Arr(request.paths.iter().cloned().map(Json::Str).collect()),
            )]))
        }

        fn status(&self) -> Vec<(String, Json)> {
            vec![("mock".to_owned(), Json::Bool(true))]
        }
    }

    fn line(daemon: &Arc<Daemon>, request: &str) -> Json {
        let (response, _) = daemon.handle_line(request);
        parse(&response).unwrap()
    }

    #[test]
    fn analyze_round_trip() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        let v = line(&daemon, r#"{"cmd":"analyze","paths":["p1"],"id":9}"#);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id"), Some(&Json::Num(9.0)));
        let paths = v.get("result").and_then(|r| r.get("paths")).unwrap();
        assert_eq!(paths.as_arr().unwrap(), [Json::Str("p1".into())]);
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn malformed_and_failing_requests_report_codes() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        assert_eq!(
            line(&daemon, "garbage").get("code"),
            Some(&Json::Num(400.0))
        );
        let v = line(&daemon, r#"{"cmd":"analyze","paths":["boom"]}"#);
        assert_eq!(v.get("code"), Some(&Json::Num(500.0)));
        assert_eq!(v.get("error"), Some(&Json::Str("analysis failed".into())));
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn status_and_metrics_report_daemon_state() {
        phpsafe_obs::set_enabled(true);
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        line(&daemon, r#"{"cmd":"analyze","paths":["p"]}"#);
        let status = line(&daemon, r#"{"cmd":"status"}"#);
        assert_eq!(status.get("served"), Some(&Json::Num(1.0)));
        assert_eq!(status.get("draining"), Some(&Json::Bool(false)));
        assert_eq!(status.get("mock"), Some(&Json::Bool(true)));
        let (metrics, _) = daemon.handle_line(r#"{"cmd":"metrics"}"#);
        assert!(
            metrics.contains("serve.requests"),
            "metrics reply should carry serve.* counters: {metrics}"
        );
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn full_queue_rejects_with_429_then_drains() {
        let (service, entered, gate) = Mock::gated();
        let daemon = Daemon::start(
            service,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServerConfig::default()
            },
        );
        // First request: the lone worker picks it up and parks on the gate.
        let first = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || line(&daemon, r#"{"cmd":"analyze","paths":["a"]}"#))
        };
        entered.recv().unwrap(); // worker is busy with "a", queue is empty
                                 // Second request fills the lone queue slot; third must be shed.
        let second = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || line(&daemon, r#"{"cmd":"analyze","paths":["b"]}"#))
        };
        while daemon.queue.depth() == 0 {
            std::thread::yield_now();
        }
        let rejected = line(&daemon, r#"{"cmd":"analyze","paths":["c"]}"#);
        assert_eq!(rejected.get("code"), Some(&Json::Num(429.0)));
        gate.wait(); // release "a"
        entered.recv().unwrap();
        gate.wait(); // release "b"
        assert_eq!(first.join().unwrap().get("ok"), Some(&Json::Bool(true)));
        assert_eq!(second.join().unwrap().get("ok"), Some(&Json::Bool(true)));
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn slow_requests_time_out_with_504() {
        let daemon = Daemon::start(
            Arc::new(Mock {
                entered: None,
                gate: None,
                delay: Duration::from_millis(200),
            }),
            ServerConfig {
                request_timeout: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        );
        let v = line(&daemon, r#"{"cmd":"analyze","paths":["slow"]}"#);
        assert_eq!(v.get("code"), Some(&Json::Num(504.0)));
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn shutdown_rejects_new_work_but_answers_queued_work() {
        let (service, entered, gate) = Mock::gated();
        let daemon = Daemon::start(
            service,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let inflight = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || line(&daemon, r#"{"cmd":"analyze","paths":["a"]}"#))
        };
        entered.recv().unwrap(); // worker holds "a" at the gate
        let (response, control) = daemon.handle_line(r#"{"cmd":"shutdown"}"#);
        assert_eq!(control, Control::Shutdown);
        assert!(response.contains("shutting_down"));
        let late = line(&daemon, r#"{"cmd":"analyze","paths":["late"]}"#);
        assert_eq!(late.get("code"), Some(&Json::Num(503.0)));
        gate.wait(); // let the in-flight request finish during the drain
        assert_eq!(inflight.join().unwrap().get("ok"), Some(&Json::Bool(true)));
        daemon.join();
    }

    #[test]
    fn tcp_transport_round_trips_and_shuts_down() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        let listener = bind(0).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || run_tcp(&daemon, listener))
        };
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = io::BufReader::new(stream);
        let mut ask = |req: &str| {
            writeln!(writer, "{req}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            parse(response.trim()).unwrap()
        };
        let v = ask(r#"{"cmd":"analyze","paths":["x"],"id":"t"}"#);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id"), Some(&Json::Str("t".into())));
        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
        server.join().unwrap().unwrap();
    }
}
