//! The daemon core: a [`Service`]-agnostic request loop.
//!
//! The analysis implementation lives downstream (phpsafe-core implements
//! [`Service`]); this module owns everything operational around it — the
//! bounded queue, the worker pool, per-request timeouts, graceful drain on
//! shutdown, and the `serve.*` metrics. [`Daemon::handle_line`] is the
//! single entry point used by both transports ([`run_stdio`] and
//! [`run_tcp`]), so unit tests can drive the full protocol without a
//! socket.
//!
//! Every request is assigned a monotonic `seq` the moment its line
//! arrives; the seq is echoed in the response (success *and* every error
//! path) and keys the request's [`WideEvent`] — one structured telemetry
//! record per request, streamed to the `--telemetry-out` sink and
//! tail-sampled for the `telemetry` command.

use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use phpsafe_obs::{count, snapshot, time, TailSampler, TelemetrySink, WideEvent};

use crate::ctx::RequestCtx;
use crate::json::Json;
use crate::proto::{
    error_response, ok_response, parse_line, AnalyzeRequest, InvalidateRequest, Request,
};
use crate::queue::{BoundedQueue, PushError};

/// Counters pre-registered at daemon start, so the full metric surface is
/// scrapeable (and greppable by harnesses) before the first request.
const DECLARED_COUNTERS: &[&str] = &[
    "serve.requests",
    "serve.accepted",
    "serve.rejected",
    "serve.timeouts",
    "serve.errors",
    "serve.bad_requests",
    "serve.request.wide_events",
    "serve.request.tail_sampled",
    "serve.request.telemetry_errors",
    "events.dropped",
    "diskcache.bytes_read",
    "diskcache.bytes_written",
    "diskcache.borrowed_loads",
    "diskcache.mmap_loads",
    "diskcache.store_failed",
    "depgraph.builds",
    "depgraph.hits",
    "depgraph.nodes",
    "depgraph.edges",
    "depgraph.invalidated",
    "incremental.files_dirty",
    "incremental.files_reanalyzed",
];

/// Histograms pre-registered at daemon start.
const DECLARED_HISTOGRAMS: &[&str] = &[
    "serve.request",
    "serve.analyze",
    "serve.invalidate",
    "serve.request.queue_wait",
];

/// What a daemon must know how to do; everything else (transport, queueing,
/// timeouts, metrics) is generic.
pub trait Service: Send + Sync + 'static {
    /// Runs one analysis request and returns the response payload placed
    /// under `"result"` in the reply. Use [`Json::Raw`] for pre-rendered
    /// cached reports so replies stay byte-identical. The context carries
    /// the request's identity and deadline in, and stage timings / cache
    /// attribution back out into the request's wide event.
    fn analyze(&self, ctx: &RequestCtx, request: &AnalyzeRequest) -> Result<Json, String>;

    /// Handles an `invalidate` request: changed on-disk paths. Services
    /// that track project state use it to re-warm caches off the client's
    /// next-analyze path; the default declines politely.
    fn invalidate(&self, _ctx: &RequestCtx, _request: &InvalidateRequest) -> Result<Json, String> {
        Err("this service does not support invalidate".into())
    }

    /// Extra fields appended to `status` replies (cache sizes etc.).
    fn status(&self) -> Vec<(String, Json)> {
        Vec::new()
    }
}

/// Operational limits for a daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Analysis worker threads consuming the queue.
    pub workers: usize,
    /// Maximum queued (not yet running) requests before 429 rejection.
    pub queue_capacity: usize,
    /// Per-request deadline; expired requests get a 504 reply (the worker
    /// finishes in the background and warms the caches regardless).
    pub request_timeout: Duration,
    /// Stream one wide-event NDJSON line per request to this file
    /// (`--telemetry-out`); `None` disables the sink.
    pub telemetry_out: Option<PathBuf>,
    /// How many slowest and how many errored requests the tail sampler
    /// retains for the `telemetry` command.
    pub tail_keep: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 1,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(300),
            telemetry_out: None,
            tail_keep: 8,
        }
    }
}

/// What the caller should do after writing the response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// The daemon is shutting down; stop the transport loop.
    Shutdown,
}

/// Work routed through the bounded queue: both request kinds share the
/// same backpressure, timeout and telemetry machinery.
enum WorkItem {
    Analyze(AnalyzeRequest),
    Invalidate(InvalidateRequest),
}

impl WorkItem {
    fn method(&self) -> &'static str {
        match self {
            WorkItem::Analyze(_) => "analyze",
            WorkItem::Invalidate(_) => "invalidate",
        }
    }
}

struct Job {
    ctx: Arc<RequestCtx>,
    work: WorkItem,
    reply: mpsc::Sender<Result<Json, String>>,
}

/// A running daemon: worker pool + bounded queue around a [`Service`].
pub struct Daemon {
    service: Arc<dyn Service>,
    config: ServerConfig,
    queue: Arc<BoundedQueue<Job>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    draining: AtomicBool,
    started: Instant,
    served: AtomicU64,
    seq: AtomicU64,
    tail: TailSampler,
    sink: Option<TelemetrySink>,
}

impl Daemon {
    /// Starts the worker pool and returns the daemon handle.
    pub fn start(service: Arc<dyn Service>, config: ServerConfig) -> Arc<Daemon> {
        for name in DECLARED_COUNTERS {
            phpsafe_obs::declare_counter(name);
        }
        for name in DECLARED_HISTOGRAMS {
            phpsafe_obs::declare_histogram(name);
        }
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let daemon = Arc::new(Daemon {
            service: Arc::clone(&service),
            workers: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            served: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            tail: TailSampler::new(config.tail_keep),
            sink: config.telemetry_out.clone().map(TelemetrySink::new),
            queue: Arc::clone(&queue),
            config,
        });
        let mut workers = daemon.workers.lock().unwrap();
        for _ in 0..daemon.config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            workers.push(std::thread::spawn(move || {
                while let Some((job, wait)) = queue.pop_with_wait() {
                    time("serve.request.queue_wait", wait);
                    job.ctx.set_queue_wait(wait);
                    let t0 = Instant::now();
                    let (outcome, histogram) = match &job.work {
                        WorkItem::Analyze(request) => {
                            (service.analyze(&job.ctx, request), "serve.analyze")
                        }
                        WorkItem::Invalidate(request) => {
                            (service.invalidate(&job.ctx, request), "serve.invalidate")
                        }
                    };
                    let spent = t0.elapsed();
                    job.ctx.set_service_time(spent);
                    time(histogram, spent);
                    if outcome.is_err() {
                        count("serve.errors", 1);
                    }
                    // The requester may have timed out and dropped the
                    // receiver; the work still warmed the caches.
                    let _ = job.reply.send(outcome);
                }
            }));
        }
        drop(workers);
        daemon
    }

    /// True once a shutdown request has been accepted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Stops accepting new work; already-queued requests still complete.
    /// Flushes the telemetry sink so the stream survives an abrupt exit.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
        self.flush_telemetry();
    }

    /// Waits for every worker to finish draining the queue, then flushes
    /// the telemetry sink one final time (the drain itself emits events).
    pub fn join(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.flush_telemetry();
    }

    fn flush_telemetry(&self) {
        if let Some(sink) = &self.sink {
            if sink.flush().is_err() {
                count("serve.request.telemetry_errors", 1);
            }
        }
    }

    /// Records one finished request: wide event to the sink, offer to the
    /// tail sampler, bookkeeping counters.
    fn observe(&self, event: WideEvent) {
        count("serve.request.wide_events", 1);
        if self.tail.offer(&event) {
            count("serve.request.tail_sampled", 1);
        }
        if let Some(sink) = &self.sink {
            if sink.append(&event.to_ndjson()).is_err() {
                count("serve.request.telemetry_errors", 1);
            }
        }
    }

    /// Assembles the wide event for a request that never entered the
    /// queue (status/metrics/telemetry/shutdown/400), or fills it from
    /// the analyze context when one exists.
    fn wide_event(
        seq: u64,
        id: Option<&Json>,
        method: &str,
        outcome: &str,
        ctx: Option<&RequestCtx>,
        total: Duration,
    ) -> WideEvent {
        let mut event = WideEvent {
            seq,
            client_id: id.map(Json::emit),
            method: method.to_owned(),
            outcome: outcome.to_owned(),
            total_us: total.as_micros() as u64,
            ..WideEvent::default()
        };
        if let Some(ctx) = ctx {
            event.queue_wait_us = ctx.queue_wait_us();
            event.service_us = ctx.service_us();
            event.cache_hits = ctx.cache_hits();
            event.cache_misses = ctx.cache_misses();
            event.content_key = ctx.content_key();
            event.marks = ctx.marks();
        }
        event
    }

    /// Handles one NDJSON request line and returns the response line plus
    /// whether the transport should keep reading.
    pub fn handle_line(&self, line: &str) -> (String, Control) {
        count("serve.requests", 1);
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let t0 = Instant::now();
        let envelope = match parse_line(line) {
            Ok(envelope) => envelope,
            Err(failure) => {
                count("serve.bad_requests", 1);
                // The id is echoed even on 400s whenever the line parsed
                // far enough to reveal one, so client correlation holds
                // across every response.
                let id = failure.id.as_ref();
                let response = error_response(seq, id, 400, &failure.message);
                self.observe(Self::wide_event(
                    seq,
                    id,
                    "invalid",
                    "error:400",
                    None,
                    t0.elapsed(),
                ));
                return (response, Control::Continue);
            }
        };
        let id = envelope.id;
        let (method, response, control) = match envelope.request {
            Request::Status => {
                let mut fields = vec![
                    (
                        "uptime_ms".to_owned(),
                        Json::Num(self.started.elapsed().as_millis() as f64),
                    ),
                    (
                        "queue_depth".to_owned(),
                        Json::Num(self.queue.depth() as f64),
                    ),
                    ("workers".to_owned(), Json::Num(self.config.workers as f64)),
                    (
                        "served".to_owned(),
                        Json::Num(self.served.load(Ordering::SeqCst) as f64),
                    ),
                    ("draining".to_owned(), Json::Bool(self.draining())),
                ];
                fields.extend(self.service.status());
                (
                    "status",
                    ok_response(seq, id.as_ref(), fields),
                    Control::Continue,
                )
            }
            Request::Metrics { prometheus } => (
                "metrics",
                self.metrics_response(seq, id.as_ref(), prometheus),
                Control::Continue,
            ),
            Request::Telemetry => (
                "telemetry",
                self.telemetry_response(seq, id.as_ref()),
                Control::Continue,
            ),
            Request::Shutdown => {
                self.shutdown();
                (
                    "shutdown",
                    ok_response(
                        seq,
                        id.as_ref(),
                        vec![("shutting_down".to_owned(), Json::Bool(true))],
                    ),
                    Control::Shutdown,
                )
            }
            Request::Analyze(request) => {
                let response = self.enqueue(seq, id, WorkItem::Analyze(request), t0);
                return (response, Control::Continue);
            }
            Request::Invalidate(request) => {
                let response = self.enqueue(seq, id, WorkItem::Invalidate(request), t0);
                return (response, Control::Continue);
            }
        };
        self.observe(Self::wide_event(
            seq,
            id.as_ref(),
            method,
            "ok",
            None,
            t0.elapsed(),
        ));
        (response, control)
    }

    fn metrics_response(&self, seq: u64, id: Option<&Json>, prometheus: bool) -> String {
        if prometheus {
            return ok_response(
                seq,
                id,
                vec![
                    ("format".to_owned(), Json::Str("prometheus".to_owned())),
                    (
                        "exposition".to_owned(),
                        Json::Str(snapshot().to_prometheus()),
                    ),
                ],
            );
        }
        // The snapshot renders as a pretty multi-line document;
        // re-emit it compactly so the response stays on one line.
        let doc = snapshot().to_json();
        let metrics = match crate::json::parse(&doc) {
            Ok(value) => value,
            Err(_) => Json::Str(doc),
        };
        ok_response(seq, id, vec![("metrics".to_owned(), metrics)])
    }

    fn telemetry_response(&self, seq: u64, id: Option<&Json>) -> String {
        let samples: Vec<Json> = self
            .tail
            .samples()
            .iter()
            .map(|event| Json::Raw(event.to_ndjson()))
            .collect();
        ok_response(
            seq,
            id,
            vec![
                (
                    "tail_keep".to_owned(),
                    Json::Num(self.config.tail_keep as f64),
                ),
                ("samples".to_owned(), Json::Arr(samples)),
            ],
        )
    }

    fn enqueue(&self, seq: u64, id: Option<Json>, work: WorkItem, t0: Instant) -> String {
        let method = work.method();
        let ctx = Arc::new(RequestCtx::new(seq, id, self.config.request_timeout));
        let (reply, receiver) = mpsc::channel();
        let outcome: &str;
        let response = match self.queue.try_push(Job {
            ctx: Arc::clone(&ctx),
            work,
            reply,
        }) {
            Err(PushError::Full) => {
                count("serve.rejected", 1);
                outcome = "error:429";
                error_response(seq, ctx.client_id.as_ref(), 429, "queue full, retry later")
            }
            Err(PushError::Closed) => {
                count("serve.rejected", 1);
                outcome = "error:503";
                error_response(seq, ctx.client_id.as_ref(), 503, "daemon is shutting down")
            }
            Ok(()) => {
                count("serve.accepted", 1);
                match receiver.recv_timeout(self.config.request_timeout) {
                    Ok(Ok(result)) => {
                        self.served.fetch_add(1, Ordering::SeqCst);
                        outcome = "ok";
                        ok_response(
                            seq,
                            ctx.client_id.as_ref(),
                            vec![("result".to_owned(), result)],
                        )
                    }
                    Ok(Err(message)) => {
                        outcome = "error:500";
                        error_response(seq, ctx.client_id.as_ref(), 500, &message)
                    }
                    Err(_) => {
                        count("serve.timeouts", 1);
                        outcome = "error:504";
                        error_response(seq, ctx.client_id.as_ref(), 504, "request timed out")
                    }
                }
            }
        };
        time("serve.request", t0.elapsed());
        self.observe(Self::wide_event(
            seq,
            ctx.client_id.as_ref(),
            method,
            outcome,
            Some(&ctx),
            t0.elapsed(),
        ));
        response
    }
}

/// Serves the protocol over stdin/stdout until EOF or a shutdown request,
/// then drains the queue.
pub fn run_stdio(daemon: &Arc<Daemon>) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = daemon.handle_line(&line);
        let mut out = stdout.lock();
        writeln!(out, "{response}")?;
        out.flush()?;
        if control == Control::Shutdown {
            break;
        }
    }
    daemon.shutdown();
    daemon.join();
    Ok(())
}

/// Binds the daemon's loopback listener (`port` 0 picks a free port).
pub fn bind(port: u16) -> io::Result<TcpListener> {
    TcpListener::bind(("127.0.0.1", port))
}

fn handle_conn(daemon: &Arc<Daemon>, stream: TcpStream) -> io::Result<()> {
    // One-line request/response traffic: Nagle + delayed ACK would add
    // ~40ms stalls per exchange on loopback.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = io::BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = daemon.handle_line(&line);
        writeln!(writer, "{response}")?;
        writer.flush()?;
        if control == Control::Shutdown {
            break;
        }
    }
    Ok(())
}

/// Accepts loopback connections (one thread each) until a shutdown request
/// arrives on any of them, then drains and joins everything.
pub fn run_tcp(daemon: &Arc<Daemon>, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if daemon.draining() {
            break;
        }
        let stream = stream?;
        let daemon = Arc::clone(daemon);
        conns.push(std::thread::spawn(move || {
            let _ = handle_conn(&daemon, stream);
            if daemon.draining() {
                // Wake the accept loop so it can observe the drain flag.
                let _ = TcpStream::connect(addr);
            }
        }));
    }
    for conn in conns {
        let _ = conn.join();
    }
    daemon.shutdown();
    daemon.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::sync::Barrier;

    /// Echoes the request back; optionally announces entry on a channel
    /// and parks on a barrier so tests can control worker occupancy.
    struct Mock {
        entered: Option<Mutex<mpsc::Sender<()>>>,
        gate: Option<Arc<Barrier>>,
        delay: Duration,
    }

    impl Mock {
        fn fast() -> Arc<Mock> {
            Arc::new(Mock {
                entered: None,
                gate: None,
                delay: Duration::ZERO,
            })
        }

        fn gated() -> (Arc<Mock>, mpsc::Receiver<()>, Arc<Barrier>) {
            let (tx, rx) = mpsc::channel();
            let gate = Arc::new(Barrier::new(2));
            let mock = Arc::new(Mock {
                entered: Some(Mutex::new(tx)),
                gate: Some(Arc::clone(&gate)),
                delay: Duration::ZERO,
            });
            (mock, rx, gate)
        }
    }

    impl Service for Mock {
        fn analyze(&self, ctx: &RequestCtx, request: &AnalyzeRequest) -> Result<Json, String> {
            if let Some(entered) = &self.entered {
                let _ = entered.lock().unwrap().send(());
            }
            if let Some(gate) = &self.gate {
                gate.wait();
            }
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            ctx.mark("mock_us", Duration::from_micros(5));
            ctx.add_cache_hits(2);
            ctx.set_content_key(format!("mock-{}", request.paths.len()));
            if request.paths == ["boom"] {
                return Err("analysis failed".into());
            }
            Ok(Json::Obj(vec![(
                "paths".to_owned(),
                Json::Arr(request.paths.iter().cloned().map(Json::Str).collect()),
            )]))
        }

        fn invalidate(
            &self,
            ctx: &RequestCtx,
            request: &InvalidateRequest,
        ) -> Result<Json, String> {
            ctx.mark_count("dirty_files", request.paths.len() as u64);
            if request.paths == ["boom"] {
                return Err("invalidate failed".into());
            }
            Ok(Json::Obj(vec![(
                "invalidated".to_owned(),
                Json::Num(request.paths.len() as f64),
            )]))
        }

        fn status(&self) -> Vec<(String, Json)> {
            vec![("mock".to_owned(), Json::Bool(true))]
        }
    }

    fn line(daemon: &Arc<Daemon>, request: &str) -> Json {
        let (response, _) = daemon.handle_line(request);
        parse(&response).unwrap()
    }

    fn seq_of(v: &Json) -> f64 {
        v.get("seq").and_then(Json::as_num).expect("seq present")
    }

    #[test]
    fn analyze_round_trip() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        let v = line(&daemon, r#"{"cmd":"analyze","paths":["p1"],"id":9}"#);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id"), Some(&Json::Num(9.0)));
        assert_eq!(seq_of(&v), 1.0);
        let paths = v.get("result").and_then(|r| r.get("paths")).unwrap();
        assert_eq!(paths.as_arr().unwrap(), [Json::Str("p1".into())]);
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn seq_is_monotonic_across_requests() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        let a = line(&daemon, r#"{"cmd":"status"}"#);
        let b = line(&daemon, r#"{"cmd":"analyze","paths":["p"]}"#);
        let c = line(&daemon, "garbage");
        assert_eq!(seq_of(&a), 1.0);
        assert_eq!(seq_of(&b), 2.0);
        assert_eq!(seq_of(&c), 3.0, "even unparseable lines consume a seq");
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn invalidate_round_trips_through_the_queue() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        let v = line(
            &daemon,
            r#"{"cmd":"invalidate","paths":["p/a.php"],"id":"inv"}"#,
        );
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id"), Some(&Json::Str("inv".into())));
        assert_eq!(seq_of(&v), 1.0);
        let n = v.get("result").and_then(|r| r.get("invalidated")).unwrap();
        assert_eq!(n, &Json::Num(1.0));
        // Failures surface as 500 with seq and id, like analyze.
        let e = line(
            &daemon,
            r#"{"cmd":"invalidate","paths":["boom"],"id":"i2"}"#,
        );
        assert_eq!(e.get("code"), Some(&Json::Num(500.0)));
        assert_eq!(e.get("id"), Some(&Json::Str("i2".into())));
        assert_eq!(seq_of(&e), 2.0);
        // The wide event records the method and the dirty-set size mark.
        let t = line(&daemon, r#"{"cmd":"telemetry"}"#);
        let samples = t.get("samples").and_then(Json::as_arr).unwrap();
        let inv = samples
            .iter()
            .find(|s| s.get("method").and_then(Json::as_str) == Some("invalidate"))
            .expect("invalidate wide event retained");
        assert!(
            inv.get("marks")
                .and_then(|m| m.get("dirty_files"))
                .is_some(),
            "dirty-set size mark surfaces in the wide event"
        );
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn field_validation_400s_echo_seq_and_client_id() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        for bad in [
            r#"{"cmd":"invalidate","paths":[],"id":"e-1"}"#,
            r#"{"cmd":"analyze","paths":[],"id":"e-1"}"#,
            r#"{"cmd":"analyze","paths":["p"],"buffers":[],"id":"e-1"}"#,
        ] {
            let v = line(&daemon, bad);
            assert_eq!(v.get("code"), Some(&Json::Num(400.0)), "line: {bad}");
            assert!(seq_of(&v) > 0.0, "400 replies carry the seq: {bad}");
            assert_eq!(
                v.get("id"),
                Some(&Json::Str("e-1".into())),
                "400 replies echo the client id: {bad}"
            );
        }
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn malformed_and_failing_requests_report_codes() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        let bad = line(&daemon, "garbage");
        assert_eq!(bad.get("code"), Some(&Json::Num(400.0)));
        assert!(seq_of(&bad) > 0.0, "400 replies still carry the seq");
        let v = line(
            &daemon,
            r#"{"cmd":"analyze","paths":["boom"],"id":"fail-1"}"#,
        );
        assert_eq!(v.get("code"), Some(&Json::Num(500.0)));
        assert_eq!(v.get("error"), Some(&Json::Str("analysis failed".into())));
        assert_eq!(v.get("id"), Some(&Json::Str("fail-1".into())));
        assert!(seq_of(&v) > 0.0, "500 replies echo seq and id");
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn status_and_metrics_report_daemon_state() {
        phpsafe_obs::set_enabled(true);
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        line(&daemon, r#"{"cmd":"analyze","paths":["p"]}"#);
        let status = line(&daemon, r#"{"cmd":"status"}"#);
        assert_eq!(status.get("served"), Some(&Json::Num(1.0)));
        assert_eq!(status.get("draining"), Some(&Json::Bool(false)));
        assert_eq!(status.get("mock"), Some(&Json::Bool(true)));
        let (metrics, _) = daemon.handle_line(r#"{"cmd":"metrics"}"#);
        assert!(
            metrics.contains("serve.requests"),
            "metrics reply should carry serve.* counters: {metrics}"
        );
        assert!(
            metrics.contains("serve.request.queue_wait"),
            "queue-wait histogram should be declared up front: {metrics}"
        );
        assert!(
            metrics.contains("events.dropped"),
            "events.dropped should be declared up front: {metrics}"
        );
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn metrics_prometheus_format_returns_exposition_text() {
        phpsafe_obs::set_enabled(true);
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        line(&daemon, r#"{"cmd":"analyze","paths":["p"]}"#);
        let v = line(&daemon, r#"{"cmd":"metrics","format":"prometheus","id":3}"#);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id"), Some(&Json::Num(3.0)));
        assert_eq!(v.get("format"), Some(&Json::Str("prometheus".into())));
        let text = v.get("exposition").and_then(Json::as_str).unwrap();
        assert!(text.contains("phpsafe_serve_requests"), "got: {text}");
        assert!(text.contains("# TYPE phpsafe_serve_request_us histogram"));
        assert!(text.contains("phpsafe_serve_request_us_bucket{le=\"+Inf\"}"));
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn telemetry_tail_retains_slow_and_errored_requests() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        line(&daemon, r#"{"cmd":"analyze","paths":["ok-1"],"id":"a"}"#);
        line(&daemon, r#"{"cmd":"analyze","paths":["boom"],"id":"b"}"#);
        let v = line(&daemon, r#"{"cmd":"telemetry"}"#);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("tail_keep"), Some(&Json::Num(8.0)));
        let samples = v.get("samples").and_then(Json::as_arr).unwrap();
        let outcomes: Vec<&str> = samples
            .iter()
            .filter_map(|s| s.get("outcome").and_then(Json::as_str))
            .collect();
        assert!(outcomes.contains(&"ok"), "slow tail retained: {outcomes:?}");
        assert!(
            outcomes.contains(&"error:500"),
            "errored request retained: {outcomes:?}"
        );
        let err = samples
            .iter()
            .find(|s| s.get("outcome").and_then(Json::as_str) == Some("error:500"))
            .unwrap();
        assert_eq!(err.get("id"), Some(&Json::Str("b".into())));
        assert_eq!(err.get("method"), Some(&Json::Str("analyze".into())));
        assert!(
            err.get("marks").and_then(|m| m.get("mock_us")).is_some(),
            "service marks surface in the wide event"
        );
        assert_eq!(err.get("cache_hits"), Some(&Json::Num(2.0)));
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn telemetry_sink_streams_one_ndjson_line_per_request() {
        let dir = std::env::temp_dir().join(format!("phpsafe-serve-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("telemetry.ndjson");
        let daemon = Daemon::start(
            Mock::fast(),
            ServerConfig {
                telemetry_out: Some(out.clone()),
                ..ServerConfig::default()
            },
        );
        line(&daemon, r#"{"cmd":"analyze","paths":["p"],"id":1}"#);
        line(&daemon, r#"{"cmd":"status"}"#);
        line(&daemon, "garbage");
        daemon.shutdown();
        daemon.join();
        let text = std::fs::read_to_string(&out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "one wide event per request: {text}");
        for l in &lines {
            let v = parse(l).expect("every line is valid JSON");
            assert!(v.get("seq").is_some());
            assert!(v.get("method").is_some());
            assert!(v.get("outcome").is_some());
        }
        assert!(lines[2].contains("\"outcome\":\"error:400\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_queue_rejects_with_429_then_drains() {
        let (service, entered, gate) = Mock::gated();
        let daemon = Daemon::start(
            service,
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServerConfig::default()
            },
        );
        // First request: the lone worker picks it up and parks on the gate.
        let first = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || line(&daemon, r#"{"cmd":"analyze","paths":["a"]}"#))
        };
        entered.recv().unwrap(); // worker is busy with "a", queue is empty
                                 // Second request fills the lone queue slot; third must be shed.
        let second = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || line(&daemon, r#"{"cmd":"analyze","paths":["b"]}"#))
        };
        while daemon.queue.depth() == 0 {
            std::thread::yield_now();
        }
        let rejected = line(&daemon, r#"{"cmd":"analyze","paths":["c"],"id":"shed-me"}"#);
        assert_eq!(rejected.get("code"), Some(&Json::Num(429.0)));
        assert_eq!(
            rejected.get("id"),
            Some(&Json::Str("shed-me".into())),
            "429 replies echo the client id"
        );
        assert!(seq_of(&rejected) > 0.0, "429 replies carry the seq");
        gate.wait(); // release "a"
        entered.recv().unwrap();
        gate.wait(); // release "b"
        assert_eq!(first.join().unwrap().get("ok"), Some(&Json::Bool(true)));
        assert_eq!(second.join().unwrap().get("ok"), Some(&Json::Bool(true)));
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn slow_requests_time_out_with_504() {
        let daemon = Daemon::start(
            Arc::new(Mock {
                entered: None,
                gate: None,
                delay: Duration::from_millis(200),
            }),
            ServerConfig {
                request_timeout: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        );
        let v = line(&daemon, r#"{"cmd":"analyze","paths":["slow"],"id":44}"#);
        assert_eq!(v.get("code"), Some(&Json::Num(504.0)));
        assert_eq!(
            v.get("id"),
            Some(&Json::Num(44.0)),
            "504 replies echo the client id"
        );
        assert_eq!(seq_of(&v), 1.0, "504 replies carry the seq");
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn shutdown_rejects_new_work_but_answers_queued_work() {
        let (service, entered, gate) = Mock::gated();
        let daemon = Daemon::start(
            service,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let inflight = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || line(&daemon, r#"{"cmd":"analyze","paths":["a"]}"#))
        };
        entered.recv().unwrap(); // worker holds "a" at the gate
        let (response, control) = daemon.handle_line(r#"{"cmd":"shutdown"}"#);
        assert_eq!(control, Control::Shutdown);
        assert!(response.contains("shutting_down"));
        let late = line(&daemon, r#"{"cmd":"analyze","paths":["late"],"id":"l-1"}"#);
        assert_eq!(late.get("code"), Some(&Json::Num(503.0)));
        assert_eq!(
            late.get("id"),
            Some(&Json::Str("l-1".into())),
            "503 replies echo the client id"
        );
        assert!(seq_of(&late) > 0.0, "503 replies carry the seq");
        gate.wait(); // let the in-flight request finish during the drain
        assert_eq!(inflight.join().unwrap().get("ok"), Some(&Json::Bool(true)));
        daemon.join();
    }

    #[test]
    fn tcp_transport_round_trips_and_shuts_down() {
        let daemon = Daemon::start(Mock::fast(), ServerConfig::default());
        let listener = bind(0).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || run_tcp(&daemon, listener))
        };
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = io::BufReader::new(stream);
        let mut ask = |req: &str| {
            writeln!(writer, "{req}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            parse(response.trim()).unwrap()
        };
        let v = ask(r#"{"cmd":"analyze","paths":["x"],"id":"t"}"#);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id"), Some(&Json::Str("t".into())));
        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
        server.join().unwrap().unwrap();
    }
}
