//! A minimal JSON value, parser and emitter for the daemon protocol.
//!
//! Self-contained (this crate depends only on `phpsafe-obs`) and sized to
//! what the NDJSON protocol needs: objects, arrays, strings, numbers,
//! booleans, null — plus a [`Json::Raw`] emit-only variant that splices a
//! pre-rendered document into a response without re-parsing it, which is
//! how cached analysis reports stay byte-identical across requests.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
    /// A pre-rendered JSON document, emitted verbatim. Never produced by
    /// the parser; the constructor is responsible for validity.
    Raw(String),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to compact JSON (no added whitespace).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => emit_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_str(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
            Json::Raw(doc) => out.push_str(doc),
        }
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. The full input must be consumed (trailing
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, at: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.at != bytes.len() {
        return Err(format!("trailing input at byte {}", p.at));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are out of scope for the
                            // protocol; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}`"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        for src in [
            r#"{"cmd":"analyze","paths":["a","b"],"jobs":4}"#,
            r#"{"cmd":"status"}"#,
            r#"[1,2.5,-3,true,false,null,"x"]"#,
            r#"{"nested":{"arr":[{"k":"v"}]},"s":"q\"uo\\te\nnl"}"#,
            "{}",
            "[]",
        ] {
            let v = parse(src).unwrap();
            let emitted = v.emit();
            assert_eq!(parse(&emitted).unwrap(), v, "src: {src}");
        }
    }

    #[test]
    fn rejects_garbage() {
        for src in ["", "{", "[1,", "nul", "\"open", "{\"a\" 1}", "12 34"] {
            assert!(parse(src).is_err(), "should reject: {src}");
        }
    }

    #[test]
    fn raw_splices_verbatim() {
        let doc = Json::Obj(vec![(
            "report".into(),
            Json::Raw(r#"{"vulns":[1,2,3]}"#.into()),
        )]);
        assert_eq!(doc.emit(), r#"{"report":{"vulns":[1,2,3]}}"#);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a":"x","n":3,"l":[1]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(3.0));
        assert_eq!(
            v.get("l").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn control_chars_escape() {
        let s = Json::Str("a\u{1}b".into()).emit();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).unwrap(), Json::Str("a\u{1}b".into()));
    }
}
