//! phpsafe-serve: the long-running analysis daemon framework.
//!
//! phpSAFE's batch CLI pays full parse + summary cost on every invocation.
//! This crate keeps an analysis service resident so repeated requests reuse
//! warm caches: an NDJSON request/response protocol ([`proto`]), a bounded
//! request queue with explicit backpressure ([`queue`]), and a worker-pool
//! daemon with per-request timeouts and graceful drain ([`daemon`]) that
//! speaks the protocol over TCP (loopback) or stdio.
//!
//! The crate is deliberately service-agnostic and depends only on
//! `phpsafe-obs`: the actual analysis lives behind the [`Service`] trait,
//! implemented downstream by phpsafe-core's `AnalysisServer`. That keeps
//! the dependency arrow pointing one way (core → serve → obs) and lets the
//! daemon plumbing be unit-tested with mock services, no sockets or parser
//! required.
//!
//! Every request gets a [`RequestCtx`] ([`ctx`]) carrying its
//! server-assigned `seq` and deadline in, and stage timings / cache
//! attribution back out; the daemon turns each context into one
//! wide-event NDJSON record (slowest and errored requests are retained
//! for the `telemetry` command, and the whole stream can be mirrored to
//! a `--telemetry-out` file).
//!
//! Operational metrics are reported through `phpsafe-obs` under the
//! `serve.*` prefix: `serve.requests`, `serve.accepted`, `serve.rejected`,
//! `serve.timeouts`, `serve.errors`, `serve.bad_requests` counters plus
//! `serve.request` / `serve.analyze` / `serve.request.queue_wait` latency
//! histograms, all retrievable in-band via the `metrics` command (as JSON
//! or Prometheus text exposition).

pub mod ctx;
pub mod daemon;
pub mod json;
pub mod proto;
pub mod queue;

pub use ctx::RequestCtx;
pub use daemon::{bind, run_stdio, run_tcp, Control, Daemon, ServerConfig, Service};
pub use json::{parse, Json};
pub use proto::{
    error_response, ok_response, parse_line, AnalyzeRequest, Envelope, InvalidateRequest,
    ParseFailure, Request,
};
pub use queue::{BoundedQueue, PushError};
