//! The daemon's NDJSON wire protocol.
//!
//! Each request is one JSON object per line with a `cmd` field and an
//! optional client-chosen `id` that is echoed back in the response:
//!
//! ```text
//! {"cmd":"analyze","paths":["plugin-a"],"tools":["phpSAFE"],"jobs":4,"id":1}
//! {"cmd":"analyze","paths":["plugin-a"],"buffers":{"plugin-a/admin.php":"<?php ..."}}
//! {"cmd":"invalidate","paths":["plugin-a/admin.php"]}
//! {"cmd":"status"}
//! {"cmd":"metrics"}
//! {"cmd":"metrics","format":"prometheus"}
//! {"cmd":"telemetry"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"code":N,"error":"..."}`
//! with HTTP-flavoured codes (`400` malformed, `429` queue full, `503`
//! draining, `504` request timeout, `500` analysis failure). Every
//! response — success or error, including `400` replies to lines that
//! never parsed — carries the server-assigned request id as `"seq"`, and
//! the client's `id` whenever the line got far enough to reveal one (a
//! field-validation `400` still echoes it), so any reply can be
//! correlated with its wide event in the telemetry stream.

use crate::json::{parse, Json};

/// Parameters of an `analyze` request.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Plugin roots to analyze, in request order.
    pub paths: Vec<String>,
    /// Tool configurations to run; empty means the service default.
    pub tools: Vec<String>,
    /// Worker override for this request; `None` means the daemon default.
    pub jobs: Option<usize>,
    /// Unsaved editor buffers overlaid on the on-disk project: pairs of
    /// `(path, content)` in request order. Paths may be absolute under a
    /// requested root or root-relative.
    pub buffers: Vec<(String, String)>,
}

/// Parameters of an `invalidate` request: files (or roots) whose on-disk
/// contents changed since the daemon last analyzed them.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidateRequest {
    /// Changed paths, in request order.
    pub paths: Vec<String>,
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run analysis over one or more plugin roots.
    Analyze(AnalyzeRequest),
    /// Re-check changed files against the dependency graph and re-warm
    /// affected projects.
    Invalidate(InvalidateRequest),
    /// Report daemon health (queue depth, workers, totals).
    Status,
    /// Return the current phpsafe-obs snapshot. With
    /// `"format":"prometheus"`, the reply carries the text exposition
    /// instead of the JSON document.
    Metrics {
        /// Whether the client asked for the Prometheus text exposition.
        prometheus: bool,
    },
    /// Return the retained wide-event tail (slowest and errored requests).
    Telemetry,
    /// Drain queued requests and stop the daemon.
    Shutdown,
}

/// A request plus the client's optional `id`, echoed in the response.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client correlation id (any JSON value), if supplied.
    pub id: Option<Json>,
    /// The decoded command.
    pub request: Request,
}

fn str_list(value: &Json, what: &str) -> Result<Vec<String>, String> {
    let items = value
        .as_arr()
        .ok_or_else(|| format!("`{what}` must be an array of strings"))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("`{what}` must be an array of strings"))
        })
        .collect()
}

/// A request line that failed to decode. The client `id` is carried
/// whenever the line parsed far enough as JSON to reveal one, so even a
/// `400` reply can echo it (the PR 7 correlation contract).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseFailure {
    /// Client correlation id, if the malformed line still carried one.
    pub id: Option<Json>,
    /// What was wrong with the line.
    pub message: String,
}

/// Decodes one NDJSON request line.
pub fn parse_line(line: &str) -> Result<Envelope, ParseFailure> {
    let value = match parse(line) {
        Ok(v) => v,
        Err(message) => return Err(ParseFailure { id: None, message }),
    };
    if !matches!(value, Json::Obj(_)) {
        return Err(ParseFailure {
            id: None,
            message: "request must be a JSON object".into(),
        });
    }
    let id = value.get("id").cloned();
    match parse_request(&value) {
        Ok(request) => Ok(Envelope { id, request }),
        Err(message) => Err(ParseFailure { id, message }),
    }
}

fn parse_request(value: &Json) -> Result<Request, String> {
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing string field `cmd`")?;
    let request = match cmd {
        "analyze" => {
            let paths = match value.get("paths") {
                Some(v) => str_list(v, "paths")?,
                None => return Err("analyze requires a `paths` array".into()),
            };
            if paths.is_empty() {
                return Err("analyze requires at least one path".into());
            }
            let tools = match value.get("tools") {
                Some(v) => str_list(v, "tools")?,
                None => Vec::new(),
            };
            let jobs = match value.get("jobs") {
                None => None,
                Some(v) => {
                    let n = v.as_num().ok_or("`jobs` must be a number")?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err("`jobs` must be a non-negative integer".into());
                    }
                    Some(n as usize)
                }
            };
            let buffers = match value.get("buffers") {
                None => Vec::new(),
                Some(Json::Obj(entries)) => {
                    let mut buffers = Vec::new();
                    for (path, content) in entries {
                        let content = content.as_str().ok_or("`buffers` values must be strings")?;
                        buffers.push((path.clone(), content.to_owned()));
                    }
                    buffers
                }
                Some(_) => return Err("`buffers` must be an object of path -> content".into()),
            };
            Request::Analyze(AnalyzeRequest {
                paths,
                tools,
                jobs,
                buffers,
            })
        }
        "invalidate" => {
            let paths = match value.get("paths") {
                Some(v) => str_list(v, "paths")?,
                None => return Err("invalidate requires a `paths` array".into()),
            };
            if paths.is_empty() {
                return Err("invalidate requires at least one path".into());
            }
            Request::Invalidate(InvalidateRequest { paths })
        }
        "status" => Request::Status,
        "metrics" => {
            let prometheus = match value.get("format") {
                None => false,
                Some(v) => match v.as_str() {
                    Some("prometheus") => true,
                    Some("json") => false,
                    _ => return Err("`format` must be \"json\" or \"prometheus\"".into()),
                },
            };
            Request::Metrics { prometheus }
        }
        "telemetry" => Request::Telemetry,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown cmd `{other}`")),
    };
    Ok(request)
}

fn envelope(ok: bool, seq: u64, id: Option<&Json>, mut fields: Vec<(String, Json)>) -> String {
    let mut all = vec![
        ("ok".to_owned(), Json::Bool(ok)),
        ("seq".to_owned(), Json::Num(seq as f64)),
    ];
    if let Some(id) = id {
        all.push(("id".to_owned(), id.clone()));
    }
    all.append(&mut fields);
    Json::Obj(all).emit()
}

/// Renders a success response line:
/// `{"ok":true,"seq":N,"id":...,<fields>}`.
pub fn ok_response(seq: u64, id: Option<&Json>, fields: Vec<(String, Json)>) -> String {
    envelope(true, seq, id, fields)
}

/// Renders an error response line with an HTTP-flavoured `code`. The
/// server `seq` is present even when the request never parsed (no `id`
/// to echo), so every shed or failed request stays traceable.
pub fn error_response(seq: u64, id: Option<&Json>, code: u32, message: &str) -> String {
    envelope(
        false,
        seq,
        id,
        vec![
            ("code".to_owned(), Json::Num(code as f64)),
            ("error".to_owned(), Json::Str(message.to_owned())),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_analyze_with_all_fields() {
        let env = parse_line(
            r#"{"cmd":"analyze","paths":["a","b"],"tools":["phpSAFE"],"jobs":4,"id":7}"#,
        )
        .unwrap();
        assert_eq!(env.id, Some(Json::Num(7.0)));
        assert_eq!(
            env.request,
            Request::Analyze(AnalyzeRequest {
                paths: vec!["a".into(), "b".into()],
                tools: vec!["phpSAFE".into()],
                jobs: Some(4),
                buffers: Vec::new(),
            })
        );
    }

    #[test]
    fn parses_analyze_with_dirty_buffers() {
        let env = parse_line(
            r#"{"cmd":"analyze","paths":["p"],"buffers":{"p/a.php":"<?php 1;","b.php":""}}"#,
        )
        .unwrap();
        match env.request {
            Request::Analyze(req) => {
                assert_eq!(
                    req.buffers,
                    [
                        ("p/a.php".to_owned(), "<?php 1;".to_owned()),
                        ("b.php".to_owned(), String::new()),
                    ]
                );
            }
            other => panic!("expected analyze, got {other:?}"),
        }
        assert!(parse_line(r#"{"cmd":"analyze","paths":["p"],"buffers":[]}"#).is_err());
        assert!(parse_line(r#"{"cmd":"analyze","paths":["p"],"buffers":{"a.php":7}}"#).is_err());
    }

    #[test]
    fn parses_invalidate() {
        let env = parse_line(r#"{"cmd":"invalidate","paths":["p/a.php"],"id":"inv-1"}"#).unwrap();
        assert_eq!(env.id, Some(Json::Str("inv-1".into())));
        assert_eq!(
            env.request,
            Request::Invalidate(InvalidateRequest {
                paths: vec!["p/a.php".into()],
            })
        );
        assert!(parse_line(r#"{"cmd":"invalidate"}"#).is_err());
        assert!(parse_line(r#"{"cmd":"invalidate","paths":[]}"#).is_err());
        assert!(parse_line(r#"{"cmd":"invalidate","paths":[3]}"#).is_err());
    }

    #[test]
    fn parse_failures_keep_the_client_id_when_one_was_sent() {
        // Field-validation failures happen after the id was decoded; the
        // daemon echoes it in the 400 reply.
        for line in [
            r#"{"cmd":"invalidate","paths":[],"id":"bad-1"}"#,
            r#"{"cmd":"analyze","id":"bad-1"}"#,
            r#"{"cmd":"frobnicate","id":"bad-1"}"#,
            r#"{"cmd":"analyze","paths":["p"],"buffers":3,"id":"bad-1"}"#,
        ] {
            let failure = parse_line(line).unwrap_err();
            assert_eq!(
                failure.id,
                Some(Json::Str("bad-1".into())),
                "id lost for: {line}"
            );
        }
        // A line that never parsed as JSON has no id to echo.
        assert_eq!(parse_line("garbage").unwrap_err().id, None);
    }

    #[test]
    fn parses_bare_commands() {
        for (line, want) in [
            (r#"{"cmd":"status"}"#, Request::Status),
            (
                r#"{"cmd":"metrics"}"#,
                Request::Metrics { prometheus: false },
            ),
            (r#"{"cmd":"telemetry"}"#, Request::Telemetry),
            (r#"{"cmd":"shutdown"}"#, Request::Shutdown),
        ] {
            let env = parse_line(line).unwrap();
            assert_eq!(env.id, None);
            assert_eq!(env.request, want);
        }
    }

    #[test]
    fn parses_metrics_formats() {
        assert_eq!(
            parse_line(r#"{"cmd":"metrics","format":"prometheus"}"#)
                .unwrap()
                .request,
            Request::Metrics { prometheus: true }
        );
        assert_eq!(
            parse_line(r#"{"cmd":"metrics","format":"json"}"#)
                .unwrap()
                .request,
            Request::Metrics { prometheus: false }
        );
        assert!(parse_line(r#"{"cmd":"metrics","format":"xml"}"#).is_err());
        assert!(parse_line(r#"{"cmd":"metrics","format":7}"#).is_err());
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "not json",
            r#""just a string""#,
            r#"{"paths":["a"]}"#,
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"analyze"}"#,
            r#"{"cmd":"analyze","paths":[]}"#,
            r#"{"cmd":"analyze","paths":[1]}"#,
            r#"{"cmd":"analyze","paths":["a"],"jobs":-1}"#,
            r#"{"cmd":"analyze","paths":["a"],"jobs":1.5}"#,
        ] {
            assert!(parse_line(line).is_err(), "should reject: {line}");
        }
    }

    #[test]
    fn responses_echo_seq_and_id() {
        let id = Json::Str("req-1".into());
        assert_eq!(
            ok_response(3, Some(&id), vec![("n".into(), Json::Num(2.0))]),
            r#"{"ok":true,"seq":3,"id":"req-1","n":2}"#
        );
        assert_eq!(
            error_response(4, Some(&id), 429, "queue full"),
            r#"{"ok":false,"seq":4,"id":"req-1","code":429,"error":"queue full"}"#
        );
        assert_eq!(
            error_response(5, None, 400, "bad"),
            r#"{"ok":false,"seq":5,"code":400,"error":"bad"}"#
        );
    }
}
