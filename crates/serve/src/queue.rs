//! A bounded MPMC queue with explicit backpressure.
//!
//! The daemon's transport threads `try_push` requests and immediately
//! reject the caller with a *queue full* error when the bound is hit —
//! load shedding at the edge instead of unbounded buffering — while
//! analysis workers block on [`BoundedQueue::pop`]. Closing the queue
//! (graceful shutdown) wakes every blocked worker; items already queued
//! are still drained so accepted requests always get a response.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed the request.
    Full,
    /// The queue is closed (shutting down); no new work is accepted.
    Closed,
}

struct State<T> {
    /// Each item is stored with its enqueue instant so consumers can
    /// attribute queue wait to the request that paid it.
    items: VecDeque<(Instant, T)>,
    closed: bool,
}

/// A Mutex + Condvar bounded queue. `T` is typically one queued request
/// plus its response channel.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    takeable: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            takeable: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back((Instant::now(), item));
        drop(state);
        self.takeable.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means shutdown.
    pub fn pop(&self) -> Option<T> {
        self.pop_with_wait().map(|(item, _)| item)
    }

    /// Like [`BoundedQueue::pop`], but also reports how long the item sat
    /// queued between `try_push` and this dequeue.
    pub fn pop_with_wait(&self) -> Option<(T, Duration)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some((enqueued, item)) = state.items.pop_front() {
                return Some((item, enqueued.elapsed()));
            }
            if state.closed {
                return None;
            }
            state = self.takeable.wait(state).unwrap();
        }
    }

    /// Stops accepting new items and wakes every blocked consumer. Items
    /// already queued are still handed out.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.takeable.notify_all();
    }

    /// Items currently queued (racy; for metrics only).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_after_close() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed));
    }

    #[test]
    fn close_drains_queued_items_then_returns_none() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn pop_reports_time_spent_queued() {
        let q = BoundedQueue::new(2);
        q.try_push("waited").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let (item, wait) = q.pop_with_wait().unwrap();
        assert_eq!(item, "waited");
        assert!(wait >= Duration::from_millis(5), "wait={wait:?}");
    }

    #[test]
    fn workers_drain_concurrently() {
        let q = Arc::new(BoundedQueue::new(4));
        let total = 100u64;
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut sent = 0;
                while sent < total {
                    match q.try_push(sent) {
                        Ok(()) => sent += 1,
                        Err(PushError::Full) => std::thread::yield_now(),
                        Err(PushError::Closed) => panic!("closed early"),
                    }
                }
                q.close();
            })
        };
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        producer.join().unwrap();
        let mut all: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort();
        assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}
