//! Drupal 7 profile — the first of the paper's stated extension targets
//! (§VI: *"analysis of other CMS applications like Drupal or Joomla"*).
//!
//! Covers the Drupal 7 APIs relevant to XSS/SQLi taint analysis: the
//! database abstraction (`db_query`, `db_fetch_*`), the variable system
//! (database-backed configuration), and the output sanitizers
//! (`check_plain`, `filter_xss`, `check_url`).

use crate::model::*;
use crate::php::generic_php;

/// Builds the Drupal-specific additions only.
pub fn drupal_additions() -> TaintConfig {
    let mut c = TaintConfig::empty("drupal-additions");

    // ---- sources ----
    for f in [
        "variable_get",
        "db_fetch_object",
        "db_fetch_array",
        "db_result",
        "field_get_items",
        "node_load_value", // synthetic accessor used by contrib modules
    ] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::Database,
        });
    }
    // The database connection object (Drupal 7 DBTNG).
    c.add_known_object("$database", "databaseconnection");
    for m in ["query", "queryRange"] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::method("databaseconnection", m),
            kind: SourceKind::Database,
        });
        c.add_sink(SinkSpec {
            name: FuncName::method("databaseconnection", m),
            class: VulnClass::Sqli,
            args: Some(vec![0]),
        });
    }

    // ---- sanitizers ----
    for f in [
        "check_plain",
        "filter_xss",
        "filter_xss_admin",
        "check_markup",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss],
        });
    }
    c.add_sanitizer(SanitizerSpec {
        name: FuncName::function("check_url"),
        protects: vec![VulnClass::Xss],
    });
    for f in ["db_escape_string", "db_escape_table", "db_escape_field"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Sqli],
        });
    }

    // ---- reverts ----
    c.add_revert(RevertSpec {
        name: FuncName::function("decode_entities"),
    });

    // ---- sinks ----
    for f in ["db_query", "db_query_range", "db_select_raw"] {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class: VulnClass::Sqli,
            args: Some(vec![0]),
        });
    }
    for f in ["drupal_set_message", "drupal_set_title", "theme_output"] {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class: VulnClass::Xss,
            args: Some(vec![0]),
        });
    }

    c
}

/// The complete Drupal 7 profile (generic PHP + Drupal additions).
pub fn drupal() -> TaintConfig {
    let mut c = generic_php();
    c.profile = "drupal".into();
    c.extend_with(&drupal_additions());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_query_is_sqli_sink() {
        let c = drupal();
        assert!(c
            .sink_specs(None, "db_query")
            .iter()
            .any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn check_plain_protects_xss_only() {
        let c = drupal();
        assert_eq!(c.sanitizer_protects(None, "check_plain"), &[VulnClass::Xss]);
    }

    #[test]
    fn variable_get_is_database_source() {
        let c = drupal();
        assert_eq!(
            c.source_function(None, "variable_get"),
            Some(SourceKind::Database)
        );
    }

    #[test]
    fn layers_on_generic_php() {
        let c = drupal();
        assert!(c.superglobal_kind("$_GET").is_some());
        assert!(c.is_revert(None, "stripslashes"));
        assert_eq!(c.profile, "drupal");
    }

    #[test]
    fn no_wordpress_knowledge() {
        let c = drupal();
        assert!(c.source_function(Some("wpdb"), "get_results").is_none());
        assert!(c.sanitizer_protects(None, "esc_html").is_empty());
    }

    #[test]
    fn dbtng_object_methods() {
        let c = drupal();
        assert_eq!(
            c.known_object_class("$database"),
            Some("databaseconnection")
        );
        assert_eq!(
            c.source_function(Some("databaseconnection"), "query"),
            Some(SourceKind::Database)
        );
    }
}
