//! Drupal 7 profile — the first of the paper's stated extension targets
//! (§VI: *"analysis of other CMS applications like Drupal or Joomla"*).
//!
//! Covers the Drupal 7 APIs relevant to taint analysis: the database
//! abstraction (`db_query`, `db_fetch_*`), the variable system
//! (database-backed configuration), the output sanitizers (`check_plain`,
//! `filter_xss`, `check_url`), and the redirect/file/HTTP helpers backing
//! the extended vulnerability classes.

use crate::model::*;
use crate::php::{
    fn_sources, generic_php, method_sinks, method_sources, sanitizers, sinks, HTML_ENCODING,
    SQL_ESCAPING,
};

/// Builds the Drupal-specific additions only.
pub fn drupal_additions() -> TaintConfig {
    let mut c = TaintConfig::empty("drupal-additions");

    // ---- sources ----
    fn_sources(
        &mut c,
        SourceKind::Database,
        &[
            "variable_get",
            "db_fetch_object",
            "db_fetch_array",
            "db_result",
            "field_get_items",
            "node_load_value", // synthetic accessor used by contrib modules
        ],
    );
    // The database connection object (Drupal 7 DBTNG).
    c.add_known_object("$database", "databaseconnection");
    method_sources(
        &mut c,
        "databaseconnection",
        SourceKind::Database,
        &["query", "queryRange"],
    );
    method_sinks(
        &mut c,
        "databaseconnection",
        VulnClass::Sqli,
        Some(&[0]),
        &["query", "queryRange"],
    );

    // ---- sanitizers ----
    sanitizers(
        &mut c,
        &HTML_ENCODING,
        &[
            "check_plain",
            "filter_xss",
            "filter_xss_admin",
            "check_markup",
        ],
    );
    // check_url sanitizes a URL for markup *and* validates its protocol.
    sanitizers(&mut c, &[VulnClass::Xss, VulnClass::Ssrf], &["check_url"]);
    sanitizers(
        &mut c,
        &SQL_ESCAPING,
        &["db_escape_string", "db_escape_table", "db_escape_field"],
    );

    // ---- reverts ----
    c.add_revert(RevertSpec {
        name: FuncName::function("decode_entities"),
    });

    // ---- sinks ----
    sinks(
        &mut c,
        VulnClass::Sqli,
        Some(&[0]),
        &["db_query", "db_query_range", "db_select_raw"],
    );
    sinks(
        &mut c,
        VulnClass::Xss,
        Some(&[0]),
        &["drupal_set_message", "drupal_set_title", "theme_output"],
    );
    // Redirects and outbound HTTP requests.
    sinks(
        &mut c,
        VulnClass::Ssrf,
        Some(&[0]),
        &["drupal_goto", "drupal_http_request"],
    );
    // Unmanaged file API reaches the filesystem directly.
    sinks(
        &mut c,
        VulnClass::PathTraversal,
        Some(&[0]),
        &["file_unmanaged_delete", "drupal_realpath"],
    );
    // file_unmanaged_copy($source, $destination): both paths are sensitive.
    sinks(
        &mut c,
        VulnClass::PathTraversal,
        Some(&[0, 1]),
        &["file_unmanaged_copy", "file_unmanaged_move"],
    );

    c
}

/// The complete Drupal 7 profile (generic PHP + Drupal additions).
pub fn drupal() -> TaintConfig {
    let mut c = generic_php();
    c.profile = "drupal".into();
    c.extend_with(&drupal_additions());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_query_is_sqli_sink() {
        let c = drupal();
        assert!(c
            .sink_specs(None, "db_query")
            .iter()
            .any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn check_plain_protects_xss_only() {
        let c = drupal();
        assert_eq!(c.sanitizer_protects(None, "check_plain"), &[VulnClass::Xss]);
        assert!(!c
            .sanitizer_protects(None, "check_plain")
            .contains(&VulnClass::CmdInjection));
    }

    #[test]
    fn new_class_entries_present() {
        let c = drupal();
        assert!(c
            .sink_specs(None, "drupal_goto")
            .iter()
            .any(|s| s.class == VulnClass::Ssrf));
        assert!(c
            .sink_specs(None, "file_unmanaged_delete")
            .iter()
            .any(|s| s.class == VulnClass::PathTraversal));
        assert_eq!(
            c.sink_specs(None, "file_unmanaged_copy")[0].args,
            Some(vec![0usize, 1])
        );
        let url = c.sanitizer_protects(None, "check_url");
        assert!(url.contains(&VulnClass::Xss) && url.contains(&VulnClass::Ssrf));
        assert!(!url.contains(&VulnClass::Sqli));
        assert_eq!(c.supported_classes(), VulnClass::ALL.to_vec());
    }

    #[test]
    fn variable_get_is_database_source() {
        let c = drupal();
        assert_eq!(
            c.source_function(None, "variable_get"),
            Some(SourceKind::Database)
        );
    }

    #[test]
    fn layers_on_generic_php() {
        let c = drupal();
        assert!(c.superglobal_kind("$_GET").is_some());
        assert!(c.is_revert(None, "stripslashes"));
        assert_eq!(c.profile, "drupal");
    }

    #[test]
    fn no_wordpress_knowledge() {
        let c = drupal();
        assert!(c.source_function(Some("wpdb"), "get_results").is_none());
        assert!(c.sanitizer_protects(None, "esc_html").is_empty());
    }

    #[test]
    fn dbtng_object_methods() {
        let c = drupal();
        assert_eq!(
            c.known_object_class("$database"),
            Some("databaseconnection")
        );
        assert_eq!(
            c.source_function(Some("databaseconnection"), "query"),
            Some(SourceKind::Database)
        );
    }
}
