//! Joomla 2.5/3 profile — the second of the paper's stated extension
//! targets (§VI). Joomla extensions access the request through `JRequest` /
//! `JInput` and the database through the `JDatabase` object.

use crate::model::*;
use crate::php::{
    generic_php, method_sanitizers, method_sinks, method_sources, sanitizers, HTML_ENCODING,
    NEUTRALIZES_EVERYTHING, SQL_ESCAPING,
};

/// Builds the Joomla-specific additions only.
pub fn joomla_additions() -> TaintConfig {
    let mut c = TaintConfig::empty("joomla-additions");

    // ---- sources: the request wrappers ----
    for recv in ["jrequest", "jinput"] {
        method_sources(
            &mut c,
            recv,
            SourceKind::Request,
            &["getVar", "getString", "getCmd", "get"],
        );
    }
    // `getInt`/`getUint` coerce numerically — safe accessors, modeled as
    // sanitizing sources (they return clean data, so simply not sources).
    // ---- sources: database reads ----
    c.add_known_object("$db", "jdatabase");
    c.add_known_object("$dbo", "jdatabase");
    method_sources(
        &mut c,
        "jdatabase",
        SourceKind::Database,
        &[
            "loadResult",
            "loadRow",
            "loadRowList",
            "loadObject",
            "loadObjectList",
            "loadAssoc",
            "loadAssocList",
        ],
    );

    // ---- sanitizers ----
    method_sanitizers(
        &mut c,
        "jdatabase",
        &SQL_ESCAPING,
        &["quote", "escape", "quoteName"],
    );
    sanitizers(
        &mut c,
        &HTML_ENCODING,
        &["jfilteroutput_clean", "htmlspecialchars_joomla"],
    );
    // JFilterInput::clean strips tags *and* validates types — inert output
    // for the whole registry.
    method_sanitizers(&mut c, "jfilterinput", &NEUTRALIZES_EVERYTHING, &["clean"]);
    method_sanitizers(&mut c, "jfilteroutput", &HTML_ENCODING, &["clean"]);

    // ---- sinks ----
    method_sinks(
        &mut c,
        "jdatabase",
        VulnClass::Sqli,
        Some(&[0]),
        &["setQuery", "execute", "query"],
    );
    method_sinks(
        &mut c,
        "japplication",
        VulnClass::Xss,
        Some(&[0]),
        &["enqueueMessage"],
    );
    // JApplication::redirect with a tainted URL is an open redirect.
    method_sinks(
        &mut c,
        "japplication",
        VulnClass::Ssrf,
        Some(&[0]),
        &["redirect"],
    );
    // JFile static helpers reach the filesystem through their path argument.
    method_sinks(
        &mut c,
        "jfile",
        VulnClass::PathTraversal,
        Some(&[0]),
        &["read", "write", "delete", "copy", "move"],
    );
    // JHttp fetches attacker-chosen URLs.
    method_sinks(
        &mut c,
        "jhttp",
        VulnClass::Ssrf,
        Some(&[0]),
        &["get", "post"],
    );
    c.add_known_object("$app", "japplication");
    c.add_known_object("$mainframe", "japplication");

    c
}

/// The complete Joomla profile (generic PHP + Joomla additions).
pub fn joomla() -> TaintConfig {
    let mut c = generic_php();
    c.profile = "joomla".into();
    c.extend_with(&joomla_additions());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jrequest_getvar_is_request_source() {
        let c = joomla();
        assert_eq!(
            c.source_function(Some("jrequest"), "getVar"),
            Some(SourceKind::Request)
        );
    }

    #[test]
    fn jdatabase_is_source_sanitizer_and_sink() {
        let c = joomla();
        assert_eq!(
            c.source_function(Some("jdatabase"), "loadObjectList"),
            Some(SourceKind::Database)
        );
        assert_eq!(
            c.sanitizer_protects(Some("jdatabase"), "quote"),
            &[VulnClass::Sqli]
        );
        assert!(c
            .sink_specs(Some("jdatabase"), "setQuery")
            .iter()
            .any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn new_class_entries_present() {
        let c = joomla();
        assert!(c
            .sink_specs(Some("japplication"), "redirect")
            .iter()
            .any(|s| s.class == VulnClass::Ssrf));
        assert!(c
            .sink_specs(Some("jfile"), "read")
            .iter()
            .any(|s| s.class == VulnClass::PathTraversal));
        for class in VulnClass::ALL {
            assert!(
                c.sanitizer_protects(Some("jfilterinput"), "clean")
                    .contains(&class),
                "jfilterinput::clean must neutralize {class}"
            );
        }
        assert_eq!(c.supported_classes(), VulnClass::ALL.to_vec());
    }

    #[test]
    fn xss_only_sanitizer_keeps_other_labels() {
        let c = joomla();
        let p = c.sanitizer_protects(Some("jfilteroutput"), "clean");
        assert_eq!(p, &[VulnClass::Xss]);
        assert!(!p.contains(&VulnClass::CmdInjection));
    }

    #[test]
    fn known_objects_resolve() {
        let c = joomla();
        assert_eq!(c.known_object_class("$db"), Some("jdatabase"));
        assert_eq!(c.known_object_class("$app"), Some("japplication"));
    }

    #[test]
    fn layers_on_generic_php() {
        let c = joomla();
        assert!(c.superglobal_kind("$_POST").is_some());
        assert_eq!(c.profile, "joomla");
    }
}
