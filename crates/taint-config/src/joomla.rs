//! Joomla 2.5/3 profile — the second of the paper's stated extension
//! targets (§VI). Joomla extensions access the request through `JRequest` /
//! `JInput` and the database through the `JDatabase` object.

use crate::model::*;
use crate::php::generic_php;

/// Builds the Joomla-specific additions only.
pub fn joomla_additions() -> TaintConfig {
    let mut c = TaintConfig::empty("joomla-additions");

    // ---- sources: the request wrappers ----
    for m in ["getVar", "getString", "getCmd", "get"] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::method("jrequest", m),
            kind: SourceKind::Request,
        });
        c.add_source(SourceSpec::Callable {
            name: FuncName::method("jinput", m),
            kind: SourceKind::Request,
        });
    }
    // `getInt`/`getUint` coerce numerically — safe accessors, modeled as
    // sanitizing sources (they return clean data, so simply not sources).
    // ---- sources: database reads ----
    c.add_known_object("$db", "jdatabase");
    c.add_known_object("$dbo", "jdatabase");
    for m in [
        "loadResult",
        "loadRow",
        "loadRowList",
        "loadObject",
        "loadObjectList",
        "loadAssoc",
        "loadAssocList",
    ] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::method("jdatabase", m),
            kind: SourceKind::Database,
        });
    }

    // ---- sanitizers ----
    for m in ["quote", "escape", "quoteName"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::method("jdatabase", m),
            protects: vec![VulnClass::Sqli],
        });
    }
    for f in ["jfilteroutput_clean", "htmlspecialchars_joomla"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss],
        });
    }
    {
        let m = "clean";
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::method("jfilterinput", m),
            protects: vec![VulnClass::Xss, VulnClass::Sqli],
        });
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::method("jfilteroutput", m),
            protects: vec![VulnClass::Xss],
        });
    }

    // ---- sinks ----
    for m in ["setQuery", "execute", "query"] {
        c.add_sink(SinkSpec {
            name: FuncName::method("jdatabase", m),
            class: VulnClass::Sqli,
            args: Some(vec![0]),
        });
    }
    {
        let m = "enqueueMessage";
        c.add_sink(SinkSpec {
            name: FuncName::method("japplication", m),
            class: VulnClass::Xss,
            args: Some(vec![0]),
        });
    }
    c.add_known_object("$app", "japplication");
    c.add_known_object("$mainframe", "japplication");

    c
}

/// The complete Joomla profile (generic PHP + Joomla additions).
pub fn joomla() -> TaintConfig {
    let mut c = generic_php();
    c.profile = "joomla".into();
    c.extend_with(&joomla_additions());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jrequest_getvar_is_request_source() {
        let c = joomla();
        assert_eq!(
            c.source_function(Some("jrequest"), "getVar"),
            Some(SourceKind::Request)
        );
    }

    #[test]
    fn jdatabase_is_source_sanitizer_and_sink() {
        let c = joomla();
        assert_eq!(
            c.source_function(Some("jdatabase"), "loadObjectList"),
            Some(SourceKind::Database)
        );
        assert_eq!(
            c.sanitizer_protects(Some("jdatabase"), "quote"),
            &[VulnClass::Sqli]
        );
        assert!(c
            .sink_specs(Some("jdatabase"), "setQuery")
            .iter()
            .any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn known_objects_resolve() {
        let c = joomla();
        assert_eq!(c.known_object_class("$db"), Some("jdatabase"));
        assert_eq!(c.known_object_class("$app"), Some("japplication"));
    }

    #[test]
    fn layers_on_generic_php() {
        let c = joomla();
        assert!(c.superglobal_kind("$_POST").is_some());
        assert_eq!(c.profile, "joomla");
    }
}
