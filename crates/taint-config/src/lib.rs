//! # taint-config
//!
//! Vulnerability configuration for PHP taint analysis — phpSAFE's
//! *configuration stage* (paper §III.A). A [`TaintConfig`] groups the four
//! sections the paper describes:
//!
//! 1. **sources** — potentially malicious inputs (`$_GET`, file reads,
//!    database reads, `$wpdb->get_results`, …),
//! 2. **sanitizers** — functions that untaint a value for specific
//!    vulnerability classes (`intval`, `htmlentities`, `esc_html`, …),
//! 3. **reverts** — functions that undo sanitization (`stripslashes`, …),
//! 4. **sinks** — sensitive outputs where an attack manifests
//!    (`mysql_query`, `printf`, `$wpdb->query`, …).
//!
//! Two profiles ship out of the box: [`generic_php`] and [`wordpress`]
//! (generic PHP + WordPress API knowledge). Other CMSs are supported by
//! constructing additional profiles with the same builder methods — exactly
//! the extensibility story the paper gives for Drupal/Joomla.
//!
//! ```
//! use taint_config::{wordpress, SourceKind, VulnClass};
//!
//! let cfg = wordpress();
//! assert_eq!(cfg.source_function(Some("wpdb"), "get_results"),
//!            Some(SourceKind::Database));
//! assert_eq!(cfg.sanitizer_protects(None, "esc_html"), &[VulnClass::Xss]);
//! ```

#![warn(missing_docs)]

mod drupal;
mod joomla;
mod model;
mod php;
mod wordpress;

pub use drupal::{drupal, drupal_additions};
pub use joomla::{joomla, joomla_additions};
pub use model::{
    FuncName, RevertSpec, SanitizerSpec, SinkSpec, SourceKind, SourceSpec, TaintConfig,
    TaintLabels, VectorClass, VulnClass,
};
pub use php::generic_php;
pub use wordpress::{wordpress, wordpress_additions};
