//! Configuration model: the four sections of phpSAFE's configuration stage
//! (§III.A) — sources, sanitizers/filters, revert functions and sensitive
//! sinks — plus the input-vector taxonomy of §V.C / Table II.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

// The class registry, input-vector taxonomy and label bitsets live in the
// `vuln-taxonomy` crate; re-exported here so every downstream
// `taint_config::{VulnClass, SourceKind, ...}` import keeps working.
pub use vuln_taxonomy::{SourceKind, TaintLabels, VectorClass, VulnClass};

/// A possibly receiver-qualified callable name, e.g. plain `intval` or
/// `wpdb::get_results` (reachable through `$wpdb->get_results(...)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncName {
    /// Receiver class for methods (`wpdb`), `None` for plain functions.
    /// Stored lowercase.
    pub receiver: Option<String>,
    /// Function or method name, stored lowercase (PHP resolves function
    /// names case-insensitively).
    pub name: String,
}

impl FuncName {
    /// A plain function name.
    pub fn function(name: &str) -> Self {
        FuncName {
            receiver: None,
            name: name.to_ascii_lowercase(),
        }
    }

    /// A method on `class` (e.g. `FuncName::method("wpdb", "get_results")`).
    pub fn method(class: &str, name: &str) -> Self {
        FuncName {
            receiver: Some(class.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
        }
    }
}

impl fmt::Display for FuncName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.receiver {
            Some(r) => write!(f, "{r}::{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A taint source entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceSpec {
    /// A superglobal (or other global) variable whose elements are tainted.
    Superglobal {
        /// Variable name including `$` (e.g. `$_GET`).
        var: String,
        /// Input vector classification.
        kind: SourceKind,
    },
    /// A function/method whose return value is tainted.
    Callable {
        /// Function or method name.
        name: FuncName,
        /// Input vector classification.
        kind: SourceKind,
    },
}

/// A sanitizer entry: calling it untaints its argument for `protects`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerSpec {
    /// Function or method name.
    pub name: FuncName,
    /// Which vulnerability classes the sanitizer protects against.
    pub protects: Vec<VulnClass>,
}

/// A revert entry: calling it undoes prior sanitization (`stripslashes`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevertSpec {
    /// Function or method name.
    pub name: FuncName,
}

/// A sensitive sink entry: passing tainted data to it manifests `class`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkSpec {
    /// Function or method name (`echo`/`print` are handled as language
    /// constructs by the analyzer, not listed here).
    pub name: FuncName,
    /// Vulnerability class this sink manifests.
    pub class: VulnClass,
    /// Argument positions that are sensitive (`None` = all arguments).
    pub args: Option<Vec<usize>>,
}

/// The complete configuration consumed by an analyzer: phpSAFE's
/// `class-vulnerable-input.php`, `class-vulnerable-filter.php` and
/// `class-vulnerable_output.php` rolled into one queryable structure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaintConfig {
    /// Profile name (for reports), e.g. `"php"` or `"wordpress"`.
    pub profile: String,
    superglobals: HashMap<String, SourceKind>,
    source_fns: HashMap<FuncName, SourceKind>,
    sanitizers: HashMap<FuncName, Vec<VulnClass>>,
    reverts: HashMap<FuncName, ()>,
    sinks: HashMap<FuncName, Vec<SinkSpec>>,
    /// Known global object variables mapped to their class, e.g.
    /// `$wpdb` → `wpdb`. This is how phpSAFE resolves `$wpdb->get_results`
    /// without seeing the class definition.
    known_objects: HashMap<String, String>,
}

impl TaintConfig {
    /// An empty configuration (no sources, no sinks — analysis finds
    /// nothing). Useful as a baseline for ablations.
    pub fn empty(profile: &str) -> Self {
        TaintConfig {
            profile: profile.to_string(),
            ..Default::default()
        }
    }

    // --- construction ---

    /// Registers a source.
    pub fn add_source(&mut self, spec: SourceSpec) -> &mut Self {
        match spec {
            SourceSpec::Superglobal { var, kind } => {
                self.superglobals.insert(var, kind);
            }
            SourceSpec::Callable { name, kind } => {
                self.source_fns.insert(name, kind);
            }
        }
        self
    }

    /// Registers a sanitizer.
    pub fn add_sanitizer(&mut self, spec: SanitizerSpec) -> &mut Self {
        self.sanitizers
            .entry(spec.name)
            .or_default()
            .extend(spec.protects);
        self
    }

    /// Registers a revert function.
    pub fn add_revert(&mut self, spec: RevertSpec) -> &mut Self {
        self.reverts.insert(spec.name, ());
        self
    }

    /// Registers a sink.
    pub fn add_sink(&mut self, spec: SinkSpec) -> &mut Self {
        self.sinks.entry(spec.name.clone()).or_default().push(spec);
        self
    }

    /// Declares a well-known global object (`$wpdb` is a `wpdb`).
    pub fn add_known_object(&mut self, var: &str, class: &str) -> &mut Self {
        self.known_objects
            .insert(var.to_string(), class.to_ascii_lowercase());
        self
    }

    /// Merges `other` into `self` (used to layer WordPress on generic PHP).
    pub fn extend_with(&mut self, other: &TaintConfig) -> &mut Self {
        self.superglobals
            .extend(other.superglobals.iter().map(|(k, v)| (k.clone(), *v)));
        self.source_fns
            .extend(other.source_fns.iter().map(|(k, v)| (k.clone(), *v)));
        for (k, v) in &other.sanitizers {
            self.sanitizers
                .entry(k.clone())
                .or_default()
                .extend(v.iter().copied());
        }
        self.reverts
            .extend(other.reverts.keys().map(|k| (k.clone(), ())));
        for (k, v) in &other.sinks {
            self.sinks
                .entry(k.clone())
                .or_default()
                .extend(v.iter().cloned());
        }
        self.known_objects.extend(
            other
                .known_objects
                .iter()
                .map(|(k, v)| (k.clone(), v.clone())),
        );
        self
    }

    // --- queries (all case-insensitive on function names) ---

    /// Is `var` (e.g. `$_GET`) a tainted superglobal? Returns its kind.
    pub fn superglobal_kind(&self, var: &str) -> Option<SourceKind> {
        self.superglobals.get(var).copied()
    }

    /// Is a call to `name` (optionally on receiver class `receiver`) a
    /// taint source? Returns its kind.
    pub fn source_function(&self, receiver: Option<&str>, name: &str) -> Option<SourceKind> {
        let key = match receiver {
            Some(r) => FuncName::method(r, name),
            None => FuncName::function(name),
        };
        self.source_fns.get(&key).copied()
    }

    /// Which vulnerability classes does `name` sanitize? Empty slice means
    /// "not a sanitizer".
    pub fn sanitizer_protects(&self, receiver: Option<&str>, name: &str) -> &[VulnClass] {
        let key = match receiver {
            Some(r) => FuncName::method(r, name),
            None => FuncName::function(name),
        };
        self.sanitizers
            .get(&key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Is `name` a revert function (undoes sanitization)?
    pub fn is_revert(&self, receiver: Option<&str>, name: &str) -> bool {
        let key = match receiver {
            Some(r) => FuncName::method(r, name),
            None => FuncName::function(name),
        };
        self.reverts.contains_key(&key)
    }

    /// Sink specs for a call to `name` (possibly several classes).
    pub fn sink_specs(&self, receiver: Option<&str>, name: &str) -> &[SinkSpec] {
        let key = match receiver {
            Some(r) => FuncName::method(r, name),
            None => FuncName::function(name),
        };
        self.sinks.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolves a well-known global object variable (`$wpdb`) to its class.
    pub fn known_object_class(&self, var: &str) -> Option<&str> {
        self.known_objects.get(var).map(|s| s.as_str())
    }

    /// A stable 64-bit fingerprint of the full configuration.
    ///
    /// Two configs fingerprint equal iff they answer every query
    /// identically, regardless of insertion order or process — the maps
    /// are folded in sorted order. Persistent caches key derived
    /// artifacts (function summaries, rendered reports) on this, so any
    /// profile edit invalidates them.
    pub fn fingerprint(&self) -> u64 {
        // Render each section to sorted text lines and FNV-fold them;
        // self-contained so the config crate stays dependency-free.
        fn fold(hash: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *hash ^= b as u64;
                *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut lines: Vec<String> = Vec::new();
        for (var, kind) in &self.superglobals {
            lines.push(format!("superglobal\x1f{var}\x1f{kind:?}"));
        }
        for (name, kind) in &self.source_fns {
            lines.push(format!("source\x1f{name}\x1f{kind:?}"));
        }
        for (name, protects) in &self.sanitizers {
            let mut protects = protects.clone();
            protects.sort();
            lines.push(format!("sanitizer\x1f{name}\x1f{protects:?}"));
        }
        for name in self.reverts.keys() {
            lines.push(format!("revert\x1f{name}"));
        }
        for (name, specs) in &self.sinks {
            let mut rendered: Vec<String> = specs
                .iter()
                .map(|s| format!("{:?}\x1f{:?}", s.class, s.args))
                .collect();
            rendered.sort();
            lines.push(format!("sink\x1f{name}\x1f{rendered:?}"));
        }
        for (var, class) in &self.known_objects {
            lines.push(format!("object\x1f{var}\x1f{class}"));
        }
        lines.sort();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        fold(&mut hash, self.profile.as_bytes());
        for line in &lines {
            fold(&mut hash, &[0x1e]);
            fold(&mut hash, line.as_bytes());
        }
        hash
    }

    /// Number of configured entries per section (sources, sanitizers,
    /// reverts, sinks) — used in docs/benches to sanity-check profiles.
    pub fn section_sizes(&self) -> (usize, usize, usize, usize) {
        (
            self.superglobals.len() + self.source_fns.len(),
            self.sanitizers.len(),
            self.reverts.len(),
            self.sinks.values().map(|v| v.len()).sum(),
        )
    }

    /// The vulnerability classes this profile can actually manifest: every
    /// class with at least one configured sink, in registry order. What a
    /// `serve` daemon advertises in its `status` reply.
    pub fn supported_classes(&self) -> Vec<VulnClass> {
        VulnClass::ALL
            .into_iter()
            .filter(|c| {
                self.sinks
                    .values()
                    .any(|specs| specs.iter().any(|s| s.class == *c))
            })
            .collect()
    }

    /// A copy of this configuration with sinks restricted to `classes`.
    ///
    /// Only the sink section is filtered — sources, sanitizers and reverts
    /// stay bit-for-bit identical, so propagation (joins, traces, events)
    /// is unchanged and only *reporting* narrows. This is the taxonomy
    /// invariance harness: analyzing with `restricted_to(&VulnClass::PAPER)`
    /// must reproduce the paper artifacts byte-identically.
    pub fn restricted_to(&self, classes: &[VulnClass]) -> TaintConfig {
        let mut out = self.clone();
        out.sinks = self
            .sinks
            .iter()
            .filter_map(|(name, specs)| {
                let kept: Vec<SinkSpec> = specs
                    .iter()
                    .filter(|s| classes.contains(&s.class))
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some((name.clone(), kept))
                }
            })
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaintConfig {
        let mut c = TaintConfig::empty("test");
        c.add_source(SourceSpec::Superglobal {
            var: "$_GET".into(),
            kind: SourceKind::Get,
        });
        c.add_source(SourceSpec::Callable {
            name: FuncName::method("wpdb", "get_results"),
            kind: SourceKind::Database,
        });
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function("htmlentities"),
            protects: vec![VulnClass::Xss],
        });
        c.add_revert(RevertSpec {
            name: FuncName::function("stripslashes"),
        });
        c.add_sink(SinkSpec {
            name: FuncName::function("mysql_query"),
            class: VulnClass::Sqli,
            args: Some(vec![0]),
        });
        c.add_known_object("$wpdb", "wpdb");
        c
    }

    #[test]
    fn superglobal_lookup() {
        let c = sample();
        assert_eq!(c.superglobal_kind("$_GET"), Some(SourceKind::Get));
        assert_eq!(c.superglobal_kind("$_POST"), None);
    }

    #[test]
    fn method_source_lookup_is_case_insensitive() {
        let c = sample();
        assert_eq!(
            c.source_function(Some("wpdb"), "GET_RESULTS"),
            Some(SourceKind::Database)
        );
        assert_eq!(
            c.source_function(Some("WPDB"), "get_results"),
            Some(SourceKind::Database)
        );
        assert_eq!(c.source_function(None, "get_results"), None);
    }

    #[test]
    fn sanitizer_and_revert_lookup() {
        let c = sample();
        assert_eq!(
            c.sanitizer_protects(None, "HTMLENTITIES"),
            &[VulnClass::Xss]
        );
        assert!(c.sanitizer_protects(None, "other").is_empty());
        assert!(c.is_revert(None, "stripslashes"));
        assert!(!c.is_revert(None, "htmlentities"));
    }

    #[test]
    fn sink_lookup() {
        let c = sample();
        let sinks = c.sink_specs(None, "mysql_query");
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].class, VulnClass::Sqli);
        assert!(c.sink_specs(None, "echo").is_empty());
    }

    #[test]
    fn known_objects() {
        let c = sample();
        assert_eq!(c.known_object_class("$wpdb"), Some("wpdb"));
        assert_eq!(c.known_object_class("$other"), None);
    }

    #[test]
    fn extend_with_merges_sections() {
        let mut base = TaintConfig::empty("base");
        base.add_source(SourceSpec::Superglobal {
            var: "$_POST".into(),
            kind: SourceKind::Post,
        });
        let other = sample();
        base.extend_with(&other);
        assert!(base.superglobal_kind("$_GET").is_some());
        assert!(base.superglobal_kind("$_POST").is_some());
        assert!(base.is_revert(None, "stripslashes"));
        let (src, san, rev, snk) = base.section_sizes();
        assert_eq!((src, san, rev, snk), (3, 1, 1, 1));
    }

    #[test]
    fn vector_class_mapping_matches_table2_rows() {
        assert_eq!(SourceKind::Post.vector_class(), VectorClass::Post);
        assert_eq!(SourceKind::Get.vector_class(), VectorClass::Get);
        assert_eq!(SourceKind::Cookie.vector_class(), VectorClass::Mixed);
        assert_eq!(SourceKind::Request.vector_class(), VectorClass::Mixed);
        assert_eq!(SourceKind::Database.vector_class(), VectorClass::Database);
        assert_eq!(
            SourceKind::File.vector_class(),
            VectorClass::FileFunctionArray
        );
        assert_eq!(
            SourceKind::Array.vector_class(),
            VectorClass::FileFunctionArray
        );
    }

    #[test]
    fn fingerprint_is_order_independent_and_content_sensitive() {
        let a = sample().fingerprint();
        // Same entries inserted in a different order.
        let mut c = TaintConfig::empty("test");
        c.add_known_object("$wpdb", "wpdb");
        c.add_sink(SinkSpec {
            name: FuncName::function("mysql_query"),
            class: VulnClass::Sqli,
            args: Some(vec![0]),
        });
        c.add_revert(RevertSpec {
            name: FuncName::function("stripslashes"),
        });
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function("htmlentities"),
            protects: vec![VulnClass::Xss],
        });
        c.add_source(SourceSpec::Callable {
            name: FuncName::method("wpdb", "get_results"),
            kind: SourceKind::Database,
        });
        c.add_source(SourceSpec::Superglobal {
            var: "$_GET".into(),
            kind: SourceKind::Get,
        });
        assert_eq!(a, c.fingerprint(), "insertion order must not matter");

        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function("esc_html"),
            protects: vec![VulnClass::Xss],
        });
        assert_ne!(a, c.fingerprint(), "added entries must change it");
        assert_ne!(
            TaintConfig::empty("a").fingerprint(),
            TaintConfig::empty("b").fingerprint(),
            "profile name is part of the identity"
        );
    }

    #[test]
    fn direct_exploitability() {
        assert!(SourceKind::Get.directly_exploitable());
        assert!(SourceKind::Post.directly_exploitable());
        assert!(!SourceKind::Database.directly_exploitable());
        assert!(!SourceKind::File.directly_exploitable());
    }

    #[test]
    fn supported_classes_lists_only_sink_backed_classes() {
        let c = sample();
        assert_eq!(c.supported_classes(), vec![VulnClass::Sqli]);
        let mut c2 = sample();
        c2.add_sink(SinkSpec {
            name: FuncName::function("shell_exec"),
            class: VulnClass::CmdInjection,
            args: Some(vec![0]),
        });
        assert_eq!(
            c2.supported_classes(),
            vec![VulnClass::Sqli, VulnClass::CmdInjection],
            "registry order, sink-backed only"
        );
    }

    #[test]
    fn restricted_to_filters_only_sinks() {
        let mut c = sample();
        c.add_sink(SinkSpec {
            name: FuncName::function("readfile"),
            class: VulnClass::PathTraversal,
            args: Some(vec![0]),
        });
        let r = c.restricted_to(&VulnClass::PAPER);
        assert!(r.sink_specs(None, "readfile").is_empty());
        assert_eq!(r.sink_specs(None, "mysql_query").len(), 1);
        // Everything that drives propagation is untouched.
        assert_eq!(
            r.sanitizer_protects(None, "htmlentities"),
            c.sanitizer_protects(None, "htmlentities")
        );
        assert_eq!(r.superglobal_kind("$_GET"), c.superglobal_kind("$_GET"));
        assert!(r.is_revert(None, "stripslashes"));
        assert_eq!(r.supported_classes(), vec![VulnClass::Sqli]);
        // Restricting to the full registry is the identity on sinks.
        assert_eq!(
            c.restricted_to(&VulnClass::ALL).fingerprint(),
            c.fingerprint()
        );
    }
}
