//! The generic PHP profile: sources, sanitizers, reverts and sinks for
//! plain PHP code. Mirrors phpSAFE's default configuration, which the paper
//! notes is "based on the default configurations of the RIPS tool" (§III.A).
//!
//! This module also hosts the *shared constructors* every profile builds
//! with ([`fn_sources`], [`sanitizers`], [`sinks`], …) and the named
//! protection groups ([`NEUTRALIZES_EVERYTHING`], [`HTML_ENCODING`],
//! [`SQL_ESCAPING`]). The CMS profiles (`wordpress`, `joomla`, `drupal`)
//! declare their entries through the same helpers, so a builtin's class
//! coverage is written once here — growing the [`VulnClass`] registry means
//! editing these groups, not three CMS files.

use crate::model::*;

// ---- protection groups (one definition per builtin family) ----

/// Output is inert for *every* registered class: numeric coercions, hashes,
/// encoders, strict validators. These were "protects XSS and SQLi" when the
/// registry had two classes; a value reduced to a number or hex digest
/// cannot carry a shell metacharacter, a path component or a URL either, so
/// the group tracks the full registry.
pub(crate) const NEUTRALIZES_EVERYTHING: [VulnClass; VulnClass::COUNT] = VulnClass::ALL;

/// HTML-entity encoding: protects against XSS only — a quoted string is
/// still a valid SQL fragment, shell word, path or URL.
pub(crate) const HTML_ENCODING: [VulnClass; 1] = [VulnClass::Xss];

/// SQL escaping: protects against SQLi only.
pub(crate) const SQL_ESCAPING: [VulnClass; 1] = [VulnClass::Sqli];

/// Path canonicalization/stripping: protects filesystem sinks only.
pub(crate) const PATH_CLEANING: [VulnClass; 1] = [VulnClass::PathTraversal];

/// URL validation/escaping: protects redirect/fetch sinks only.
pub(crate) const URL_CLEANING: [VulnClass; 1] = [VulnClass::Ssrf];

// ---- shared constructors ----

/// Registers plain functions whose return value is a taint source.
pub(crate) fn fn_sources(c: &mut TaintConfig, kind: SourceKind, names: &[&str]) {
    for f in names {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind,
        });
    }
}

/// Registers methods on `class` whose return value is a taint source.
pub(crate) fn method_sources(c: &mut TaintConfig, class: &str, kind: SourceKind, names: &[&str]) {
    for f in names {
        c.add_source(SourceSpec::Callable {
            name: FuncName::method(class, f),
            kind,
        });
    }
}

/// Registers plain-function sanitizers protecting `protects`.
pub(crate) fn sanitizers(c: &mut TaintConfig, protects: &[VulnClass], names: &[&str]) {
    for f in names {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: protects.to_vec(),
        });
    }
}

/// Registers method sanitizers on `class` protecting `protects`.
pub(crate) fn method_sanitizers(
    c: &mut TaintConfig,
    class: &str,
    protects: &[VulnClass],
    names: &[&str],
) {
    for f in names {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::method(class, f),
            protects: protects.to_vec(),
        });
    }
}

/// Registers revert functions (undo sanitization).
pub(crate) fn reverts(c: &mut TaintConfig, names: &[&str]) {
    for f in names {
        c.add_revert(RevertSpec {
            name: FuncName::function(f),
        });
    }
}

/// Registers plain-function sinks of `class` with sensitive `args`.
pub(crate) fn sinks(c: &mut TaintConfig, class: VulnClass, args: Option<&[usize]>, names: &[&str]) {
    for f in names {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class,
            args: args.map(|a| a.to_vec()),
        });
    }
}

/// Registers method sinks on `recv` of `class` with sensitive `args`.
pub(crate) fn method_sinks(
    c: &mut TaintConfig,
    recv: &str,
    class: VulnClass,
    args: Option<&[usize]>,
    names: &[&str],
) {
    for f in names {
        c.add_sink(SinkSpec {
            name: FuncName::method(recv, f),
            class,
            args: args.map(|a| a.to_vec()),
        });
    }
}

/// Builds the generic PHP configuration.
pub fn generic_php() -> TaintConfig {
    let mut c = TaintConfig::empty("php");

    // ---- sources: superglobals ----
    for (var, kind) in [
        ("$_GET", SourceKind::Get),
        ("$_POST", SourceKind::Post),
        ("$_COOKIE", SourceKind::Cookie),
        ("$_REQUEST", SourceKind::Request),
        ("$_SERVER", SourceKind::Server),
        ("$_FILES", SourceKind::Post),
        ("$HTTP_GET_VARS", SourceKind::Get),
        ("$HTTP_POST_VARS", SourceKind::Post),
        ("$HTTP_COOKIE_VARS", SourceKind::Cookie),
        ("$HTTP_RAW_POST_DATA", SourceKind::Post),
    ] {
        c.add_source(SourceSpec::Superglobal {
            var: var.into(),
            kind,
        });
    }

    // ---- sources: file input functions ----
    fn_sources(
        &mut c,
        SourceKind::File,
        &[
            "file_get_contents",
            "fgets",
            "fgetc",
            "fgetss",
            "fread",
            "file",
            "readdir",
            "fscanf",
            "glob",
            "scandir",
            "parse_ini_file",
            "bzread",
            "gzread",
            "gzgets",
        ],
    );

    // ---- sources: database read functions (legacy mysql/mysqli) ----
    fn_sources(
        &mut c,
        SourceKind::Database,
        &[
            "mysql_fetch_array",
            "mysql_fetch_assoc",
            "mysql_fetch_row",
            "mysql_fetch_object",
            "mysql_fetch_field",
            "mysql_result",
            "mysqli_fetch_array",
            "mysqli_fetch_assoc",
            "mysqli_fetch_row",
            "mysqli_fetch_object",
            "pg_fetch_array",
            "pg_fetch_assoc",
            "pg_fetch_row",
            "sqlite_fetch_array",
        ],
    );

    // ---- sources: other environment/untrusted functions ----
    fn_sources(
        &mut c,
        SourceKind::Function,
        &["getenv", "get_headers", "getallheaders", "gethostbyaddr"],
    );

    // ---- sanitizers ----
    // Numeric coercions neutralize every class.
    sanitizers(
        &mut c,
        &NEUTRALIZES_EVERYTHING,
        &[
            "intval",
            "floatval",
            "doubleval",
            "boolval",
            "count",
            "strlen",
            "sizeof",
            "abs",
            "round",
            "floor",
            "ceil",
            "rand",
            "mt_rand",
            "time",
            "mktime",
        ],
    );
    // Hashes / encoders produce inert output for every class.
    sanitizers(
        &mut c,
        &NEUTRALIZES_EVERYTHING,
        &[
            "md5",
            "sha1",
            "crc32",
            "hash",
            "base64_encode",
            "bin2hex",
            "uniqid",
            "number_format",
            "urlencode",
            "rawurlencode",
        ],
    );
    // HTML encoding protects against XSS only.
    sanitizers(
        &mut c,
        &HTML_ENCODING,
        &["htmlentities", "htmlspecialchars", "strip_tags", "nl2br"],
    );
    // SQL escaping protects against SQLi only.
    sanitizers(
        &mut c,
        &SQL_ESCAPING,
        &[
            "mysql_escape_string",
            "mysql_real_escape_string",
            "mysqli_escape_string",
            "mysqli_real_escape_string",
            "addslashes",
            "addcslashes",
            "pg_escape_string",
            "sqlite_escape_string",
        ],
    );
    // Regex validators commonly used defensively (escapeshell* included:
    // their output is inert in every sink context tracked here).
    sanitizers(
        &mut c,
        &NEUTRALIZES_EVERYTHING,
        &[
            "preg_quote",
            "escapeshellarg",
            "escapeshellcmd",
            "ctype_digit",
            "ctype_alnum",
        ],
    );
    // Path canonicalization protects filesystem sinks only.
    sanitizers(&mut c, &PATH_CLEANING, &["basename", "realpath"]);

    // ---- reverts ----
    reverts(
        &mut c,
        &[
            "stripslashes",
            "stripcslashes",
            "html_entity_decode",
            "htmlspecialchars_decode",
            "urldecode",
            "rawurldecode",
            "base64_decode",
            "quoted_printable_decode",
        ],
    );

    // ---- sinks: XSS (echo/print/exit are language constructs handled by
    //      the analyzers directly; these are the function-call sinks) ----
    sinks(
        &mut c,
        VulnClass::Xss,
        None,
        &[
            "printf",
            "vprintf",
            "print_r",
            "var_dump",
            "trigger_error",
            "user_error",
        ],
    );

    // ---- sinks: SQLi ----
    sinks(
        &mut c,
        VulnClass::Sqli,
        Some(&[0, 1]), // query is arg 0, or arg 1 with a link
        &[
            "mysql_query",
            "mysql_db_query",
            "mysql_unbuffered_query",
            "mysqli_query",
            "mysqli_multi_query",
            "mysqli_real_query",
            "pg_query",
            "pg_send_query",
            "sqlite_query",
            "sqlite_exec",
        ],
    );

    // ---- sinks: command injection (backticks are a language construct,
    //      handled by the interpreter like echo) ----
    sinks(
        &mut c,
        VulnClass::CmdInjection,
        Some(&[0]),
        &[
            "shell_exec",
            "exec",
            "system",
            "passthru",
            "popen",
            "proc_open",
            "pcntl_exec",
        ],
    );

    // ---- sinks: path traversal (filesystem access through a tainted
    //      path; `file`/`file_get_contents` stay sources for their *return
    //      value* — the sink check runs first in call dispatch, so the dual
    //      role is well-defined) ----
    sinks(
        &mut c,
        VulnClass::PathTraversal,
        Some(&[0]),
        &[
            "readfile",
            "fopen",
            "unlink",
            "file_put_contents",
            "file_get_contents",
            "copy",
            "rename",
            "show_source",
            "highlight_file",
        ],
    );

    // ---- sinks: open redirect / SSRF ----
    sinks(
        &mut c,
        VulnClass::Ssrf,
        Some(&[0]),
        &["header", "curl_init", "fsockopen", "get_headers"],
    );
    // curl_setopt($ch, CURLOPT_URL, $url): the URL is the third argument.
    sinks(&mut c, VulnClass::Ssrf, Some(&[2]), &["curl_setopt"]);

    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_all_sections() {
        let c = generic_php();
        let (src, san, rev, snk) = c.section_sizes();
        assert!(src >= 30, "sources: {src}");
        assert!(san >= 30, "sanitizers: {san}");
        assert!(rev >= 6, "reverts: {rev}");
        assert!(snk >= 12, "sinks: {snk}");
    }

    #[test]
    fn superglobals_present() {
        let c = generic_php();
        assert_eq!(c.superglobal_kind("$_GET"), Some(SourceKind::Get));
        assert_eq!(c.superglobal_kind("$_POST"), Some(SourceKind::Post));
        assert_eq!(c.superglobal_kind("$_COOKIE"), Some(SourceKind::Cookie));
        assert_eq!(c.superglobal_kind("$_REQUEST"), Some(SourceKind::Request));
    }

    #[test]
    fn file_functions_are_file_sources() {
        let c = generic_php();
        assert_eq!(c.source_function(None, "fgets"), Some(SourceKind::File));
        assert_eq!(
            c.source_function(None, "file_get_contents"),
            Some(SourceKind::File)
        );
    }

    #[test]
    fn sanitizer_classes_are_specific() {
        let c = generic_php();
        assert_eq!(
            c.sanitizer_protects(None, "htmlentities"),
            &[VulnClass::Xss]
        );
        assert_eq!(
            c.sanitizer_protects(None, "mysql_real_escape_string"),
            &[VulnClass::Sqli]
        );
        let both = c.sanitizer_protects(None, "intval");
        assert!(both.contains(&VulnClass::Xss) && both.contains(&VulnClass::Sqli));
    }

    #[test]
    fn broad_sanitizers_cover_the_whole_registry() {
        let c = generic_php();
        for name in ["intval", "md5", "escapeshellarg", "urlencode"] {
            let p = c.sanitizer_protects(None, name);
            for class in VulnClass::ALL {
                assert!(p.contains(&class), "{name} must neutralize {class}");
            }
        }
    }

    #[test]
    fn single_class_sanitizers_do_not_clear_other_labels() {
        // The negative guarantee behind the taxonomy: an XSS-only encoder
        // says nothing about shell words, paths or URLs.
        let c = generic_php();
        for name in ["htmlentities", "htmlspecialchars", "strip_tags"] {
            let p = c.sanitizer_protects(None, name);
            assert_eq!(p, &[VulnClass::Xss], "{name}");
            assert!(!p.contains(&VulnClass::CmdInjection));
            assert!(!p.contains(&VulnClass::Ssrf));
        }
        assert_eq!(
            c.sanitizer_protects(None, "basename"),
            &[VulnClass::PathTraversal]
        );
    }

    #[test]
    fn mysql_query_is_sqli_sink() {
        let c = generic_php();
        let sinks = c.sink_specs(None, "mysql_query");
        assert!(sinks.iter().any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn new_class_sinks_present() {
        let c = generic_php();
        assert!(c
            .sink_specs(None, "shell_exec")
            .iter()
            .any(|s| s.class == VulnClass::CmdInjection));
        assert!(c
            .sink_specs(None, "readfile")
            .iter()
            .any(|s| s.class == VulnClass::PathTraversal));
        assert!(c
            .sink_specs(None, "header")
            .iter()
            .any(|s| s.class == VulnClass::Ssrf));
        // Dual roles: file_get_contents is a File source *and* a path sink.
        assert!(c
            .sink_specs(None, "file_get_contents")
            .iter()
            .any(|s| s.class == VulnClass::PathTraversal));
        assert_eq!(
            c.source_function(None, "file_get_contents"),
            Some(SourceKind::File)
        );
        // curl_setopt's sensitive argument is the option *value*.
        assert_eq!(
            c.sink_specs(None, "curl_setopt")[0].args,
            Some(vec![2usize])
        );
        assert_eq!(c.supported_classes(), VulnClass::ALL.to_vec());
    }

    #[test]
    fn stripslashes_is_revert_not_sanitizer() {
        let c = generic_php();
        assert!(c.is_revert(None, "stripslashes"));
        assert!(c.sanitizer_protects(None, "stripslashes").is_empty());
    }

    #[test]
    fn no_wordpress_knowledge_in_generic_profile() {
        let c = generic_php();
        assert!(c.sanitizer_protects(None, "esc_html").is_empty());
        assert!(c.source_function(Some("wpdb"), "get_results").is_none());
        assert!(c.known_object_class("$wpdb").is_none());
    }
}
