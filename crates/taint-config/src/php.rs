//! The generic PHP profile: sources, sanitizers, reverts and sinks for
//! plain PHP code. Mirrors phpSAFE's default configuration, which the paper
//! notes is "based on the default configurations of the RIPS tool" (§III.A).

use crate::model::*;

/// Builds the generic PHP configuration.
pub fn generic_php() -> TaintConfig {
    let mut c = TaintConfig::empty("php");

    // ---- sources: superglobals ----
    for (var, kind) in [
        ("$_GET", SourceKind::Get),
        ("$_POST", SourceKind::Post),
        ("$_COOKIE", SourceKind::Cookie),
        ("$_REQUEST", SourceKind::Request),
        ("$_SERVER", SourceKind::Server),
        ("$_FILES", SourceKind::Post),
        ("$HTTP_GET_VARS", SourceKind::Get),
        ("$HTTP_POST_VARS", SourceKind::Post),
        ("$HTTP_COOKIE_VARS", SourceKind::Cookie),
        ("$HTTP_RAW_POST_DATA", SourceKind::Post),
    ] {
        c.add_source(SourceSpec::Superglobal {
            var: var.into(),
            kind,
        });
    }

    // ---- sources: file input functions ----
    for f in [
        "file_get_contents",
        "fgets",
        "fgetc",
        "fgetss",
        "fread",
        "file",
        "readdir",
        "fscanf",
        "glob",
        "scandir",
        "parse_ini_file",
        "bzread",
        "gzread",
        "gzgets",
    ] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::File,
        });
    }

    // ---- sources: database read functions (legacy mysql/mysqli) ----
    for f in [
        "mysql_fetch_array",
        "mysql_fetch_assoc",
        "mysql_fetch_row",
        "mysql_fetch_object",
        "mysql_fetch_field",
        "mysql_result",
        "mysqli_fetch_array",
        "mysqli_fetch_assoc",
        "mysqli_fetch_row",
        "mysqli_fetch_object",
        "pg_fetch_array",
        "pg_fetch_assoc",
        "pg_fetch_row",
        "sqlite_fetch_array",
    ] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::Database,
        });
    }

    // ---- sources: other environment/untrusted functions ----
    for f in ["getenv", "get_headers", "getallheaders", "gethostbyaddr"] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::Function,
        });
    }

    // ---- sanitizers ----
    // Numeric coercions protect against both classes.
    for f in [
        "intval",
        "floatval",
        "doubleval",
        "boolval",
        "count",
        "strlen",
        "sizeof",
        "abs",
        "round",
        "floor",
        "ceil",
        "rand",
        "mt_rand",
        "time",
        "mktime",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss, VulnClass::Sqli],
        });
    }
    // Hashes / encoders produce inert output for both classes.
    for f in [
        "md5",
        "sha1",
        "crc32",
        "hash",
        "base64_encode",
        "bin2hex",
        "uniqid",
        "number_format",
        "urlencode",
        "rawurlencode",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss, VulnClass::Sqli],
        });
    }
    // HTML encoding protects against XSS only.
    for f in ["htmlentities", "htmlspecialchars", "strip_tags", "nl2br"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss],
        });
    }
    // SQL escaping protects against SQLi only.
    for f in [
        "mysql_escape_string",
        "mysql_real_escape_string",
        "mysqli_escape_string",
        "mysqli_real_escape_string",
        "addslashes",
        "addcslashes",
        "pg_escape_string",
        "sqlite_escape_string",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Sqli],
        });
    }
    // Regex validators commonly used defensively.
    for f in [
        "preg_quote",
        "escapeshellarg",
        "escapeshellcmd",
        "ctype_digit",
        "ctype_alnum",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss, VulnClass::Sqli],
        });
    }

    // ---- reverts ----
    for f in [
        "stripslashes",
        "stripcslashes",
        "html_entity_decode",
        "htmlspecialchars_decode",
        "urldecode",
        "rawurldecode",
        "base64_decode",
        "quoted_printable_decode",
    ] {
        c.add_revert(RevertSpec {
            name: FuncName::function(f),
        });
    }

    // ---- sinks: XSS (echo/print/exit are language constructs handled by
    //      the analyzers directly; these are the function-call sinks) ----
    for f in [
        "printf",
        "vprintf",
        "print_r",
        "var_dump",
        "trigger_error",
        "user_error",
    ] {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class: VulnClass::Xss,
            args: None,
        });
    }

    // ---- sinks: SQLi ----
    for f in [
        "mysql_query",
        "mysql_db_query",
        "mysql_unbuffered_query",
        "mysqli_query",
        "mysqli_multi_query",
        "mysqli_real_query",
        "pg_query",
        "pg_send_query",
        "sqlite_query",
        "sqlite_exec",
    ] {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class: VulnClass::Sqli,
            args: Some(vec![0, 1]), // query is arg 0, or arg 1 with a link
        });
    }

    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_all_sections() {
        let c = generic_php();
        let (src, san, rev, snk) = c.section_sizes();
        assert!(src >= 30, "sources: {src}");
        assert!(san >= 30, "sanitizers: {san}");
        assert!(rev >= 6, "reverts: {rev}");
        assert!(snk >= 12, "sinks: {snk}");
    }

    #[test]
    fn superglobals_present() {
        let c = generic_php();
        assert_eq!(c.superglobal_kind("$_GET"), Some(SourceKind::Get));
        assert_eq!(c.superglobal_kind("$_POST"), Some(SourceKind::Post));
        assert_eq!(c.superglobal_kind("$_COOKIE"), Some(SourceKind::Cookie));
        assert_eq!(c.superglobal_kind("$_REQUEST"), Some(SourceKind::Request));
    }

    #[test]
    fn file_functions_are_file_sources() {
        let c = generic_php();
        assert_eq!(c.source_function(None, "fgets"), Some(SourceKind::File));
        assert_eq!(
            c.source_function(None, "file_get_contents"),
            Some(SourceKind::File)
        );
    }

    #[test]
    fn sanitizer_classes_are_specific() {
        let c = generic_php();
        assert_eq!(
            c.sanitizer_protects(None, "htmlentities"),
            &[VulnClass::Xss]
        );
        assert_eq!(
            c.sanitizer_protects(None, "mysql_real_escape_string"),
            &[VulnClass::Sqli]
        );
        let both = c.sanitizer_protects(None, "intval");
        assert!(both.contains(&VulnClass::Xss) && both.contains(&VulnClass::Sqli));
    }

    #[test]
    fn mysql_query_is_sqli_sink() {
        let c = generic_php();
        let sinks = c.sink_specs(None, "mysql_query");
        assert!(sinks.iter().any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn stripslashes_is_revert_not_sanitizer() {
        let c = generic_php();
        assert!(c.is_revert(None, "stripslashes"));
        assert!(c.sanitizer_protects(None, "stripslashes").is_empty());
    }

    #[test]
    fn no_wordpress_knowledge_in_generic_profile() {
        let c = generic_php();
        assert!(c.sanitizer_protects(None, "esc_html").is_empty());
        assert!(c.source_function(Some("wpdb"), "get_results").is_none());
        assert!(c.known_object_class("$wpdb").is_none());
    }
}
