//! The WordPress profile: CMS-framework functions and `wpdb` methods layered
//! on top of the generic PHP profile. This out-of-the-box WordPress
//! knowledge is the capability the paper credits for phpSAFE's detection
//! performance (§V.A) — RIPS and Pixy lack it entirely.

use crate::model::*;
use crate::php::{
    fn_sources, generic_php, method_sanitizers, method_sinks, method_sources, reverts, sanitizers,
    sinks, HTML_ENCODING, NEUTRALIZES_EVERYTHING, PATH_CLEANING, SQL_ESCAPING, URL_CLEANING,
};

/// Builds the WordPress-specific additions only (no generic PHP entries).
pub fn wordpress_additions() -> TaintConfig {
    let mut c = TaintConfig::empty("wordpress-additions");

    // The global `$wpdb` object is a `wpdb` instance; `$this->wpdb`-style
    // aliases are resolved by the analyzer's data flow.
    c.add_known_object("$wpdb", "wpdb");

    // ---- sources: wpdb read methods return database-tainted data ----
    method_sources(
        &mut c,
        "wpdb",
        SourceKind::Database,
        &["get_results", "get_row", "get_var", "get_col"],
    );
    // WordPress option / meta accessors read from the database.
    fn_sources(
        &mut c,
        SourceKind::Database,
        &[
            "get_option",
            "get_post_meta",
            "get_user_meta",
            "get_comment_meta",
            "get_term_meta",
            "get_metadata",
            "get_transient",
            "get_site_option",
            "bloginfo_value", // synthetic alias used by some plugins
        ],
    );
    // Query-var accessors surface request data.
    fn_sources(
        &mut c,
        SourceKind::Request,
        &["get_query_var", "wp_unslash_request"],
    );

    // ---- sanitizers: the esc_*/sanitize_* family ----
    sanitizers(
        &mut c,
        &HTML_ENCODING,
        &[
            "esc_html",
            "esc_attr",
            "esc_js",
            "esc_textarea",
            "esc_html__",
            "esc_html_e",
            "esc_attr__",
            "esc_attr_e",
            "tag_escape",
            "wp_kses",
            "wp_kses_post",
            "wp_kses_data",
        ],
    );
    // esc_url validates the scheme and escapes for display: it covers both
    // the markup context and the redirect/fetch sinks.
    sanitizers(&mut c, &[VulnClass::Xss, VulnClass::Ssrf], &["esc_url"]);
    sanitizers(&mut c, &URL_CLEANING, &["esc_url_raw"]);
    sanitizers(&mut c, &PATH_CLEANING, &["validate_file"]);
    sanitizers(
        &mut c,
        &NEUTRALIZES_EVERYTHING,
        &[
            "sanitize_text_field",
            "sanitize_email",
            "sanitize_key",
            "sanitize_title",
            "sanitize_file_name",
            "sanitize_html_class",
            "sanitize_user",
            "absint",
            "wp_parse_id_list",
        ],
    );
    sanitizers(&mut c, &SQL_ESCAPING, &["esc_sql", "like_escape"]);
    // wpdb::prepare parameterizes the query — the canonical SQLi defense.
    method_sanitizers(
        &mut c,
        "wpdb",
        &SQL_ESCAPING,
        &["prepare", "escape", "_escape", "esc_like"],
    );

    // ---- reverts ----
    reverts(&mut c, &["wp_specialchars_decode", "wp_unslash"]);

    // ---- sinks: wpdb write/query methods are SQLi sinks ----
    method_sinks(
        &mut c,
        "wpdb",
        VulnClass::Sqli,
        Some(&[0]),
        &["query", "get_results", "get_row", "get_var", "get_col"],
    );
    // WordPress output helpers are XSS sinks.
    sinks(
        &mut c,
        VulnClass::Xss,
        Some(&[0]),
        &["wp_die", "_e", "_ex", "comment_text_output"],
    );
    // Redirects and HTTP fetches are open-redirect/SSRF sinks.
    sinks(
        &mut c,
        VulnClass::Ssrf,
        Some(&[0]),
        &[
            "wp_redirect",
            "wp_safe_redirect",
            "wp_remote_get",
            "wp_remote_post",
            "wp_remote_head",
            "wp_remote_request",
            "download_url",
        ],
    );
    // Template loading from a computed path.
    sinks(
        &mut c,
        VulnClass::PathTraversal,
        Some(&[0]),
        &["load_template"],
    );

    c
}

/// Builds the complete WordPress profile: generic PHP plus the WordPress
/// additions. This is phpSAFE's shipped default (§III.A: *"deployed with a
/// default configuration that is ready … for plugins for the WordPress
/// framework"*).
pub fn wordpress() -> TaintConfig {
    let mut c = generic_php();
    c.profile = "wordpress".into();
    c.extend_with(&wordpress_additions());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wpdb_get_results_is_source_and_sink() {
        let c = wordpress();
        assert_eq!(
            c.source_function(Some("wpdb"), "get_results"),
            Some(SourceKind::Database)
        );
        assert!(c
            .sink_specs(Some("wpdb"), "get_results")
            .iter()
            .any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn wpdb_prepare_sanitizes_sqli_only() {
        let c = wordpress();
        assert_eq!(
            c.sanitizer_protects(Some("wpdb"), "prepare"),
            &[VulnClass::Sqli]
        );
    }

    #[test]
    fn esc_html_protects_xss_only() {
        let c = wordpress();
        assert_eq!(c.sanitizer_protects(None, "esc_html"), &[VulnClass::Xss]);
        assert!(!c
            .sanitizer_protects(None, "esc_html")
            .contains(&VulnClass::Sqli));
    }

    #[test]
    fn esc_html_does_not_clear_shell_or_url_labels() {
        // Satellite negative test: an XSS-only encoder must not protect the
        // command-injection or SSRF sinks.
        let c = wordpress();
        let p = c.sanitizer_protects(None, "esc_html");
        assert!(!p.contains(&VulnClass::CmdInjection));
        assert!(!p.contains(&VulnClass::PathTraversal));
        assert!(!p.contains(&VulnClass::Ssrf));
    }

    #[test]
    fn new_class_entries_present() {
        let c = wordpress();
        assert!(c
            .sink_specs(None, "wp_redirect")
            .iter()
            .any(|s| s.class == VulnClass::Ssrf));
        assert!(c
            .sink_specs(None, "load_template")
            .iter()
            .any(|s| s.class == VulnClass::PathTraversal));
        assert_eq!(
            c.sanitizer_protects(None, "esc_url_raw"),
            &[VulnClass::Ssrf]
        );
        let url = c.sanitizer_protects(None, "esc_url");
        assert!(url.contains(&VulnClass::Xss) && url.contains(&VulnClass::Ssrf));
        // Broad WP sanitizers now cover the full registry.
        for class in VulnClass::ALL {
            assert!(c.sanitizer_protects(None, "absint").contains(&class));
        }
        assert_eq!(c.supported_classes(), VulnClass::ALL.to_vec());
    }

    #[test]
    fn profile_layers_on_generic_php() {
        let c = wordpress();
        // generic PHP entries survive
        assert!(c.superglobal_kind("$_GET").is_some());
        assert!(c.is_revert(None, "stripslashes"));
        // WP entries added
        assert_eq!(c.known_object_class("$wpdb"), Some("wpdb"));
        assert!(c.source_function(None, "get_option").is_some());
    }

    #[test]
    fn get_option_is_database_source() {
        let c = wordpress();
        assert_eq!(
            c.source_function(None, "get_option"),
            Some(SourceKind::Database)
        );
    }

    #[test]
    fn additions_alone_have_no_php_builtins() {
        let a = wordpress_additions();
        assert!(a.superglobal_kind("$_GET").is_none());
        assert!(a.sanitizer_protects(None, "htmlentities").is_empty());
    }
}
