//! The WordPress profile: CMS-framework functions and `wpdb` methods layered
//! on top of the generic PHP profile. This out-of-the-box WordPress
//! knowledge is the capability the paper credits for phpSAFE's detection
//! performance (§V.A) — RIPS and Pixy lack it entirely.

use crate::model::*;
use crate::php::generic_php;

/// Builds the WordPress-specific additions only (no generic PHP entries).
pub fn wordpress_additions() -> TaintConfig {
    let mut c = TaintConfig::empty("wordpress-additions");

    // The global `$wpdb` object is a `wpdb` instance; `$this->wpdb`-style
    // aliases are resolved by the analyzer's data flow.
    c.add_known_object("$wpdb", "wpdb");

    // ---- sources: wpdb read methods return database-tainted data ----
    for m in ["get_results", "get_row", "get_var", "get_col"] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::method("wpdb", m),
            kind: SourceKind::Database,
        });
    }
    // WordPress option / meta accessors read from the database.
    for f in [
        "get_option",
        "get_post_meta",
        "get_user_meta",
        "get_comment_meta",
        "get_term_meta",
        "get_metadata",
        "get_transient",
        "get_site_option",
        "bloginfo_value", // synthetic alias used by some plugins
    ] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::Database,
        });
    }
    // Query-var accessors surface request data.
    for f in ["get_query_var", "wp_unslash_request"] {
        c.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::Request,
        });
    }

    // ---- sanitizers: the esc_*/sanitize_* family ----
    for f in [
        "esc_html",
        "esc_attr",
        "esc_url",
        "esc_js",
        "esc_textarea",
        "esc_html__",
        "esc_html_e",
        "esc_attr__",
        "esc_attr_e",
        "tag_escape",
        "wp_kses",
        "wp_kses_post",
        "wp_kses_data",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss],
        });
    }
    for f in [
        "sanitize_text_field",
        "sanitize_email",
        "sanitize_key",
        "sanitize_title",
        "sanitize_file_name",
        "sanitize_html_class",
        "sanitize_user",
        "absint",
        "wp_parse_id_list",
    ] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Xss, VulnClass::Sqli],
        });
    }
    for f in ["esc_sql", "like_escape"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::function(f),
            protects: vec![VulnClass::Sqli],
        });
    }
    // wpdb::prepare parameterizes the query — the canonical SQLi defense.
    for m in ["prepare", "escape", "_escape", "esc_like"] {
        c.add_sanitizer(SanitizerSpec {
            name: FuncName::method("wpdb", m),
            protects: vec![VulnClass::Sqli],
        });
    }

    // ---- reverts ----
    for f in ["wp_specialchars_decode", "wp_unslash"] {
        c.add_revert(RevertSpec {
            name: FuncName::function(f),
        });
    }

    // ---- sinks: wpdb write/query methods are SQLi sinks ----
    for m in ["query", "get_results", "get_row", "get_var", "get_col"] {
        c.add_sink(SinkSpec {
            name: FuncName::method("wpdb", m),
            class: VulnClass::Sqli,
            args: Some(vec![0]),
        });
    }
    // WordPress output helpers are XSS sinks.
    for f in ["wp_die", "_e", "_ex", "comment_text_output"] {
        c.add_sink(SinkSpec {
            name: FuncName::function(f),
            class: VulnClass::Xss,
            args: Some(vec![0]),
        });
    }

    c
}

/// Builds the complete WordPress profile: generic PHP plus the WordPress
/// additions. This is phpSAFE's shipped default (§III.A: *"deployed with a
/// default configuration that is ready … for plugins for the WordPress
/// framework"*).
pub fn wordpress() -> TaintConfig {
    let mut c = generic_php();
    c.profile = "wordpress".into();
    c.extend_with(&wordpress_additions());
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wpdb_get_results_is_source_and_sink() {
        let c = wordpress();
        assert_eq!(
            c.source_function(Some("wpdb"), "get_results"),
            Some(SourceKind::Database)
        );
        assert!(c
            .sink_specs(Some("wpdb"), "get_results")
            .iter()
            .any(|s| s.class == VulnClass::Sqli));
    }

    #[test]
    fn wpdb_prepare_sanitizes_sqli_only() {
        let c = wordpress();
        assert_eq!(
            c.sanitizer_protects(Some("wpdb"), "prepare"),
            &[VulnClass::Sqli]
        );
    }

    #[test]
    fn esc_html_protects_xss_only() {
        let c = wordpress();
        assert_eq!(c.sanitizer_protects(None, "esc_html"), &[VulnClass::Xss]);
        assert!(!c
            .sanitizer_protects(None, "esc_html")
            .contains(&VulnClass::Sqli));
    }

    #[test]
    fn profile_layers_on_generic_php() {
        let c = wordpress();
        // generic PHP entries survive
        assert!(c.superglobal_kind("$_GET").is_some());
        assert!(c.is_revert(None, "stripslashes"));
        // WP entries added
        assert_eq!(c.known_object_class("$wpdb"), Some("wpdb"));
        assert!(c.source_function(None, "get_option").is_some());
    }

    #[test]
    fn get_option_is_database_source() {
        let c = wordpress();
        assert_eq!(
            c.source_function(None, "get_option"),
            Some(SourceKind::Database)
        );
    }

    #[test]
    fn additions_alone_have_no_php_builtins() {
        let a = wordpress_additions();
        assert!(a.superglobal_kind("$_GET").is_none());
        assert!(a.sanitizer_protects(None, "htmlentities").is_empty());
    }
}
