//! The vulnerability-class taxonomy: which classes the analyzer can detect,
//! where tainted data can enter a plugin, and the label bitsets that carry
//! per-source-kind provenance through propagation.
//!
//! phpSAFE's configuration stage (§III.A) hard-codes two classes — XSS and
//! SQLi — but the source/sanitizer/sink model generalizes to any taint-style
//! class. This crate is the registry the rest of the workspace builds on:
//!
//! * [`VulnClass`] — the extensible class enum. The paper's two classes come
//!   first (and keep their exact table names); command injection, path
//!   traversal and SSRF/open-redirect extend the taxonomy without touching
//!   the propagation machinery.
//! * [`SourceKind`] / [`VectorClass`] — the input-vector taxonomy of §V.C /
//!   Table II.
//! * [`TaintLabels`] — a bitset of [`SourceKind`]s. Instead of remembering a
//!   single "best" source per class, propagation unions label sets; the
//!   Table II classification then *falls out* of the labels
//!   ([`TaintLabels::primary`]) instead of being a post-hoc guess.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Vulnerability classes the analyzer can detect.
///
/// The first two are the paper's (§III.A); the rest extend the taxonomy.
/// Ordering is significant: tables iterate [`VulnClass::ALL`] in this order,
/// and the dataflow codec persists the discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VulnClass {
    /// Cross-site scripting.
    Xss,
    /// SQL injection.
    Sqli,
    /// OS command injection (`shell_exec`, backticks, `system`...).
    CmdInjection,
    /// Path traversal through filesystem sinks (`readfile`, `fopen`...).
    PathTraversal,
    /// Open redirect / server-side request forgery (`header("Location:")`,
    /// `curl_*`/`file_get_contents` URL fetches).
    Ssrf,
}

impl VulnClass {
    /// Every class, in registry order (paper classes first).
    pub const ALL: [VulnClass; 5] = [
        VulnClass::Xss,
        VulnClass::Sqli,
        VulnClass::CmdInjection,
        VulnClass::PathTraversal,
        VulnClass::Ssrf,
    ];

    /// The two classes evaluated in the paper, in its table order.
    pub const PAPER: [VulnClass; 2] = [VulnClass::Xss, VulnClass::Sqli];

    /// Number of registered classes (array dimension for per-class state).
    pub const COUNT: usize = Self::ALL.len();

    /// Short display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            VulnClass::Xss => "XSS",
            VulnClass::Sqli => "SQLi",
            VulnClass::CmdInjection => "CMDi",
            VulnClass::PathTraversal => "PathTrav",
            VulnClass::Ssrf => "SSRF",
        }
    }

    /// Lowercase machine-readable slug (metric keys, `--explain` tags).
    pub fn slug(self) -> &'static str {
        match self {
            VulnClass::Xss => "xss",
            VulnClass::Sqli => "sqli",
            VulnClass::CmdInjection => "cmd-injection",
            VulnClass::PathTraversal => "path-traversal",
            VulnClass::Ssrf => "ssrf",
        }
    }

    /// Dense index into per-class arrays (`[T; VulnClass::COUNT]`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`VulnClass::index`].
    pub fn from_index(i: usize) -> Option<VulnClass> {
        Self::ALL.get(i).copied()
    }

    /// Whether the class is one of the paper's original two (whose
    /// artifacts must stay byte-identical as the taxonomy grows).
    pub fn in_paper(self) -> bool {
        matches!(self, VulnClass::Xss | VulnClass::Sqli)
    }
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where tainted data enters the plugin — drives Table II and the paper's
/// root-cause analysis (§V.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceKind {
    /// `$_GET`
    Get,
    /// `$_POST`
    Post,
    /// `$_COOKIE`
    Cookie,
    /// `$_REQUEST` (GET/POST/COOKIE merged)
    Request,
    /// `$_SERVER` (attacker-influenced headers)
    Server,
    /// Values read from the database.
    Database,
    /// Values read from files.
    File,
    /// Return values of other untrusted functions.
    Function,
    /// Values from arrays / other variables whose origin is unknown.
    Array,
}

impl SourceKind {
    /// Every kind, in bit order (the [`TaintLabels`] bit layout).
    pub const ALL: [SourceKind; 9] = [
        SourceKind::Get,
        SourceKind::Post,
        SourceKind::Cookie,
        SourceKind::Request,
        SourceKind::Server,
        SourceKind::Database,
        SourceKind::File,
        SourceKind::Function,
        SourceKind::Array,
    ];

    /// Reporting priority: when several labels reach a sink the lowest
    /// priority wins as the primary vector ("prefer the direct HTTP
    /// vectors" — phpSAFE reports `$_GET` over a DB row when both flow).
    pub fn priority(self) -> u8 {
        match self {
            SourceKind::Get => 0,
            SourceKind::Post => 1,
            SourceKind::Request => 2,
            SourceKind::Cookie => 3,
            SourceKind::Server => 4,
            SourceKind::Database => 5,
            SourceKind::File => 6,
            SourceKind::Function => 7,
            SourceKind::Array => 8,
        }
    }

    /// Collapses into the paper's Table II row taxonomy.
    pub fn vector_class(self) -> VectorClass {
        match self {
            SourceKind::Post => VectorClass::Post,
            SourceKind::Get => VectorClass::Get,
            SourceKind::Cookie | SourceKind::Request | SourceKind::Server => VectorClass::Mixed,
            SourceKind::Database => VectorClass::Database,
            SourceKind::File | SourceKind::Function | SourceKind::Array => {
                VectorClass::FileFunctionArray
            }
        }
    }

    /// Whether an occasional attacker can trivially control this vector
    /// (the paper's "likely to be directly manipulated" type 1).
    pub fn directly_exploitable(self) -> bool {
        matches!(
            self,
            SourceKind::Get | SourceKind::Post | SourceKind::Cookie | SourceKind::Request
        )
    }

    /// The bit this kind occupies in a [`TaintLabels`] set.
    pub fn bit(self) -> u16 {
        1u16 << (self as u16)
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceKind::Get => "GET",
            SourceKind::Post => "POST",
            SourceKind::Cookie => "COOKIE",
            SourceKind::Request => "REQUEST",
            SourceKind::Server => "SERVER",
            SourceKind::Database => "DB",
            SourceKind::File => "FILE",
            SourceKind::Function => "FUNCTION",
            SourceKind::Array => "ARRAY",
        };
        f.write_str(s)
    }
}

/// Table II row taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VectorClass {
    /// `POST`
    Post,
    /// `GET`
    Get,
    /// `POST/GET/COOKIE`
    Mixed,
    /// `DB`
    Database,
    /// `File/Function/Array`
    FileFunctionArray,
}

impl VectorClass {
    /// All rows in the paper's Table II order.
    pub const ALL: [VectorClass; 5] = [
        VectorClass::Post,
        VectorClass::Get,
        VectorClass::Mixed,
        VectorClass::Database,
        VectorClass::FileFunctionArray,
    ];

    /// Row label as printed in Table II.
    pub fn label(self) -> &'static str {
        match self {
            VectorClass::Post => "POST",
            VectorClass::Get => "GET",
            VectorClass::Mixed => "POST/GET/COOKIE",
            VectorClass::Database => "DB",
            VectorClass::FileFunctionArray => "File/Function/Array",
        }
    }
}

impl fmt::Display for VectorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of [`SourceKind`] labels, packed into one `u16`.
///
/// Propagation unions label sets at joins and clears whole sets per class at
/// sanitizers; [`TaintLabels::primary`] recovers the single reported vector
/// (the minimum-[priority](SourceKind::priority) member), which is exactly
/// the value the former "keep the best source" join computed — min over a
/// union equals the iterated binary min — so growing labels cannot change
/// what the paper's tables report.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TaintLabels(pub u16);

impl TaintLabels {
    /// The empty set (untainted).
    pub const EMPTY: TaintLabels = TaintLabels(0);

    /// A one-element set.
    pub fn single(kind: SourceKind) -> TaintLabels {
        TaintLabels(kind.bit())
    }

    /// The full set — every registered source kind.
    pub fn all() -> TaintLabels {
        SourceKind::ALL.iter().copied().collect()
    }

    /// Do the two sets share at least one label?
    pub fn intersects(self, other: TaintLabels) -> bool {
        self.0 & other.0 != 0
    }

    /// No labels present?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of labels present.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is `kind` in the set?
    pub fn contains(self, kind: SourceKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Set union (the join of two provenances).
    pub fn union(self, other: TaintLabels) -> TaintLabels {
        TaintLabels(self.0 | other.0)
    }

    /// Adds one label in place.
    pub fn insert(&mut self, kind: SourceKind) {
        self.0 |= kind.bit();
    }

    /// The reported vector: the member with the lowest
    /// [priority](SourceKind::priority), `None` when empty.
    pub fn primary(self) -> Option<SourceKind> {
        SourceKind::ALL
            .iter()
            .copied()
            .filter(|k| self.contains(*k))
            .min_by_key(|k| k.priority())
    }

    /// Iterates the members in bit order.
    pub fn iter(self) -> impl Iterator<Item = SourceKind> {
        SourceKind::ALL
            .into_iter()
            .filter(move |k| self.contains(*k))
    }
}

impl fmt::Display for TaintLabels {
    /// Renders as `{GET,DB}` — stable order, used by `--explain` tags.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for k in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            write!(f, "{k}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<SourceKind> for TaintLabels {
    fn from_iter<I: IntoIterator<Item = SourceKind>>(iter: I) -> Self {
        let mut l = TaintLabels::EMPTY;
        for k in iter {
            l.insert(k);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_order_keeps_paper_classes_first() {
        assert_eq!(VulnClass::ALL[0], VulnClass::Xss);
        assert_eq!(VulnClass::ALL[1], VulnClass::Sqli);
        assert_eq!(&VulnClass::ALL[..2], &VulnClass::PAPER[..]);
        for (i, c) in VulnClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(VulnClass::from_index(i), Some(*c));
        }
        assert_eq!(VulnClass::from_index(VulnClass::COUNT), None);
    }

    #[test]
    fn names_and_slugs_are_distinct() {
        let names: std::collections::HashSet<_> = VulnClass::ALL.iter().map(|c| c.name()).collect();
        let slugs: std::collections::HashSet<_> = VulnClass::ALL.iter().map(|c| c.slug()).collect();
        assert_eq!(names.len(), VulnClass::COUNT);
        assert_eq!(slugs.len(), VulnClass::COUNT);
        assert!(VulnClass::Xss.in_paper() && VulnClass::Sqli.in_paper());
        assert!(!VulnClass::CmdInjection.in_paper());
        assert!(!VulnClass::PathTraversal.in_paper());
        assert!(!VulnClass::Ssrf.in_paper());
    }

    #[test]
    fn labels_union_and_primary() {
        let mut l = TaintLabels::single(SourceKind::Database);
        assert_eq!(l.primary(), Some(SourceKind::Database));
        l.insert(SourceKind::Post);
        assert_eq!(l.primary(), Some(SourceKind::Post), "POST outranks DB");
        let g = TaintLabels::single(SourceKind::Get);
        assert_eq!(l.union(g).primary(), Some(SourceKind::Get));
        assert_eq!(TaintLabels::EMPTY.primary(), None);
        assert_eq!(l.union(g).len(), 3);
    }

    #[test]
    fn min_over_union_equals_iterated_join() {
        // The invariant that keeps Table II byte-identical: folding kinds
        // pairwise by priority-min gives the same answer as primary() over
        // the unioned label set, for every subset.
        for bits in 0u16..(1 << SourceKind::ALL.len()) {
            let labels = TaintLabels(bits);
            let folded = labels
                .iter()
                .reduce(|a, b| if b.priority() < a.priority() { b } else { a });
            assert_eq!(labels.primary(), folded);
        }
    }

    #[test]
    fn labels_iter_roundtrip() {
        let l: TaintLabels = [SourceKind::Get, SourceKind::File, SourceKind::Array]
            .into_iter()
            .collect();
        let back: TaintLabels = l.iter().collect();
        assert_eq!(l, back);
        assert_eq!(l.to_string(), "{GET,FILE,ARRAY}");
        assert!(l.contains(SourceKind::File));
        assert!(!l.contains(SourceKind::Post));
    }

    #[test]
    fn serde_roundtrip() {
        let l: TaintLabels = [SourceKind::Get, SourceKind::Database]
            .into_iter()
            .collect();
        let json = serde_json::to_string(&l).unwrap();
        let back: TaintLabels = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
        let c = serde_json::to_string(&VulnClass::CmdInjection).unwrap();
        let cc: VulnClass = serde_json::from_str(&c).unwrap();
        assert_eq!(cc, VulnClass::CmdInjection);
    }
}
