//! Extending phpSAFE to another CMS — the paper's §III.A/§VI story:
//! *"this ability can be easily extended to other CMSs, by adding their
//! input, filtering and sink functions to the configuration files."*
//!
//! This example builds a Drupal-7-flavoured profile on top of the generic
//! PHP profile and analyzes a Drupal-style module with it.
//!
//! ```text
//! cargo run --example custom_cms_profile
//! ```

use phpsafe::{PhpSafe, PluginProject, SourceFile};
use taint_config::{
    generic_php, FuncName, SanitizerSpec, SinkSpec, SourceKind, SourceSpec, VulnClass,
};

/// Builds a Drupal 7 profile: `db_query` sinks, `check_plain`/`filter_xss`
/// sanitizers, `variable_get` database-backed sources.
fn drupal_profile() -> taint_config::TaintConfig {
    let mut cfg = generic_php();
    cfg.profile = "drupal7".into();
    // Sources: Drupal persists configuration in the database.
    for f in ["variable_get", "db_fetch_object", "db_fetch_array"] {
        cfg.add_source(SourceSpec::Callable {
            name: FuncName::function(f),
            kind: SourceKind::Database,
        });
    }
    // Sanitizers.
    cfg.add_sanitizer(SanitizerSpec {
        name: FuncName::function("check_plain"),
        protects: vec![VulnClass::Xss],
    });
    cfg.add_sanitizer(SanitizerSpec {
        name: FuncName::function("filter_xss"),
        protects: vec![VulnClass::Xss],
    });
    cfg.add_sanitizer(SanitizerSpec {
        name: FuncName::function("db_escape_string"),
        protects: vec![VulnClass::Sqli],
    });
    // Sinks.
    cfg.add_sink(SinkSpec {
        name: FuncName::function("db_query"),
        class: VulnClass::Sqli,
        args: Some(vec![0]),
    });
    cfg.add_sink(SinkSpec {
        name: FuncName::function("drupal_set_message"),
        class: VulnClass::Xss,
        args: Some(vec![0]),
    });
    cfg
}

fn main() {
    let module = PluginProject::new("drupal-guestbook").with_file(SourceFile::new(
        "guestbook.module",
        r#"<?php
// Drupal-style module code.

function guestbook_page() {
    // XSS: database-backed variable rendered through a Drupal sink.
    $motd = variable_get('guestbook_motd');
    drupal_set_message('<em>' . $motd . '</em>');

    // Safe: check_plain escapes for HTML.
    drupal_set_message(check_plain($motd));

    // SQLi: request data interpolated into db_query.
    $author = $_GET['author'];
    db_query("SELECT * FROM {guestbook} WHERE author = '$author'");

    // Safe: escaped for SQL.
    db_query("SELECT * FROM {guestbook} WHERE author = '" . db_escape_string($author) . "'");
}
"#,
    ));

    let analyzer = PhpSafe::new()
        .with_config(drupal_profile())
        .with_tool_name("phpSAFE (drupal7 profile)");
    let outcome = analyzer.analyze(&module);

    println!(
        "analyzed `{}` with profile `{}`:\n",
        outcome.plugin,
        analyzer.config().profile
    );
    for v in &outcome.vulns {
        println!(
            "  [{}] {}:{} sink `{}` via {}",
            v.class, v.file, v.line, v.sink, v.source_kind
        );
    }
    assert_eq!(outcome.vulns.len(), 2, "one XSS + one SQLi expected");
    println!("\nthe same plugin under the default WordPress profile:");
    let wp_outcome = PhpSafe::new().analyze(&module);
    println!(
        "  {} findings (Drupal's APIs are unknown there)",
        wp_outcome.vulns.len()
    );
}
