//! Audit of a realistic multi-file OOP plugin — the scenario that motivates
//! the paper (§III.E): a WordPress plugin storing subscriber data and
//! rendering it back, with the vulnerable flow passing through `$wpdb`
//! object methods and class properties that OOP-blind tools cannot follow.
//!
//! The plugin below is modeled on `mail-subscribe-list 2.1.1`, whose
//! stored-XSS the phpSAFE authors found and got fixed.
//!
//! ```text
//! cargo run --example plugin_audit
//! ```

use phpsafe::{PhpSafe, PluginProject, SourceFile};

fn build_plugin() -> PluginProject {
    PluginProject::new("mail-subscribe-list")
        .with_file(SourceFile::new(
            "mail-subscribe-list.php",
            r#"<?php
/*
Plugin Name: Mail Subscribe List
*/
include_once 'includes/class-subscriber-table.php';
include_once 'includes/admin-page.php';

$sml_table = new Sml_Subscriber_Table();
add_action('admin_menu', 'sml_register_menu');
"#,
        ))
        .with_file(SourceFile::new(
            "includes/class-subscriber-table.php",
            r#"<?php
class Sml_Subscriber_Table {
    private $db;

    public function __construct() {
        global $wpdb;
        $this->db = $wpdb;
    }

    /** Stored XSS: subscriber names come from the database unescaped. */
    public function render() {
        $results = $this->db->get_results("SELECT * FROM " . $this->db->prefix . "sml");
        foreach ($results as $row) {
            echo '<li>' . $row->sml_name . '</li>';
        }
    }

    /** Safe variant: output escaped with the WordPress API. */
    public function render_safe() {
        $results = $this->db->get_results("SELECT * FROM " . $this->db->prefix . "sml");
        foreach ($results as $row) {
            echo '<li>' . esc_html($row->sml_name) . '</li>';
        }
    }

    /** SQLi: the unsubscribe handler interpolates request data. */
    public function unsubscribe() {
        $email = $_POST['email'];
        $this->db->query("DELETE FROM {$this->db->prefix}sml WHERE email = '$email'");
    }
}
"#,
        ))
        .with_file(SourceFile::new(
            "includes/admin-page.php",
            r#"<?php
// Hook handler — never called from plugin code, only by WordPress.
function sml_register_menu() {
    $tab = $_GET['tab'];
    echo '<a class="nav-tab" href="?tab=' . $tab . '">' . $tab . '</a>';
}
"#,
        ))
}

fn main() {
    let plugin = build_plugin();
    let outcome = PhpSafe::new().analyze(&plugin);

    println!("== phpSAFE audit of `{}` ==\n", outcome.plugin);
    for v in &outcome.vulns {
        let oop = if v.via_oop {
            " [via WordPress object]"
        } else {
            ""
        };
        println!("{} at {}:{}{}", v.class, v.file, v.line, oop);
        println!("  sink `{}`, vulnerable expression `{}`", v.sink, v.var);
        println!("  entry vector: {}", v.source_kind);
        for step in &v.trace {
            println!("    flow: {}:{} {}", step.file, step.line, step.what);
        }
        println!();
    }

    // The normalized JSON format the paper's methodology merges tool
    // outputs into (§IV.B step 5).
    let json = outcome.to_json().expect("report serialization");
    println!(
        "JSON report: {} bytes; first lines:\n{}",
        json.len(),
        json.lines().take(8).collect::<Vec<_>>().join("\n")
    );

    assert!(
        outcome.vulns.iter().any(|v| v.via_oop),
        "the stored XSS through $wpdb must be found"
    );
}
