//! Quickstart: analyze a tiny vulnerable plugin with phpSAFE.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use phpsafe::{PhpSafe, PluginProject, SourceFile};

fn main() {
    let plugin = PluginProject::new("hello-plugin").with_file(SourceFile::new(
        "hello-plugin.php",
        r#"<?php
/*
Plugin Name: Hello Plugin
*/

// 1. Reflected XSS: request data echoed without sanitization.
$name = $_GET['name'];
echo '<h1>Hello ' . $name . '</h1>';

// 2. Safe: the same flow, properly escaped.
echo '<h1>Hello ' . htmlentities($_GET['name']) . '</h1>';

// 3. SQL injection through the WordPress database object.
$id = $_GET['id'];
$wpdb->query("DELETE FROM {$wpdb->prefix}greetings WHERE id = $id");

// 4. Safe: parameterized with wpdb::prepare.
$wpdb->query($wpdb->prepare("DELETE FROM {$wpdb->prefix}greetings WHERE id = %d", $id));
"#,
    ));

    let outcome = PhpSafe::new().analyze(&plugin);

    println!(
        "phpSAFE found {} vulnerabilities in `{}`:\n",
        outcome.vulns.len(),
        outcome.plugin
    );
    for v in &outcome.vulns {
        println!(
            "  [{}] {}:{} sink `{}` on `{}` (entered via {})",
            v.class, v.file, v.line, v.sink, v.var, v.source_kind
        );
        for step in &v.trace {
            println!("      <- {}:{} {}", step.file, step.line, step.what);
        }
    }
    println!(
        "\nstats: {} files ok, {} functions, {} work units",
        outcome.stats.files_ok, outcome.stats.functions, outcome.stats.work_units
    );
}
