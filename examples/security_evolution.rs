//! Plugin security evolution over time — the paper's §VI future-work
//! feature ("enabling historic data in phpSAFE"): compare the 2012 and
//! 2014 snapshots of every corpus plugin and report what was fixed, what
//! was carried over unfixed, and what is new.
//!
//! ```text
//! cargo run --release --example security_evolution
//! ```

use phpsafe_corpus::Corpus;
use phpsafe_eval::{evolution, evolution_report};

fn main() {
    let corpus = Corpus::generate();
    println!("{}", evolution_report(&corpus));

    // Highlight the most concerning plugins: large carried counts mean the
    // 2013 disclosure was ignored (§V.D).
    let mut rows = evolution(&corpus);
    rows.sort_by_key(|r| std::cmp::Reverse(r.carried));
    println!("top 5 plugins by disclosed-yet-unfixed vulnerabilities:");
    for r in rows.iter().take(5) {
        println!(
            "  {:22} {} carried of {} (2014); {} fixed since 2012",
            r.plugin, r.carried, r.vulns_2014, r.fixed
        );
    }
}
