//! Table I in miniature: run phpSAFE, RIPS and Pixy over one corpus plugin
//! (both versions) and show where the capability gaps come from.
//!
//! ```text
//! cargo run --release --example tool_comparison [plugin-slug]
//! ```

use phpsafe_baselines::paper_tools;
use phpsafe_corpus::{Corpus, GroundTruthEntry, Version};
use phpsafe_eval::verify;

fn main() {
    let slug = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "wp-symposium".to_string());
    let corpus = Corpus::generate();
    let plugin = corpus
        .plugins()
        .iter()
        .find(|p| p.name == slug)
        .unwrap_or_else(|| {
            eprintln!("unknown plugin `{slug}`; available:");
            for p in corpus.plugins() {
                eprintln!("  {}", p.name);
            }
            std::process::exit(2);
        });

    println!("== tool comparison on `{}` ==\n", plugin.name);
    for version in Version::ALL {
        let truth: Vec<&GroundTruthEntry> = plugin.truth_for(version).collect();
        println!(
            "{version} — ground truth: {} vulnerabilities ({} via WordPress objects)",
            truth.len(),
            truth.iter().filter(|t| t.oop).count()
        );
        for tool in paper_tools() {
            let outcome = tool.analyze(plugin.project(version));
            let m = verify(&outcome, &truth);
            println!(
                "  {:8} TP {:>3}  FP {:>3}  failed files {:>2}  ({} reports)",
                tool.name(),
                m.tp(),
                m.fp(),
                outcome.failed_files(),
                outcome.vulns.len()
            );
        }
        println!();
    }

    println!("Why the gaps:");
    println!("  - RIPS cannot resolve `$wpdb->get_results` or class methods (no OOP),");
    println!("    and treats `esc_html` as an unknown function (no WordPress profile).");
    println!("  - Pixy additionally rejects any file containing OOP constructs and");
    println!("    skips functions that are never called from plugin code.");
}
