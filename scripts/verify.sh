#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --workspace --release --offline
cargo test -q --offline --workspace
