#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --workspace --release --offline
cargo test -q --offline --workspace

# Observability crate in isolation (its tests also run in the workspace
# pass above; this keeps a failure attributable).
cargo test -q --offline -p phpsafe-obs

# Interning invariance: rendered artifacts must be byte-identical across
# worker counts and interner arena states.
cargo test -q --offline -p phpsafe-eval --test symbol_invariance

# Flat-AST invariance: artifacts and --explain chains must be
# byte-identical across worker counts and warm-cache reruns (arena
# handles must never leak into rendered output).
cargo test -q --offline -p phpsafe-eval --test ast_invariance

# Smoke: a metrics snapshot from a real corpus run must report every
# pipeline stage, the shared-cache counters, the interner counters, and
# the AST arena footprint counters.
metrics="$(mktemp)"
trap 'rm -f "$metrics"' EXIT
cargo run -q --release --offline -p phpsafe-bench --bin repro -- \
    --metrics-out "$metrics" table2 >/dev/null
for key in stage.lex stage.parse stage.analyze stage.eval cache.parse.hits \
           intern.symbols intern.hits cow.env_clones \
           ast.nodes ast.arena_bytes ast.slices; do
    grep -q "\"$key\"" "$metrics" || {
        echo "verify: $metrics is missing required key $key" >&2
        exit 1
    }
done

# Taint-graph invariance: the --taint-graph path (record one graph per
# analysis, answer each vuln class as a reachability query) must render
# byte-identical artifacts and --explain chains, across worker counts and
# a warm cache-dir restart answered from persisted graphs.
cargo test -q --offline -p phpsafe-eval --test graph_invariance

# Smoke: a --taint-graph corpus run must surface the dataflow.* counter
# family (one graph build per project, graph sizes, per-class queries).
graph_metrics="$(mktemp)"
trap 'rm -f "$metrics" "$graph_metrics"' EXIT
cargo run -q --release --offline -p phpsafe-bench --bin repro -- \
    --taint-graph --metrics-out "$graph_metrics" table2 >/dev/null
for key in dataflow.builds dataflow.nodes dataflow.edges \
           dataflow.queries dataflow.path_hits; do
    grep -q "\"$key\"" "$graph_metrics" || {
        echo "verify: $graph_metrics is missing required key $key" >&2
        exit 1
    }
done

# Taxonomy invariance: registering the extension vulnerability classes
# must leave every paper-class outcome — and therefore every Table
# I/II/III, Fig. 2 and --explain artifact — byte-identical to a registry
# restricted to the paper's two classes.
cargo test -q --offline -p phpsafe-eval --test taxonomy_invariance

# Smoke: the taxonomy artifact must run the per-class evaluation and
# surface the taxonomy.* metric family (registry size plus per-class
# ground-truth/TP/FP gauges for every registered class slug).
taxonomy_metrics="$(mktemp)"
trap 'rm -f "$metrics" "$graph_metrics" "$taxonomy_metrics"' EXIT
cargo run -q --release --offline -p phpsafe-bench --bin repro -- \
    --metrics-out "$taxonomy_metrics" taxonomy >/dev/null
for key in taxonomy.classes \
           taxonomy.truth.xss taxonomy.tp.xss taxonomy.fp.xss \
           taxonomy.truth.sqli taxonomy.truth.cmd-injection \
           taxonomy.tp.cmd-injection taxonomy.truth.path-traversal \
           taxonomy.tp.path-traversal taxonomy.truth.ssrf taxonomy.tp.ssrf; do
    grep -q "\"$key\"" "$taxonomy_metrics" || {
        echo "verify: $taxonomy_metrics is missing required key $key" >&2
        exit 1
    }
done

# Observability invariance: instrumentation (metrics, spans, taint
# events) must never change a rendered artifact byte-for-byte.
cargo test -q --offline -p phpsafe-eval --test obs_invariance

# Daemon-focused invariance suite: responses byte-identical to batch runs,
# warm restart from the on-disk cache, corruption fallback.
cargo test -q --offline -p phpsafe-eval --test serve_invariance

# Zero-copy warm-path invariance: artifacts and --explain chains must be
# byte-identical across cold parse, PAST v1 decode, ZAST v2 borrowed
# views (incl. mixed-version and truncated cache dirs), and per-function
# job counts.
cargo test -q --offline -p phpsafe-eval --test zero_copy_invariance

# Incremental invariance: invalidate and dirty-buffer replies must be
# byte-identical to cold batch runs, a one-file corpus edit must re-parse
# <5% of the corpus's files, and the evaluation tables must not move
# after an invalidate-heavy daemon session.
cargo test -q --offline -p phpsafe-eval --test incremental_invariance

# Smoke: --explain must print at least one provenance chain ending in a
# sink for a known-vulnerable corpus plugin. (`phpsafe` exits 1 when it
# finds vulnerabilities, so capture output before grepping.)
plugin_dir="$(mktemp -d)"
trap 'rm -f "$metrics" "$graph_metrics" "$taxonomy_metrics"; rm -rf "$plugin_dir"' EXIT
cargo run -q --release --offline -p phpsafe-corpus --bin corpus-dump -- "$plugin_dir" >/dev/null
explain_ok=0
for d in "$plugin_dir"/2014/*/; do
    out="$(cargo run -q --release --offline -p phpsafe --bin phpsafe -- --explain "$d" || true)"
    if printf '%s' "$out" | grep -q "reaches sink"; then
        explain_ok=1
        break
    fi
done
if [ "$explain_ok" -ne 1 ]; then
    echo "verify: --explain printed no provenance chain for any 2014 plugin" >&2
    exit 1
fi

# Smoke: the daemon must start, answer one analyze round-trip, report the
# serve.*/diskcache.* metric families, and shut down cleanly. Driven over
# stdio so no port management is needed; the protocol is identical on TCP.
serve_cache="$(mktemp -d)"
serve_out="$(mktemp)"
serve_telemetry="$(mktemp)"
trap 'rm -f "$metrics" "$graph_metrics" "$taxonomy_metrics" "$serve_out" "$serve_telemetry"; rm -rf "$plugin_dir" "$serve_cache"' EXIT
serve_plugin="$(ls -d "$plugin_dir"/2014/*/ | head -n 1)"
printf '{"cmd":"analyze","paths":["%s"],"id":1}\n{"cmd":"invalidate","paths":["%s"],"id":2}\n{"cmd":"metrics"}\n{"cmd":"metrics","format":"prometheus"}\n{"cmd":"shutdown"}\n' \
    "$serve_plugin" "$serve_plugin" |
    cargo run -q --release --offline -p phpsafe --bin phpsafe -- \
        serve --stdio --cache-dir "$serve_cache" \
        --telemetry-out "$serve_telemetry" >"$serve_out" 2>/dev/null
[ "$(wc -l <"$serve_out")" -eq 5 ] || {
    echo "verify: daemon did not answer one line per request" >&2
    exit 1
}
sed -n 1p "$serve_out" | grep -q '"ok":true,"seq":1.*"reports"' || {
    echo "verify: daemon analyze round-trip failed or dropped the seq echo" >&2
    exit 1
}
sed -n 2p "$serve_out" | grep -q '"ok":true,"seq":2.*"projects"' || {
    echo "verify: daemon invalidate round-trip failed or dropped the seq echo" >&2
    exit 1
}
for key in serve.requests serve.accepted serve.request serve.analyze \
           serve.invalidate serve.request.queue_wait serve.request.wide_events \
           events.dropped diskcache.misses diskcache.stores \
           diskcache.bytes_read diskcache.bytes_written \
           diskcache.borrowed_loads diskcache.store_failed \
           diskcache.mmap_loads depgraph.builds depgraph.hits \
           depgraph.nodes depgraph.edges depgraph.invalidated \
           incremental.files_dirty incremental.files_reanalyzed \
           diskcache.bytes_on_disk.ast diskcache.bytes_on_disk.summary \
           diskcache.bytes_on_disk.outcome diskcache.bytes_on_disk.depgraph; do
    sed -n 3p "$serve_out" | grep -q "\"$key\"" || {
        echo "verify: daemon metrics reply is missing key $key" >&2
        exit 1
    }
done
sed -n 4p "$serve_out" | grep -q 'phpsafe_serve_requests' || {
    echo "verify: Prometheus exposition is missing phpsafe_serve_requests" >&2
    exit 1
}
sed -n 5p "$serve_out" | grep -q '"shutting_down":true' || {
    echo "verify: daemon did not acknowledge shutdown" >&2
    exit 1
}
# One wide event per request must have been streamed to --telemetry-out.
[ "$(wc -l <"$serve_telemetry")" -eq 5 ] || {
    echo "verify: --telemetry-out did not record one wide event per request" >&2
    exit 1
}
grep -q '"queue_wait_us"' "$serve_telemetry" || {
    echo "verify: wide events are missing queue-wait attribution" >&2
    exit 1
}

# Load-harness smoke: low concurrency, few requests, against a live TCP
# daemon — asserts byte-identity with batch, seq/id echo on every
# response, 429 shedding under overload, and the telemetry stream.
cargo bench -q --offline -p phpsafe-bench --bench serve_load -- --smoke >/dev/null

# Zero-copy smoke: the three AST load paths must agree on the largest
# corpus file, a cold-memory/warm-disk daemon request must answer in
# under 5 ms, and per-function jobs must split the largest-file plugin
# into sub-file units without changing a byte of output.
cargo bench -q --offline -p phpsafe-bench --bench zero_copy -- --smoke >/dev/null

# Incremental smoke: over the dumped corpus, warm per-plugin requests
# must answer under 10 ms, a one-file edit plus invalidate must re-parse
# <5% of the corpus's files, and the post-invalidate analyze must be a
# pure cache hit byte-identical to a batch run of the edited tree.
cargo bench -q --offline -p phpsafe-bench --bench incremental -- --smoke >/dev/null
