//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use —
//! `Criterion::bench_function` / `benchmark_group`, chainable
//! `sample_size` / `measurement_time` / `throughput`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a
//! plain wall-clock sampler. No statistical analysis, plots, or baseline
//! storage: each benchmark prints min/mean/max per-iteration time (plus
//! throughput when configured) to stdout.

use std::time::{Duration, Instant};

/// Throughput declared for a benchmark group; reported alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    config: BenchConfig,
}

/// Per-iteration timing summary, in nanoseconds.
#[derive(Debug, Clone, Copy)]
struct Sampled {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

impl Bencher {
    /// Times `routine`, warming up first, then collecting
    /// `sample_size` samples spread over `measurement_time`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run for a fraction of the measurement time to stabilise
        // caches and estimate the per-iteration cost.
        let warmup_budget = self.config.measurement_time / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Iterations per sample so all samples fit the measurement budget.
        let samples = self.config.sample_size.max(1);
        let per_sample = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        self.report(Sampled {
            min_ns: min,
            mean_ns: mean,
            max_ns: max,
        });
    }

    fn report(&self, s: Sampled) {
        let mut line = format!(
            "time: [{} {} {}]",
            fmt_ns(s.min_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.max_ns)
        );
        if let Some(tp) = self.config.throughput {
            let per_sec = |units: u64| units as f64 / (s.mean_ns / 1e9);
            match tp {
                Throughput::Bytes(b) => {
                    line.push_str(&format!(
                        " thrpt: {:.3} MiB/s",
                        per_sec(b) / (1024.0 * 1024.0)
                    ));
                }
                Throughput::Elements(e) => {
                    line.push_str(&format!(" thrpt: {:.1} elem/s", per_sec(e)));
                }
            }
        }
        println!("                        {line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: BenchConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.config.throughput = Some(tp);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("{}/{id}", self.name);
        let mut b = Bencher {
            config: self.config,
        };
        f(&mut b);
        self
    }

    /// No-op: reports are printed as benches run.
    pub fn finish(&mut self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("{id}");
        let mut b = Bencher {
            config: BenchConfig::default(),
        };
        f(&mut b);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: BenchConfig::default(),
            _parent: self,
        }
    }
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .throughput(Throughput::Elements(10));
        group.bench_function("spin", |b| {
            b.iter(|| {
                std::hint::black_box((0..100u64).sum::<u64>());
            })
        });
        group.finish();
    }
}
