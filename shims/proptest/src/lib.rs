//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! `Strategy` with `prop_map`, `Just`, tuple/range/`&str`-pattern
//! strategies, `prop::collection::vec`, `prop_oneof!`, `any::<bool>()`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, acceptable for a vendored shim:
//! * generation is driven by a fixed-seed xorshift RNG, so runs are
//!   deterministic (no persisted failure seeds);
//! * failing cases are reported, not shrunk;
//! * `&str` strategies support only the `[x-y]{m,n}` pattern form the
//!   tests use, not full regex.

use std::marker::PhantomData;

/// Deterministic xorshift64* generator driving all case generation.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert!` — carried out of the test body as an `Err`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut Rng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
}

/// `&str` patterns: supports the two forms the tests use — a single
/// character class `[x-y]{m,n}`, and `\PC{m,n}` (any non-control
/// character) with an inclusive repetition range.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let (class, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| class.generate(rng)).collect()
    }
}

enum CharClass {
    Range(char, char),
    NonControl,
}

impl CharClass {
    fn generate(&self, rng: &mut Rng) -> char {
        match self {
            CharClass::Range(lo, hi) => {
                let span = (*hi as u32) - (*lo as u32) + 1;
                char::from_u32(*lo as u32 + rng.below(span as u64) as u32).unwrap()
            }
            CharClass::NonControl => loop {
                // Mostly printable ASCII, with some multi-byte scalars so
                // the lexer/parser see real UTF-8 variety.
                let c = match rng.below(10) {
                    0..=6 => char::from_u32(0x20 + rng.below(0x5f) as u32),
                    7..=8 => char::from_u32(0xa0 + rng.below(0x2f60) as u32),
                    _ => char::from_u32(0x1f300 + rng.below(0x150) as u32),
                };
                if let Some(c) = c.filter(|c| !c.is_control()) {
                    return c;
                }
            },
        }
    }
}

/// Parses `[x-y]{m,n}` / `\PC{m,n}` into a class and length bounds.
fn parse_class_pattern(pattern: &str) -> Option<(CharClass, usize, usize)> {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        (CharClass::NonControl, rest)
    } else {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = class.chars();
        let lo = chars.next()?;
        if chars.next()? != '-' {
            return None;
        }
        let hi = chars.next()?;
        if chars.next().is_some() || hi < lo {
            return None;
        }
        (CharClass::Range(lo, hi), rest)
    };
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.parse().ok()?, max.parse().ok()?);
    if min > max {
        return None;
    }
    Some((class, min, max))
}

pub mod strategy {
    use super::{Rng, Strategy};

    /// `Just(value)`: always yields a clone of `value`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut Rng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use super::{Rng, Strategy};

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`). Only what the
/// workspace needs.
pub trait Arbitrary {
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::Rng::new(0x9e37_79b9_7f4a_7c15);
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed: {}", stringify!($name), e);
                }
            }
        }
    )*};
}

/// Asserts inside a `proptest!` body; failure fails the case, not the
/// whole process, mirroring proptest's error-based flow.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, $($fmt)+)
            }
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Just;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_respects_class_and_len() {
        let mut rng = crate::Rng::new(7);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[ -~]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_and_vec_generate() {
        let strat = prop::collection::vec(
            prop_oneof![Just("a".to_string()), "[b-d]{1,2}".prop_map(|s| s)],
            0..5,
        );
        let mut rng = crate::Rng::new(3);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn macro_generates_cases(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let negated = !flag;
            prop_assert_eq!(flag, !negated);
        }
    }
}
