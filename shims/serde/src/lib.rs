//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! small JSON-oriented subset of serde the workspace uses: `Serialize` /
//! `Deserialize` traits, a streaming JSON [`Serializer`], a parsed JSON
//! [`Value`] tree, and impls for the std types that appear in derived
//! structs. The derive macros live in `shims/serde_derive` and generate
//! code against exactly this API.
//!
//! Wire-format notes (self-consistent; only this shim reads its output):
//! * scalars, strings, `Option`, `Vec`, structs and enums follow
//!   serde_json's layout;
//! * maps and sets serialize as arrays (`[[key, value], ...]` / `[v, ...]`)
//!   sorted by serialized key so output is deterministic even for
//!   `HashMap`s with non-string keys such as `HashMap<FuncName, _>`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization: write `self` into the streaming JSON writer.
pub trait Serialize {
    fn serialize(&self, s: &mut Serializer);
}

/// Deserialization: rebuild `Self` from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------------- errors

/// Deserialization (or parse) error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// "expected an object while deserializing `Span`"-style error.
    pub fn expected(what: &str, ty: &str) -> Error {
        Error {
            message: format!("expected {what} while deserializing `{ty}`"),
        }
    }

    /// Free-form error.
    pub fn msg(message: String) -> Error {
        Error { message }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

// -------------------------------------------------------------------- value

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object entries in source order.
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Looks up `name` in an object's entries; missing keys read as `null`
/// so `Option` fields deserialize to `None`.
pub fn obj_field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Indexes an array's entries; out-of-range reads as `null`.
pub fn arr_item(arr: &[Value], idx: usize) -> &Value {
    arr.get(idx).unwrap_or(&NULL)
}

// --------------------------------------------------------------- serializer

enum Frame {
    Obj { count: usize },
    Arr { count: usize },
}

/// Streaming JSON writer. Infallible: output goes to an owned `String`.
pub struct Serializer {
    out: String,
    pretty: bool,
    stack: Vec<Frame>,
    /// Set after `key()`: the next value completes the entry, no prefix.
    pending_key: bool,
}

impl Serializer {
    pub fn new(pretty: bool) -> Serializer {
        Serializer {
            out: String::new(),
            pretty,
            stack: Vec::new(),
            pending_key: false,
        }
    }

    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self, depth: usize) {
        self.out.push('\n');
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    /// Comma/indent bookkeeping before a value is written.
    fn value_prefix(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        let pretty = self.pretty;
        let depth = self.stack.len();
        if let Some(Frame::Arr { count }) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
            if pretty {
                self.newline_indent(depth);
            }
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                '\u{8}' => self.out.push_str("\\b"),
                '\u{c}' => self.out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    pub fn begin_obj(&mut self) {
        self.value_prefix();
        self.out.push('{');
        self.stack.push(Frame::Obj { count: 0 });
    }

    pub fn end_obj(&mut self) {
        let closed = self.stack.pop();
        if self.pretty && matches!(closed, Some(Frame::Obj { count }) if count > 0) {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.out.push('}');
    }

    pub fn begin_arr(&mut self) {
        self.value_prefix();
        self.out.push('[');
        self.stack.push(Frame::Arr { count: 0 });
    }

    pub fn end_arr(&mut self) {
        let closed = self.stack.pop();
        if self.pretty && matches!(closed, Some(Frame::Arr { count }) if count > 0) {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.out.push(']');
    }

    /// Writes an object key; the next write completes the entry.
    pub fn key(&mut self, name: &str) {
        let pretty = self.pretty;
        let depth = self.stack.len();
        if let Some(Frame::Obj { count }) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
            if pretty {
                self.newline_indent(depth);
            }
        }
        self.push_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.pending_key = true;
    }

    pub fn string(&mut self, v: &str) {
        self.value_prefix();
        self.push_escaped(v);
    }

    pub fn null(&mut self) {
        self.value_prefix();
        self.out.push_str("null");
    }

    pub fn boolean(&mut self, v: bool) {
        self.value_prefix();
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub fn uint(&mut self, v: u64) {
        self.value_prefix();
        self.out.push_str(&v.to_string());
    }

    pub fn int(&mut self, v: i64) {
        self.value_prefix();
        self.out.push_str(&v.to_string());
    }

    pub fn float(&mut self, v: f64) {
        self.value_prefix();
        if v.is_finite() {
            // `{}` is the shortest round-trippable form; force a `.0` so the
            // token stays a float, matching serde_json's ryu output.
            let text = v.to_string();
            self.out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            // JSON has no NaN/inf; serde_json writes null.
            self.out.push_str("null");
        }
    }
}

/// Serializes `value` into JSON text (compact or pretty, 2-space indent).
pub fn to_json_string<T: Serialize + ?Sized>(value: &T, pretty: bool) -> String {
    let mut s = Serializer::new(pretty);
    value.serialize(&mut s);
    s.finish()
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected `:`")?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uDClo`.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos past the digits; undo the
                            // +1 the outer loop is about to apply.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.error("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

/// Parses JSON text into a [`Value`].
pub fn parse_json(text: &str) -> Result<Value, Error> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

// ------------------------------------------------------------- scalar impls

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.uint(*self as u64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as $t),
                    _ => Err(Error::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.int(*self as i64);
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(Error::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self, s: &mut Serializer) {
        s.float(*self);
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut Serializer) {
        s.float(f64::from(*self));
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n as f32),
            _ => Err(Error::expected("number", "f32")),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.boolean(*self);
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for char {
    fn serialize(&self, s: &mut Serializer) {
        let mut buf = [0u8; 4];
        s.string(self.encode_utf8(&mut buf));
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(t) if t.chars().count() == 1 => Ok(t.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(t) => Ok(t.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for () {
    fn serialize(&self, s: &mut Serializer) {
        s.null();
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", "()")),
        }
    }
}

// ---------------------------------------------------------- container impls

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(inner) => inner.serialize(s),
            None => s.null(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_arr();
        for item in self {
            item.serialize(s);
        }
        s.end_arr();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v.as_arr().ok_or_else(|| Error::expected("array", "Vec"))?;
        items.iter().map(T::deserialize).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $k:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, s: &mut Serializer) {
                s.begin_arr();
                $(self.$k.serialize(s);)+
                s.end_arr();
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::expected("array", "tuple"))?;
                Ok(($($t::deserialize(arr_item(arr, $k))?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Sorts map/set entries by their serialized-key text so iteration-order
/// randomness in `HashMap`/`HashSet` never reaches the output.
fn sorted_by_key_text<T>(items: impl Iterator<Item = T>, key: impl Fn(&T) -> String) -> Vec<T> {
    let mut entries: Vec<(String, T)> = items.map(|t| (key(&t), t)).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries.into_iter().map(|(_, t)| t).collect()
}

macro_rules! impl_map {
    ($map:ident, $($bound:tt)+) => {
        impl<K: Serialize, V: Serialize> Serialize for $map<K, V> {
            fn serialize(&self, s: &mut Serializer) {
                s.begin_arr();
                for (k, v) in
                    sorted_by_key_text(self.iter(), |(k, _)| to_json_string(*k, false))
                {
                    s.begin_arr();
                    k.serialize(s);
                    v.serialize(s);
                    s.end_arr();
                }
                s.end_arr();
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $map<K, V> {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_arr()
                    .ok_or_else(|| Error::expected("array of pairs", "map"))?;
                items
                    .iter()
                    .map(|item| {
                        let pair = item
                            .as_arr()
                            .ok_or_else(|| Error::expected("[key, value] pair", "map"))?;
                        Ok((
                            K::deserialize(arr_item(pair, 0))?,
                            V::deserialize(arr_item(pair, 1))?,
                        ))
                    })
                    .collect()
            }
        }
    };
}

impl_map!(HashMap, Eq + Hash);
impl_map!(BTreeMap, Ord);

macro_rules! impl_set {
    ($set:ident, $($bound:tt)+) => {
        impl<T: Serialize> Serialize for $set<T> {
            fn serialize(&self, s: &mut Serializer) {
                s.begin_arr();
                for item in sorted_by_key_text(self.iter(), |t| to_json_string(*t, false)) {
                    item.serialize(s);
                }
                s.end_arr();
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $set<T> {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr().ok_or_else(|| Error::expected("array", "set"))?;
                items.iter().map(T::deserialize).collect()
            }
        }
    };
}

impl_set!(HashSet, Eq + Hash);
impl_set!(BTreeSet, Ord);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42.0", "-1.5", "\"hi\\n\""] {
            assert!(parse_json(text).is_ok(), "{text}");
        }
        assert_eq!(parse_json("42").unwrap(), Value::Num(42.0));
    }

    #[test]
    fn escapes_roundtrip() {
        let mut s = Serializer::new(false);
        s.string("a\"b\\c\nd\u{1}e");
        let text = s.finish();
        assert_eq!(
            parse_json(&text).unwrap(),
            Value::Str("a\"b\\c\nd\u{1}e".into())
        );
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(
            parse_json("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            Value::Str("A😀".into())
        );
    }

    #[test]
    fn pretty_object_layout() {
        let mut s = Serializer::new(true);
        s.begin_obj();
        s.key("a");
        s.uint(1);
        s.key("b");
        s.begin_arr();
        s.uint(2);
        s.uint(3);
        s.end_arr();
        s.end_obj();
        assert_eq!(
            s.finish(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}"
        );
    }

    #[test]
    fn map_serialization_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(to_json_string(&m, false), "[[\"a\",1],[\"b\",2]]");
        let back: HashMap<String, u32> =
            Deserialize::deserialize(&parse_json("[[\"a\",1],[\"b\",2]]").unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
