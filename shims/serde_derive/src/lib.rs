//! Offline stand-in for `serde_derive`.
//!
//! The build container has no network access to crates.io, so the real
//! serde stack cannot be vendored. This proc-macro crate implements the
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` subset the workspace
//! actually uses, generating impls of the vendored `serde` facade's traits
//! (see `shims/serde`). The wire format mirrors serde_json's defaults:
//!
//! * named struct        → `{"field": value, ...}`
//! * newtype struct      → inner value
//! * tuple struct        → `[v0, v1, ...]`
//! * unit struct         → `null`
//! * unit enum variant   → `"Variant"`
//! * newtype variant     → `{"Variant": value}`
//! * tuple variant       → `{"Variant": [v0, v1]}`
//! * struct variant      → `{"Variant": {"field": value}}`
//!
//! The parser walks raw `proc_macro` token trees (no `syn`/`quote`), which
//! is enough because the workspace derives only on plain non-generic
//! structs and enums with no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list: named (`{ a: T, b: U }`) or positional (`(T, U)`).
enum Fields {
    Named(Vec<String>),
    Unnamed(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips `#[...]` attributes and visibility qualifiers at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Bracket {
                        i += 1;
                        continue;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // Optional `(crate)` / `(super)` group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => return i,
        }
    }
}

/// Counts top-level comma-separated entries in a tuple field group,
/// tracking `<...>` and nested group depth so type commas don't split.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        fields -= 1;
    }
    fields
}

/// Parses `name: Type, ...` field lists inside a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i += 1;
        // Expect `:`, then skip the type up to a top-level comma.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                Fields::Unnamed(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g);
                i += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Unnamed(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

// ---------------------------------------------------------------- Serialize

fn serialize_named(target: &str, names: &[String], access: &str) -> String {
    let mut body = String::from("s.begin_obj();");
    for n in names {
        body.push_str(&format!(
            "s.key({n:?}); ::serde::Serialize::serialize({access}{n}, s);"
        ));
    }
    body.push_str("s.end_obj();");
    let _ = target;
    body
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => serialize_named(name, names, "&self."),
                Fields::Unnamed(1) => "::serde::Serialize::serialize(&self.0, s);".to_string(),
                Fields::Unnamed(n) => {
                    let mut b = String::from("s.begin_arr();");
                    for k in 0..*n {
                        b.push_str(&format!("::serde::Serialize::serialize(&self.{k}, s);"));
                    }
                    b.push_str("s.end_arr();");
                    b
                }
                Fields::Unit => "s.null();".to_string(),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!("{name}::{vn} => s.string({vn:?}),"));
                    }
                    Fields::Unnamed(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(f0) => {{ s.begin_obj(); s.key({vn:?}); \
                             ::serde::Serialize::serialize(f0, s); s.end_obj(); }}"
                        ));
                    }
                    Fields::Unnamed(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let mut inner = String::from("s.begin_arr();");
                        for b in &binds {
                            inner.push_str(&format!("::serde::Serialize::serialize({b}, s);"));
                        }
                        inner.push_str("s.end_arr();");
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ s.begin_obj(); s.key({vn:?}); \
                             {inner} s.end_obj(); }}",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let inner = serialize_named(name, fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ s.begin_obj(); s.key({vn:?}); \
                             {inner} s.end_obj(); }}"
                        ));
                    }
                }
            }
            (name.clone(), format!("match self {{ {arms} }}"))
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, s: &mut ::serde::Serializer) {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl")
}

// -------------------------------------------------------------- Deserialize

fn deserialize_named(ty: &str, path: &str, names: &[String], src: &str) -> String {
    let mut fields = String::new();
    for n in names {
        fields.push_str(&format!(
            "{n}: ::serde::Deserialize::deserialize(::serde::obj_field({src}, {n:?}))?,"
        ));
    }
    let _ = ty;
    format!("::std::result::Result::Ok({path} {{ {fields} }})")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let build = deserialize_named(name, name, names, "obj");
                    format!(
                        "let obj = v.as_obj().ok_or_else(|| \
                         ::serde::Error::expected(\"object\", {name:?}))?; {build}"
                    )
                }
                Fields::Unnamed(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))"
                ),
                Fields::Unnamed(n) => {
                    let mut parts = String::new();
                    for k in 0..*n {
                        parts.push_str(&format!(
                            "::serde::Deserialize::deserialize(::serde::arr_item(arr, {k}))?,"
                        ));
                    }
                    format!(
                        "let arr = v.as_arr().ok_or_else(|| \
                         ::serde::Error::expected(\"array\", {name:?}))?; \
                         ::std::result::Result::Ok({name}({parts}))"
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    Fields::Unnamed(1) => {
                        data_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        ));
                    }
                    Fields::Unnamed(n) => {
                        let mut parts = String::new();
                        for k in 0..*n {
                            parts.push_str(&format!(
                                "::serde::Deserialize::deserialize(::serde::arr_item(arr, {k}))?,"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let arr = inner.as_arr().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", {vn:?}))?; \
                             ::std::result::Result::Ok({name}::{vn}({parts})) }}"
                        ));
                    }
                    Fields::Named(fields) => {
                        let build =
                            deserialize_named(name, &format!("{name}::{vn}"), fields, "obj");
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let obj = inner.as_obj().ok_or_else(|| \
                             ::serde::Error::expected(\"object\", {vn:?}))?; {build} }}"
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                   ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                     {unit_arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                       ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                     let (tag, inner) = &pairs[0];\n\
                     match tag.as_str() {{\n\
                       {data_arms}\n\
                       other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }}\n\
                   }},\n\
                   _ => ::std::result::Result::Err(::serde::Error::expected(\
                     \"string or single-key object\", {name:?})),\n\
                 }}"
            );
            (name.clone(), body)
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
             {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl")
}
