//! Offline stand-in for `serde_json`.
//!
//! Exposes the `to_string` / `to_string_pretty` / `from_str` surface the
//! workspace uses, delegating to the vendored `serde` facade's streaming
//! writer and JSON parser (see `shims/serde` for wire-format notes).

use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(serde::Error);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::to_json_string(value, false))
}

/// Serializes `value` as pretty JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::to_json_string(value, true))
}

/// Parses JSON text into `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = serde::parse_json(text)?;
    Ok(T::deserialize(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_roundtrip() {
        let v = vec!["a".to_string(), "b\"c".to_string()];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[\"a\",\"b\\\"c\"]");
        let back: Vec<String> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_roundtrip() {
        let text = to_string(&Some(3u32)).unwrap();
        let back: Option<u32> = from_str(&text).unwrap();
        assert_eq!(back, Some(3));
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn parse_error_reports_position() {
        let err = from_str::<Vec<u32>>("[1,").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
