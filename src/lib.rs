//! # phpsafe-repro — workspace umbrella
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the substance lives in
//! the member crates, re-exported here for convenience:
//!
//! * [`phpsafe`] — the analyzer (the paper's contribution);
//! * [`php_lexer`] / [`php_ast`] — the PHP front end;
//! * [`taint_config`] — vulnerability configuration profiles;
//! * [`phpsafe_baselines`] — the RIPS-like and Pixy-like comparison tools;
//! * [`php_exec`] — the concrete executor / exploit-confirmation harness;
//! * [`phpsafe_corpus`] — the 35-plugin synthetic corpus with ground truth;
//! * [`phpsafe_eval`] — the evaluation pipeline regenerating the paper's
//!   tables and figures.
//!
//! Start at the README, or run:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run -p phpsafe-bench --bin repro --release
//! ```

pub use php_ast;
pub use php_exec;
pub use php_lexer;
pub use phpsafe;
pub use phpsafe_baselines;
pub use phpsafe_corpus;
pub use phpsafe_eval;
pub use taint_config;
