//! Full-pipeline integration test: generate the corpus, run all three
//! tools on both versions, and assert every headline relation of the
//! paper's evaluation section in one place.

use phpsafe_corpus::Version;
use phpsafe_eval::{tables, Evaluation, RecallMode};
use std::sync::OnceLock;
use taint_config::{VectorClass, VulnClass};

fn eval() -> &'static Evaluation {
    static E: OnceLock<Evaluation> = OnceLock::new();
    E.get_or_init(Evaluation::run)
}

/// Table I headline: phpSAFE leads every metric, in both versions.
#[test]
fn table1_tool_ranking() {
    let e = eval();
    for v in Version::ALL {
        for class in [None, Some(VulnClass::Xss)] {
            let p = e.metrics("phpSAFE", v, class, RecallMode::PaperOptimistic);
            let r = e.metrics("RIPS", v, class, RecallMode::PaperOptimistic);
            let x = e.metrics("Pixy", v, class, RecallMode::PaperOptimistic);
            assert!(p.tp > r.tp && r.tp > x.tp, "{v:?} {class:?} TP ranking");
            assert!(
                p.precision() > r.precision() && r.precision() > x.precision(),
                "{v:?} {class:?} precision ranking"
            );
            assert!(
                p.recall() > r.recall() && r.recall() > x.recall(),
                "{v:?} {class:?} recall ranking"
            );
            assert!(
                p.f_score() > r.f_score() && x.f_score() < r.f_score(),
                "{v:?} {class:?} f-score ranking"
            );
        }
    }
}

/// Table I SQLi block: phpSAFE is the only tool detecting SQL injection.
#[test]
fn table1_sqli_exclusive_to_phpsafe() {
    let e = eval();
    for v in Version::ALL {
        let p = e.metrics(
            "phpSAFE",
            v,
            Some(VulnClass::Sqli),
            RecallMode::FullGroundTruth,
        );
        assert!(p.tp >= 8 && p.recall().unwrap() >= 0.85, "{v:?}: {p:?}");
        for tool in ["RIPS", "Pixy"] {
            let m = e.metrics(tool, v, Some(VulnClass::Sqli), RecallMode::FullGroundTruth);
            assert_eq!(m.tp, 0, "{tool} {v:?}");
        }
    }
    // RIPS's lone 2014 SQLi false positive (Table I).
    let r14 = e.metrics(
        "RIPS",
        Version::V2014,
        Some(VulnClass::Sqli),
        RecallMode::FullGroundTruth,
    );
    assert_eq!(r14.fp, 1);
}

/// §V.A trends: phpSAFE & RIPS improve with the 2014 code, Pixy collapses;
/// RIPS's XSS detection jumps sharply (paper: +115%).
#[test]
fn temporal_trends() {
    let e = eval();
    let tp = |tool: &str, v: Version| e.cell(tool, v).detected.len();
    assert!(tp("phpSAFE", Version::V2014) > tp("phpSAFE", Version::V2012));
    let rips_growth = tp("RIPS", Version::V2014) as f64 / tp("RIPS", Version::V2012) as f64;
    assert!(rips_growth > 1.5, "RIPS XSS jump: {rips_growth:.2}x");
    assert!(tp("Pixy", Version::V2014) < tp("Pixy", Version::V2012));
}

/// Fig. 2: distinct confirmed vulnerabilities grow ~50% in two years, and
/// every tool has exclusive findings in 2012 ("no silver bullet").
#[test]
fn fig2_overlap_shape() {
    let e = eval();
    let v12 = tables::venn_counts(e, Version::V2012);
    let v14 = tables::venn_counts(e, Version::V2014);
    assert_eq!(v12.total, 394, "paper: 394 distinct in 2012");
    assert!(
        (550..=586).contains(&v14.total),
        "paper: 586 distinct in 2014"
    );
    let growth = v14.total as f64 / v12.total as f64 - 1.0;
    assert!(
        (0.40..=0.60).contains(&growth),
        "paper: +51%, got {growth:.2}"
    );
    assert!(v12.only_phpsafe > 0 && v12.only_rips > 0 && v12.only_pixy > 0);
}

/// Table II: the input-vector distribution matches the paper's columns.
#[test]
fn table2_vector_distribution() {
    let rows = tables::table2_counts(eval());
    let get = |vc: VectorClass| *rows.iter().find(|r| r.0 == vc).expect("row");
    // Paper 2012 column: POST 22, GET 96, mixed 24, DB 211, F/F/A 41.
    assert_eq!(get(VectorClass::Post).1, 22);
    assert_eq!(get(VectorClass::Get).1, 96);
    assert_eq!(get(VectorClass::Mixed).1, 24);
    assert_eq!(get(VectorClass::Database).1, 211);
    assert_eq!(get(VectorClass::FileFunctionArray).1, 41);
    // Paper 2014 column: POST 43, GET 111, mixed 57, DB 363, F/F/A 11.
    assert_eq!(get(VectorClass::Post).2, 43);
    assert_eq!(get(VectorClass::Get).2, 111);
    assert_eq!(get(VectorClass::Mixed).2, 57);
    assert_eq!(get(VectorClass::Database).2, 363);
    assert_eq!(get(VectorClass::FileFunctionArray).2, 11);
}

/// §V.A OOP: phpSAFE alone finds the WordPress-object vulnerabilities —
/// 151 in 10 plugins (2012), 179 in 7 plugins (2014).
#[test]
fn oop_vulnerability_counts() {
    let e = eval();
    for (v, expect_n, expect_plugins) in [(Version::V2012, 151, 10), (Version::V2014, 179, 7)] {
        let truth = e.truth_map(v);
        let detected: Vec<_> = e
            .cell("phpSAFE", v)
            .detected
            .iter()
            .filter(|id| truth.get(id.as_str()).map(|t| t.oop).unwrap_or(false))
            .collect();
        assert_eq!(detected.len(), expect_n, "{v:?}");
        let plugins: std::collections::HashSet<_> = detected
            .iter()
            .filter_map(|id| truth.get(id.as_str()).map(|t| t.plugin.as_str()))
            .collect();
        assert_eq!(plugins.len(), expect_plugins, "{v:?}");
    }
}

/// §V.D inertia: a large share of the 2014 vulnerabilities were disclosed
/// to developers in 2013 and never fixed.
#[test]
fn inertia_in_fixing() {
    let (total, carried, easy) = tables::inertia_counts(eval());
    let share = carried as f64 / total as f64;
    assert!((0.35..=0.50).contains(&share), "paper: 42%; got {share:.2}");
    let easy_share = easy as f64 / carried as f64;
    assert!(
        (0.15..=0.45).contains(&easy_share),
        "paper: 24% trivially exploitable; got {easy_share:.2}"
    );
}

/// §V.E robustness: phpSAFE fails 1 file (2012) / 3 files (2014); RIPS
/// completes everything; Pixy fails dozens of OOP files and errors on
/// 2014-era syntax.
#[test]
fn robustness_and_responsiveness() {
    let e = eval();
    assert_eq!(e.cell("phpSAFE", Version::V2012).failed_resource, 1);
    assert_eq!(e.cell("phpSAFE", Version::V2014).failed_resource, 3);
    for v in Version::ALL {
        assert_eq!(e.cell("RIPS", v).failed_resource, 0);
        assert_eq!(e.cell("RIPS", v).failed_unsupported, 0);
    }
    let px12 = e.cell("Pixy", Version::V2012).failed_unsupported;
    let px14 = e.cell("Pixy", Version::V2014).failed_unsupported;
    assert!(px12 >= 25, "paper: 32 failed files; got {px12}");
    assert!(
        px14 > px12,
        "paper: +37 errors in 2014; got {px12} -> {px14}"
    );
    // Timing exists and is nonzero for every cell.
    for tool in phpsafe_eval::TOOLS {
        for v in Version::ALL {
            assert!(e.cell(tool, v).seconds > 0.0);
        }
    }
}

/// §V.C: numeric-intent share of vulnerable variables is in the paper's
/// band (39%).
#[test]
fn numeric_variable_share() {
    let e = eval();
    let truth = e.truth_map(Version::V2014);
    let u = e.union_detected(Version::V2014);
    let numeric = u
        .iter()
        .filter(|id| truth.get(**id).map(|t| t.numeric).unwrap_or(false))
        .count();
    let share = numeric as f64 / u.len() as f64;
    assert!((0.25..=0.50).contains(&share), "paper: 39%; got {share:.2}");
}

/// The corpus itself matches the paper's growth narrative.
#[test]
fn corpus_scale() {
    let c = eval().corpus();
    let (f12, l12) = c.size_of(Version::V2012);
    let (f14, l14) = c.size_of(Version::V2014);
    assert!(f12 >= 150, "2012 files: {f12}");
    assert!(f14 > f12);
    assert!(l12 >= 15_000, "2012 LOC: {l12}");
    assert!(l14 as f64 / l12 as f64 >= 1.5, "LOC growth {l12} -> {l14}");
}
