//! End-to-end tests of the concrete code examples quoted in the paper
//! (§III.E and §V.C), run through all three tools.

use phpsafe::{PhpSafe, PluginProject, SourceFile};
use phpsafe_baselines::{AnalysisTool, Pixy, Rips};
use taint_config::{SourceKind, VulnClass};

fn plugin(name: &str, src: &str) -> PluginProject {
    PluginProject::new(name).with_file(SourceFile::new(format!("{name}.php"), src))
}

/// §III.E — mail-subscribe-list 2.1.1: subscriber rows rendered without
/// sanitization, reachable only through `$wpdb` object methods.
#[test]
fn mail_subscribe_list_example() {
    let p = plugin(
        "mail-subscribe-list",
        r#"<?php
$results = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "sml");
foreach ($results as $row) {
    echo $row->sml_name;
}
"#,
    );
    let phpsafe = PhpSafe::new().analyze(&p);
    assert_eq!(phpsafe.vulns.len(), 1, "{:?}", phpsafe.vulns);
    let v = &phpsafe.vulns[0];
    assert_eq!(v.class, VulnClass::Xss);
    assert_eq!(v.source_kind, SourceKind::Database);
    assert!(v.via_oop, "the flow passes $wpdb->get_results");
    assert_eq!(v.line, 4);

    // "Failing to detect the method $wpdb->get_results prevents finding
    // this vulnerability" — and indeed the baselines fail.
    assert!(Rips::new().analyze(&p).vulns.is_empty());
    let pixy = Pixy::new().analyze(&p);
    assert!(pixy.vulns.is_empty());
    assert_eq!(pixy.stats.files_failed, 1, "Pixy rejects the OOP file");
}

/// §V.C type 1 — wp-symposium: POST data directly echoed (the
/// "likely to be directly manipulated by attackers" class).
#[test]
fn wp_symposium_post_example() {
    let p = plugin(
        "wp-symposium",
        r#"<?php
echo 'Created ' . $_POST['img_path'] . '.';
"#,
    );
    for (outcome, tool) in [
        (PhpSafe::new().analyze(&p), "phpSAFE"),
        (Rips::new().analyze(&p), "RIPS"),
        (Pixy::new().analyze(&p), "Pixy"),
    ] {
        assert_eq!(outcome.vulns.len(), 1, "{tool}: {:?}", outcome.vulns);
        assert_eq!(outcome.vulns[0].class, VulnClass::Xss);
        assert_eq!(outcome.vulns[0].source_kind, SourceKind::Post);
    }
}

/// §V.C type 2 — wp-photo-album-plus: blended attack where the query is
/// parameterized (no SQLi) but the stored value is echoed after
/// `stripslashes`, reverting any escaping (stored XSS).
#[test]
fn wp_photo_album_plus_blended_example() {
    let p = plugin(
        "wp-photo-album-plus",
        r#"<?php
$image = $wpdb->get_var(
    $wpdb->prepare("SELECT name FROM photos WHERE id = %d", $_GET['id']));
echo stripslashes($image);
"#,
    );
    let outcome = PhpSafe::new().analyze(&p);
    assert_eq!(outcome.vulns.len(), 1, "{:?}", outcome.vulns);
    let v = &outcome.vulns[0];
    assert_eq!(v.class, VulnClass::Xss);
    assert_eq!(v.source_kind, SourceKind::Database);
    assert!(v.via_oop);
    // No SQLi: prepare() parameterizes the query.
    assert!(outcome.vulns.iter().all(|v| v.class != VulnClass::Sqli));
}

/// §V.C type 3 — qtranslate: file contents echoed (the hard-to-control
/// File/Function/Array class).
#[test]
fn qtranslate_file_example() {
    let p = plugin(
        "qtranslate",
        r#"<?php
$res = fgets($fp, 128);
echo $res;
"#,
    );
    let outcome = PhpSafe::new().analyze(&p);
    assert_eq!(outcome.vulns.len(), 1);
    assert_eq!(outcome.vulns[0].source_kind, SourceKind::File);
    // RIPS models file functions too.
    assert_eq!(Rips::new().analyze(&p).vulns.len(), 1);
}

/// §V.A — the register_globals vulnerability class only Pixy models.
#[test]
fn register_globals_only_pixy() {
    let p = plugin(
        "legacy",
        r#"<?php
echo '<a href="?o=' . $sort_order . '">order</a>';
"#,
    );
    assert!(PhpSafe::new().analyze(&p).vulns.is_empty());
    assert!(Rips::new().analyze(&p).vulns.is_empty());
    assert_eq!(Pixy::new().analyze(&p).vulns.len(), 1);
}

/// §V.A — "although phpSAFE and RIPS are able to detect vulnerabilities in
/// functions that are not called from the plugin code, Pixy is unable to
/// do so."
#[test]
fn uncalled_function_coverage_difference() {
    let p = plugin(
        "hooks",
        r#"<?php
add_action('init', 'handle');
function handle() {
    echo $_REQUEST['q'];
}
"#,
    );
    assert_eq!(PhpSafe::new().analyze(&p).vulns.len(), 1);
    assert_eq!(Rips::new().analyze(&p).vulns.len(), 1);
    assert!(Pixy::new().analyze(&p).vulns.is_empty());
}
