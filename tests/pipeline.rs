//! Filesystem pipeline test: dump a corpus plugin to disk the way
//! `corpus-dump` does, load it back from disk the way the `phpsafe` CLI
//! does, and check the analysis is identical to the in-memory path — plus
//! JSON/HTML report round trips.

use phpsafe::{AnalysisOutcome, PhpSafe, PluginProject, SourceFile};
use phpsafe_corpus::{Corpus, Version};
use std::path::Path;

/// Unique-ish temp dir per test run.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("phpsafe-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_project(root: &Path, project: &PluginProject) {
    for f in project.files() {
        let path = root.join(&f.path);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, &f.content).expect("write");
    }
}

fn read_project(root: &Path, name: &str) -> PluginProject {
    fn collect(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .expect("read_dir")
            .collect::<Result<_, _>>()
            .expect("entries");
        entries.sort_by_key(|e| e.path());
        for e in entries {
            let p = e.path();
            if p.is_dir() {
                collect(root, &p, out);
            } else if p.extension().and_then(|x| x.to_str()) == Some("php") {
                let rel = p
                    .strip_prefix(root)
                    .expect("prefix")
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(SourceFile::new(
                    rel,
                    std::fs::read_to_string(&p).expect("read"),
                ));
            }
        }
    }
    let mut files = Vec::new();
    collect(root, root, &mut files);
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let mut project = PluginProject::new(name);
    for f in files {
        project.push_file(f);
    }
    project
}

#[test]
fn disk_round_trip_preserves_analysis() {
    let corpus = Corpus::generate();
    let plugin = corpus
        .plugins()
        .iter()
        .find(|p| p.name == "wp-symposium")
        .expect("plugin");
    let original = plugin.project(Version::V2014);

    let dir = temp_dir("roundtrip");
    write_project(&dir, original);
    let reloaded = read_project(&dir, original.name());

    assert_eq!(reloaded.files().len(), original.files().len());
    let a = PhpSafe::new().analyze(original);
    let b = PhpSafe::new().analyze(&reloaded);
    assert_eq!(a.vulns, b.vulns, "disk round trip must not change findings");
    assert_eq!(a.stats, b.stats);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_report_round_trips_through_disk() {
    let p = PluginProject::new("j").with_file(SourceFile::new(
        "j.php",
        "<?php echo $_GET['x']; $wpdb->query(\"DELETE FROM t WHERE a = '{$_POST['a']}'\");",
    ));
    let outcome = PhpSafe::new().analyze(&p);
    assert_eq!(outcome.vulns.len(), 2);

    let dir = temp_dir("json");
    let path = dir.join("report.json");
    std::fs::write(&path, outcome.to_json().expect("serialize")).expect("write");
    let loaded: AnalysisOutcome =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    assert_eq!(loaded, outcome);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn html_report_written_to_disk_is_wellformed() {
    let p = PluginProject::new("h")
        .with_file(SourceFile::new("h.php", "<?php echo $_GET['<payload>'];"));
    let outcome = PhpSafe::new().analyze(&p);
    let html = phpsafe::render_html(&outcome);
    let dir = temp_dir("html");
    let path = dir.join("report.html");
    std::fs::write(&path, &html).expect("write");
    let loaded = std::fs::read_to_string(&path).expect("read");
    assert!(loaded.starts_with("<!DOCTYPE html>"));
    assert!(loaded.ends_with("</html>\n"));
    // balanced-ish structure
    assert_eq!(loaded.matches("<body>").count(), 1);
    assert_eq!(loaded.matches("</body>").count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
