//! Cross-crate property tests: the analyzers are total and deterministic
//! on arbitrary inputs, the taint lattice obeys its laws, and metrics stay
//! in bounds.

use phpsafe::taint::Taint;
use phpsafe::{PhpSafe, PluginProject, SourceFile};
use phpsafe_baselines::{AnalysisTool, Pixy, Rips};
use phpsafe_eval::Metrics;
use proptest::prelude::*;
use taint_config::{TaintLabels, VulnClass};

fn php_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("<?php ".to_string()),
        Just("$x = $_GET['a']; ".to_string()),
        Just("echo $x; ".to_string()),
        Just("echo htmlentities($y); ".to_string()),
        Just("$wpdb->query(\"DELETE $q\"); ".to_string()),
        Just("class C { function m() { echo $_POST['p']; } } ".to_string()),
        Just("function f($a) { return $a . 'x'; } ".to_string()),
        Just("foreach ($r as $k => $v) { echo $v; } ".to_string()),
        Just("include 'other.php'; ".to_string()),
        Just("if ($a) { $x = intval($x); } else { ".to_string()), // broken
        Just("} ) ; ?> <b>html</b> <?php ".to_string()),          // broken
        Just("$o = new C(); $o->m(); ".to_string()),
        Just("list($a,$b) = explode(',', $_COOKIE['c']); ".to_string()),
        Just("\"interp {$obj->prop} $plain\"; ".to_string()),
        Just("switch($v){case 1: echo $v; default: break;} ".to_string()),
        "[ -~]{0,20}".prop_map(|s| s),
    ];
    prop::collection::vec(fragment, 0..16).prop_map(|v| v.concat())
}

fn labels() -> impl Strategy<Value = TaintLabels> {
    // Any subset of the 9 registered source kinds.
    (0u16..512).prop_map(TaintLabels)
}

fn taint() -> impl Strategy<Value = Taint> {
    (
        labels(),
        labels(),
        labels(),
        labels(),
        labels(),
        any::<bool>(),
    )
        .prop_map(|(a, b, c, d, e, oop)| {
            let t = Taint {
                labels: [a, b, c, d, e],
                oop: false,
            };
            Taint {
                oop: oop && t.any(),
                ..t
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every tool terminates without panicking on arbitrary construct soup.
    #[test]
    fn analyzers_are_total(src in php_soup()) {
        let p = PluginProject::new("soup")
            .with_file(SourceFile::new("soup.php", src.clone()))
            .with_file(SourceFile::new("other.php", "<?php echo $x;"));
        let _ = PhpSafe::new().analyze(&p);
        let _ = Rips::new().analyze(&p);
        let _ = Pixy::new().analyze(&p);
    }

    /// Analysis is deterministic: same input, same outcome.
    #[test]
    fn analysis_is_deterministic(src in php_soup()) {
        let p = PluginProject::new("det").with_file(SourceFile::new("det.php", src));
        let a = PhpSafe::new().analyze(&p);
        let b = PhpSafe::new().analyze(&p);
        prop_assert_eq!(a, b);
    }

    /// Taint join is commutative, associative, idempotent, with CLEAN as
    /// the identity.
    #[test]
    fn taint_lattice_laws(a in taint(), b in taint(), c in taint()) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(Taint::CLEAN), a);
        prop_assert_eq!(Taint::CLEAN.join(a), a);
    }

    /// Sanitize removes exactly the requested classes, and reverting (join
    /// with the removed part) restores taintedness.
    #[test]
    fn sanitize_revert_inverse(a in taint()) {
        for classes in [&[VulnClass::Xss][..], &[VulnClass::Sqli][..], &VulnClass::ALL[..]] {
            let (kept, removed) = a.sanitize(classes);
            for &cl in classes {
                prop_assert!(!kept.is_tainted(cl));
            }
            let restored = kept.join(removed);
            for cl in VulnClass::ALL {
                prop_assert_eq!(restored.is_tainted(cl), a.is_tainted(cl),
                    "class {:?} of {:?}", cl, a);
            }
        }
    }

    /// Precision/recall/F-score stay within [0, 1] and F lies between the
    /// harmonic bound and min(P, R) ... i.e. F <= min(P,R) is NOT generally
    /// true, but F <= max(P,R) and F >= min(P,R) are harmonic-mean facts.
    #[test]
    fn metric_bounds(tp in 0usize..500, fp in 0usize..500, fn_ in 0usize..500) {
        let m = Metrics::new(tp, fp, fn_);
        if let (Some(p), Some(r), Some(f)) = (m.precision(), m.recall(), m.f_score()) {
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f <= p.max(r) + 1e-9);
            prop_assert!(f >= p.min(r) - 1e-9);
        }
    }

    /// A sanitizer call on any soup-derived value never yields a finding
    /// for the sanitized class at that sink.
    #[test]
    fn sanitized_sink_never_reported(key in "[a-z]{1,8}") {
        let src = format!("<?php echo htmlentities($_GET['{key}']);");
        let p = PluginProject::new("san").with_file(SourceFile::new("san.php", src));
        let o = PhpSafe::new().analyze(&p);
        prop_assert!(o.vulns.is_empty(), "{:?}", o.vulns);
    }

    /// A direct superglobal echo is always reported exactly once,
    /// whichever superglobal it is.
    #[test]
    fn direct_echo_always_found(key in "[a-z]{1,8}", sg in 0usize..4) {
        let name = ["$_GET", "$_POST", "$_COOKIE", "$_REQUEST"][sg];
        let src = format!("<?php echo {name}['{key}'];");
        let p = PluginProject::new("d").with_file(SourceFile::new("d.php", src));
        let o = PhpSafe::new().analyze(&p);
        prop_assert_eq!(o.vulns.len(), 1);
        prop_assert_eq!(o.vulns[0].class, VulnClass::Xss);
    }
}
