//! Cross-validation of the static analyzer against the concrete executor:
//! for each pattern family the corpus plants, a minimal plugin is checked
//! both ways. True vulnerabilities must be (a) reported by phpSAFE and
//! (b) confirmed by actually exploiting them; false-positive bait must be
//! reported by at least one static tool yet *never* confirm dynamically.

use php_exec::confirm_vulnerability;
use phpsafe::{PhpSafe, PluginProject, SourceFile};
use phpsafe_baselines::{AnalysisTool, Pixy, Rips};

fn plugin(src: &str) -> PluginProject {
    PluginProject::new("xval").with_file(SourceFile::new("xval.php", src))
}

/// Static finds it AND the exploit works.
fn assert_true_positive(src: &str) {
    let p = plugin(src);
    let outcome = PhpSafe::new().analyze(&p);
    assert!(
        !outcome.vulns.is_empty(),
        "static analysis must report:\n{src}"
    );
    let confirmed = outcome
        .vulns
        .iter()
        .any(|v| confirm_vulnerability(&p, v).is_confirmed());
    assert!(confirmed, "exploit must succeed:\n{src}");
}

/// Some static tool reports it, but no exploit works.
fn assert_false_positive_bait(src: &str) {
    let p = plugin(src);
    let phpsafe = PhpSafe::new().analyze(&p);
    let rips = Rips::new().analyze(&p);
    let pixy = Pixy::new().analyze(&p);
    let reported = phpsafe.vulns.len() + rips.vulns.len() + pixy.vulns.len();
    assert!(reported > 0, "bait must trip some tool:\n{src}");
    for v in phpsafe
        .vulns
        .iter()
        .chain(rips.vulns.iter())
        .chain(pixy.vulns.iter())
    {
        assert!(
            !confirm_vulnerability(&p, v).is_confirmed(),
            "bait must not be exploitable:\n{src}\nfinding: {v:?}"
        );
    }
}

#[test]
fn direct_get_echo() {
    assert_true_positive("<?php echo '<b>' . $_GET['q'] . '</b>';");
}

#[test]
fn post_hook_handler() {
    assert_true_positive("<?php add_action('init', 'h'); function h() { echo $_POST['m']; }");
}

#[test]
fn cookie_echo() {
    assert_true_positive("<?php echo $_COOKIE['pref'];");
}

#[test]
fn wpdb_stored_xss_oop() {
    assert_true_positive(
        "<?php
        class T {
            public function show() {
                global $wpdb;
                $rows = $wpdb->get_results('SELECT * FROM x');
                foreach ($rows as $r) { echo '<li>' . $r->v . '</li>'; }
            }
        }",
    );
}

#[test]
fn wpdb_sqli() {
    assert_true_positive(
        "<?php $n = $_GET['n'];
         $wpdb->query(\"SELECT * FROM t WHERE name = '$n'\");",
    );
}

#[test]
fn legacy_db_xss() {
    assert_true_positive(
        "<?php $r = mysql_query('SELECT * FROM t');
         $row = mysql_fetch_assoc($r);
         echo $row['label'];",
    );
}

#[test]
fn get_option_xss() {
    assert_true_positive("<?php echo '<div>' . get_option('banner') . '</div>';");
}

#[test]
fn file_read_xss() {
    assert_true_positive("<?php $l = fgets($fp, 128); echo $l;");
}

#[test]
fn include_split_flow() {
    let p = PluginProject::new("xval")
        .with_file(SourceFile::new(
            "main.php",
            "<?php $view_data = $_GET['v']; include 'view.php';",
        ))
        .with_file(SourceFile::new(
            "view.php",
            "<?php echo '<h2>' . $view_data . '</h2>';",
        ));
    let outcome = PhpSafe::new().analyze(&p);
    assert_eq!(outcome.vulns.len(), 1);
    assert!(confirm_vulnerability(&p, &outcome.vulns[0]).is_confirmed());
}

#[test]
fn interpolated_query_concat_chain() {
    assert_true_positive(
        "<?php
        $w = $_GET['w'];
        $sql = \"SELECT * FROM t WHERE a = '\" . $w . \"'\";
        $wpdb->query($sql);",
    );
}

// ---- false-positive bait: static noise, dynamically safe ----

#[test]
fn bait_guarded_numeric() {
    assert_false_positive_bait(
        "<?php $pg = $_GET['pg'];
         if (!is_numeric($pg)) { die('bad'); }
         echo 'Page ' . $pg;",
    );
}

#[test]
fn bait_custom_whitelist_cleaner() {
    assert_false_positive_bait(
        "<?php $t = preg_replace('/[^a-z0-9_]/i', '', $_GET['t']); echo $t;",
    );
}

#[test]
fn bait_wordpress_escaping_unknown_to_baselines() {
    assert_false_positive_bait("<?php echo '<i>' . esc_html($_GET['q']) . '</i>';");
}

#[test]
fn bait_guarded_wpdb_query() {
    assert_false_positive_bait(
        "<?php $uid = $_GET['uid'];
         if (!is_numeric($uid)) { wp_die('bad id'); }
         $wpdb->query(\"UPDATE t SET seen = 1 WHERE id = $uid\");",
    );
}

#[test]
fn bait_register_globals_noise() {
    // Pixy flags the undefined variable; a modern runtime never populates
    // it, so the attack cannot land.
    assert_false_positive_bait("<?php echo '<div class=\"' . $theme_class . '\">';");
}

#[test]
fn bait_legacy_query_with_wp_sanitizer() {
    assert_false_positive_bait(
        "<?php $cat = absint($_GET['cat']);
         mysql_query(\"SELECT * FROM c WHERE id = $cat\");
         $t = new WP_Tracker();",
    );
}
